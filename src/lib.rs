#![warn(missing_docs)]

//! # InfoGram
//!
//! A Rust reproduction of *"InfoGram: A Grid Service that Supports Both
//! Information Queries and Job Execution"* (von Laszewski, Gawor, Peña,
//! Foster — HPDC-11, 2002).
//!
//! The Globus Toolkit of 2002 ran two separate services: **GRAM** for job
//! execution and **MDS** for resource information, each with its own wire
//! protocol, port, and deployment. The paper's observation is that both
//! are "a query formulated and submitted to a server followed by a stream
//! of information that returns the result based on the query" — so one
//! service can do both. This workspace rebuilds that whole world:
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | clocks (virtual + system), deterministic RNG, simulated links, stats, workloads |
//! | [`host`] | simulated machines: CPU-load processes, memory/disk, `/proc`, commands, batch queues |
//! | [`gsi`] | simulated Grid Security Infrastructure: CAs, proxy chains, gridmap, contracts |
//! | [`rsl`] | the RSL language + the paper's xRSL extension tags |
//! | [`proto`] | the unified wire protocol, LDIF/XML renderers, in-memory + TCP transports |
//! | [`info`] | information providers, TTL caching with monitors, degradation/quality, schema |
//! | [`exec`] | J-GRAM: gatekeeper, job engine, fork/batch/matchmaker backends, sandbox, WAL |
//! | [`mds`] | the *baseline*: an LDAP-style GRIS/GIIS with its own protocol |
//! | [`core`] | **InfoGram itself**: one gatekeeper serving both request kinds |
//! | [`client`] | the unified client and the two-connection baseline client |
//!
//! ## Quickstart
//!
//! ```
//! use infogram::quickstart::Sandbox;
//!
//! // A self-contained in-process grid: one host, one InfoGram service,
//! // one authenticated client.
//! let mut sandbox = Sandbox::start();
//! let client = sandbox.client();
//!
//! // Information query — one of Table 1's keywords:
//! let result = client.info("Memory").unwrap();
//! assert_eq!(result.record_count, 1);
//!
//! // Job submission over the same connection and protocol:
//! let handle = client
//!     .submit("(executable=simwork)(arguments=50)", false)
//!     .unwrap();
//! let (state, exit, _out) = client
//!     .wait_terminal(&handle, std::time::Duration::from_millis(5),
//!                    std::time::Duration::from_secs(5))
//!     .unwrap();
//! assert_eq!(state.to_string(), "DONE");
//! assert_eq!(exit, Some(0));
//! sandbox.shutdown();
//! ```

pub use infogram_client as client;
pub use infogram_core as core;
pub use infogram_exec as exec;
pub use infogram_gsi as gsi;
pub use infogram_host as host;
pub use infogram_info as info;
pub use infogram_mds as mds;
pub use infogram_obs as obs;
pub use infogram_proto as proto;
pub use infogram_rsl as rsl;
pub use infogram_sim as sim;

pub mod quickstart;
