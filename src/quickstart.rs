//! A self-contained in-process grid for examples, tests, and docs.
//!
//! [`Sandbox`] stands up everything the paper's Figure 3 needs — a
//! simulated host, a CA and credentials, a gridmap, batch queues, and a
//! running InfoGram service on an in-memory network — and hands out
//! authenticated clients. The runnable examples build on it; so do the
//! doctests.

use infogram_client::{DualClient, InfoGramClient};
use infogram_core::{InfoGramParams, InfoGramService};
use infogram_exec::sandbox::{ExecMode, Policy};
use infogram_exec::wal::{Wal, WalSink};
use infogram_gsi::{
    Authorizer, Certificate, CertificateAuthority, Contract, Credential, Dn, GridMap,
};
use infogram_host::commands::{ChargeMode, CommandRegistry};
use infogram_host::machine::{HostConfig, SimulatedHost};
use infogram_host::queue::{BatchQueue, FairShareQueue, FifoQueue, MachineAd, Matchmaker};
use infogram_info::config::ServiceConfig;
use infogram_mds::gris::Gris;
use infogram_mds::service::{Directory, MdsServer};
use infogram_proto::transport::mem::MemNetwork;
use infogram_sim::clock::SharedClock;
use infogram_sim::metrics::MetricSet;
use infogram_sim::{SimTime, SplitMix64, SystemClock};
use std::sync::Arc;
use std::time::Duration;

/// Configuration knobs for a [`Sandbox`].
pub struct SandboxConfig {
    /// Hostname of the simulated machine.
    pub hostname: String,
    /// Deterministic seed for the host models and PKI.
    pub seed: u64,
    /// Keyword configuration (defaults to Table 1).
    pub config: ServiceConfig,
    /// Sandbox mode for jarlet jobs.
    pub sandbox_mode: ExecMode,
    /// Sandbox policy for jarlet jobs.
    pub sandbox_policy: Policy,
    /// Contracts; `None` = gridmap-only authorization.
    pub contracts: Option<Vec<Contract>>,
    /// Optional WAL sink (defaults to in-memory). Supply a
    /// [`infogram_exec::wal::FileWal`] to survive restarts.
    pub wal_sink: Option<Box<dyn WalSink>>,
    /// Also start the baseline separate GRAM + MDS services.
    pub with_baseline: bool,
    /// Network link model (latency / loss); `None` = ideal link.
    pub link: Option<infogram_sim::net::Link>,
}

impl Default for SandboxConfig {
    fn default() -> Self {
        SandboxConfig {
            hostname: "node00.grid.example.org".to_string(),
            seed: 0x1f06,
            config: ServiceConfig::table1(),
            sandbox_mode: ExecMode::Isolated,
            sandbox_policy: Policy::restrictive(),
            contracts: None,
            wal_sink: None,
            with_baseline: false,
            link: None,
        }
    }
}

/// A complete in-process grid: host + PKI + InfoGram service (+ optional
/// baseline GRAM/MDS pair), on an ideal in-memory network.
pub struct Sandbox {
    /// The shared clock (system time).
    pub clock: SharedClock,
    /// The in-memory network (with traffic accounting).
    pub net: Arc<MemNetwork>,
    /// The simulated host.
    pub host: Arc<SimulatedHost>,
    /// The command registry on the host.
    pub registry: Arc<CommandRegistry>,
    /// The running unified service.
    pub service: Arc<InfoGramService>,
    /// The baseline GRAM server, if requested.
    pub baseline_gram: Option<Arc<infogram_exec::gram::GramServer>>,
    /// The baseline MDS server, if requested.
    pub baseline_mds: Option<Arc<MdsServer>>,
    /// The authenticated user's credential.
    pub user: Credential,
    /// Trust anchors.
    pub roots: Vec<Certificate>,
}

impl Sandbox {
    /// Start with defaults.
    pub fn start() -> Sandbox {
        Sandbox::start_with(SandboxConfig::default())
    }

    /// Start with explicit configuration.
    pub fn start_with(cfg: SandboxConfig) -> Sandbox {
        let clock: SharedClock = SystemClock::shared();
        let mut rng = SplitMix64::new(cfg.seed);

        // PKI.
        let ca = CertificateAuthority::new_root(
            &Dn::user("Grid", "CA", "Sandbox Root CA"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(10 * 365 * 86_400),
        );
        let roots = vec![ca.certificate().clone()];
        let user = ca.issue(
            &Dn::user("Grid", "ANL", "Gregor"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(365 * 86_400),
        );
        let service_cred = ca.issue(
            &Dn::user("Grid", "Hosts", &cfg.hostname),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(365 * 86_400),
        );

        // Authorization.
        let mut gridmap = GridMap::new();
        gridmap.add(Dn::user("Grid", "ANL", "Gregor"), &["gregor"]);
        let authorizer = Arc::new(match cfg.contracts {
            Some(contracts) => Authorizer::with_contracts(gridmap, contracts),
            None => Authorizer::gridmap_only(gridmap),
        });

        // Host + queues.
        let host = SimulatedHost::new(
            HostConfig {
                hostname: cfg.hostname.clone(),
                seed: cfg.seed ^ 0x05f,
                ..Default::default()
            },
            clock.clone(),
        );
        let registry = CommandRegistry::new(Arc::clone(&host), ChargeMode::Sleep);
        let queues: Vec<(String, Arc<dyn BatchQueue>)> = vec![
            (
                "pbs".to_string(),
                Arc::new(FifoQueue::new(clock.clone(), 4)) as Arc<dyn BatchQueue>,
            ),
            (
                "fair".to_string(),
                Arc::new(FairShareQueue::new(clock.clone(), 4)),
            ),
            (
                "condor".to_string(),
                Arc::new(Matchmaker::new(
                    clock.clone(),
                    vec![
                        MachineAd::new("m1", &[("os", "linux"), ("arch", "x86")]),
                        MachineAd::new("m2", &[("os", "linux"), ("arch", "ia64")]),
                    ],
                )),
            ),
        ];

        let net = match cfg.link {
            Some(link) => MemNetwork::new(clock.clone(), link, MetricSet::new()),
            None => MemNetwork::ideal(),
        };
        let wal = match cfg.wal_sink {
            Some(sink) => Wal::new(sink),
            None => Wal::in_memory(),
        };
        let service = InfoGramService::start(
            InfoGramParams {
                service_name: "infogram".to_string(),
                bind_addr: format!("{}:2119", cfg.hostname),
                config: cfg.config,
                sandbox_policy: cfg.sandbox_policy,
                sandbox_mode: cfg.sandbox_mode,
                credential: service_cred.clone(),
                trust_roots: roots.clone(),
                authorizer: Arc::clone(&authorizer),
            },
            Arc::clone(&registry),
            queues,
            wal,
            &net,
            clock.clone(),
            MetricSet::new(),
        )
        // lint:allow(unwrap) — quickstart sandbox: fail fast on misconfiguration
        .expect("InfoGram service starts");

        // Optional baseline pair (Figure 2): separate GRAM + MDS.
        let (baseline_gram, baseline_mds) = if cfg.with_baseline {
            let engine = infogram_exec::engine::JobEngine::new(
                infogram_exec::engine::EngineConfig {
                    service_name: "gram-baseline".to_string(),
                    hostname: cfg.hostname.clone(),
                    port: 2120,
                },
                clock.clone(),
                Wal::in_memory(),
                infogram_exec::backend::ForkBackend::new(Arc::clone(&registry)),
                MetricSet::new(),
            );
            let gram = infogram_exec::gram::GramServer::start(
                Arc::clone(&engine),
                infogram_exec::gram::JobsOnlyDispatcher::new(engine),
                &net,
                &format!("{}:2120", cfg.hostname),
                service_cred.clone(),
                roots.clone(),
                Arc::clone(&authorizer),
                clock.clone(),
            )
            // lint:allow(unwrap) — quickstart sandbox: fail fast on misconfiguration
            .expect("baseline GRAM starts");
            let gris = Gris::new(Arc::clone(service.info_service()));
            let mds = MdsServer::start(
                Directory::Gris(gris),
                &net,
                &format!("{}:2135", cfg.hostname),
                service_cred,
                roots.clone(),
                clock.clone(),
            )
            // lint:allow(unwrap) — quickstart sandbox: fail fast on misconfiguration
            .expect("baseline MDS starts");
            (Some(gram), Some(mds))
        } else {
            (None, None)
        };

        Sandbox {
            clock,
            net,
            host,
            registry,
            service,
            baseline_gram,
            baseline_mds,
            user,
            roots,
        }
    }

    /// The unified service's address.
    pub fn addr(&self) -> &str {
        self.service.addr()
    }

    /// A fresh authenticated unified client.
    pub fn client(&mut self) -> &'static mut InfoGramClient {
        // Convenience for doctests: leak one client. Long-running code
        // should use `connect_client`.
        Box::leak(Box::new(self.connect_client()))
    }

    /// Connect an owned unified client.
    pub fn connect_client(&self) -> InfoGramClient {
        InfoGramClient::connect(
            &self.net,
            self.service.addr(),
            &self.user,
            &self.roots,
            self.clock.clone(),
        )
        // lint:allow(unwrap) — quickstart sandbox: fail fast on misconfiguration
        .expect("client connects")
    }

    /// Connect a baseline dual client (requires `with_baseline`).
    pub fn connect_dual_client(&self) -> DualClient {
        let gram = self
            .baseline_gram
            .as_ref()
            // lint:allow(unwrap) — documented contract: requires with_baseline
            .expect("baseline enabled")
            .addr()
            .to_string();
        let mds = self
            .baseline_mds
            .as_ref()
            // lint:allow(unwrap) — documented contract: requires with_baseline
            .expect("baseline enabled")
            .addr()
            .to_string();
        DualClient::connect(
            &self.net,
            &gram,
            &mds,
            &self.user,
            &self.roots,
            self.clock.clone(),
        )
        // lint:allow(unwrap) — quickstart sandbox: fail fast on misconfiguration
        .expect("dual client connects")
    }

    /// Stop every started server.
    pub fn shutdown(&self) {
        self.service.shutdown();
        if let Some(g) = &self.baseline_gram {
            g.shutdown();
        }
        if let Some(m) = &self.baseline_mds {
            m.shutdown();
        }
    }
}
