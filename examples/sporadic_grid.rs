//! The paper's §8 application: a *sporadic grid* at a photon source.
//!
//! "Such a Grid is created just for a short period of time during
//! sophisticated experiments at synchrotrons or photon sources." Three
//! beamline nodes come up, publish into a VO aggregate, the controller
//! picks the least-loaded node, runs a scan → acquire → analyze pipeline
//! of sandboxed jarlet jobs there, prints the accounting, and tears the
//! grid down.
//!
//! ```text
//! cargo run --example sporadic_grid
//! ```

// Bench/example/test harness: panic-on-failure is the error policy here.
#![allow(clippy::unwrap_used)]

use infogram::core::mds_bridge;
use infogram::mds::filter::Filter;
use infogram::mds::giis::Giis;
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram::sim::SystemClock;
use std::time::Duration;

fn main() {
    println!("=== bringing up a sporadic grid (3 beamline nodes) ===");
    let t_up = std::time::Instant::now();
    let nodes: Vec<Sandbox> = (0..3)
        .map(|i| {
            Sandbox::start_with(SandboxConfig {
                hostname: format!("beamline{i:02}.aps.anl.gov"),
                seed: 2002 + i as u64,
                ..Default::default()
            })
        })
        .collect();
    println!("grid up in {:?}\n", t_up.elapsed());

    // VO-level aggregate over the nodes' information services.
    let giis = Giis::new(SystemClock::shared(), Duration::from_secs(10));
    for n in &nodes {
        mds_bridge::register_into(&n.service, &giis);
    }

    println!("=== selecting the least-loaded node through the aggregate ===");
    let entries = giis.search_all(&Filter::parse("(kw=CPULoad)").unwrap());
    for e in &entries {
        println!(
            "  {:<26} load = {}",
            e.first("hn").unwrap_or_default(),
            e.first("CPULoad-load").unwrap_or_default()
        );
    }
    let chosen = entries
        .iter()
        .min_by(|a, b| {
            let la: f64 = a.first("CPULoad-load").unwrap().parse().unwrap();
            let lb: f64 = b.first("CPULoad-load").unwrap().parse().unwrap();
            la.partial_cmp(&lb).unwrap()
        })
        .unwrap();
    let target_host = chosen.first("hn").unwrap();
    println!("chosen: {target_host}\n");
    let target = nodes
        .iter()
        .find(|n| n.host.hostname() == target_host)
        .unwrap();

    // Stage the experiment: specimen data plus three jarlet programs.
    target
        .host
        .fs
        .write("/data/specimen.dat", "2D field of view");
    target.host.fs.write(
        "/home/gregor/scan.jar",
        "read /data/specimen.dat; compute 20; write /tmp/points grid; print scanned 64x64 points",
    );
    target.host.fs.write(
        "/home/gregor/acquire.jar",
        "read /data/specimen.dat; compute 30; write /tmp/patterns raw; print acquired diffraction patterns",
    );
    target.host.fs.write(
        "/home/gregor/analyze.jar",
        "compute 40; write /tmp/result domains; print analyzed domain formation and motion",
    );

    println!("=== running the scan → acquire → analyze pipeline ===");
    let mut client = target.connect_client();
    let t0 = std::time::Instant::now();
    for stage in ["scan", "acquire", "analyze"] {
        let handle = client
            .submit(&format!("(executable=/home/gregor/{stage}.jar)"), false)
            .expect("submit");
        let (state, _exit, output) = client
            .wait_terminal(&handle, Duration::from_millis(5), Duration::from_secs(10))
            .expect("stage finishes");
        println!("  {stage:<8} {state}  {}", output.trim_end());
    }
    println!("pipeline makespan: {:?}\n", t0.elapsed());

    // Monitoring query mid-experiment, same connection.
    let mem = client.info("Memory").expect("memory");
    println!(
        "free memory on {target_host}: {} bytes\n",
        mem.records[0].get("Memory:free").unwrap().value
    );

    println!("=== accounting (from the logging service) ===");
    print!(
        "{}",
        infogram::core::accounting::render_report(&target.service.accounting())
    );

    println!("\n=== tearing the sporadic grid down ===");
    for n in &nodes {
        n.shutdown();
    }
    println!("done.");
}
