//! The adaptive refresh scheduler, end to end: watch a Table 1 service,
//! drive steady traffic on one hot keyword, and watch the scheduler
//! prefetch it just before every TTL expiry while skipping the cold
//! keywords nobody queries.
//!
//! ```text
//! cargo run --example scheduler
//! ```
//!
//! The run is on the virtual clock, so it finishes instantly and
//! reproducibly. The same tick-driven loop works on the system clock —
//! see `drive` below: nothing in the scheduler sleeps or spawns, so a
//! wall-clock deployment is just `sleep(next_deadline - now)` between
//! ticks. The knobs live in [`infogram::info::SchedConfig`]; the
//! `sched.*` instruments are readable here via the `Metrics:` keyword
//! (`(info=metrics)`), exactly as an operator would poll them.

use infogram::host::commands::{ChargeMode, CommandRegistry};
use infogram::host::machine::SimulatedHost;
use infogram::info::config::{SchedConfig, ServiceConfig};
use infogram::info::service::{InformationService, QueryOptions};
use infogram::info::{RefreshScheduler, TABLE1_TEXT};
use infogram::rsl::InfoSelector;
use infogram::sim::clock::Clock;
use infogram::sim::metrics::MetricSet;
use infogram::sim::ManualClock;
use std::time::Duration;

/// Drain everything due, then advance the clock to the next deadline.
/// On a `SystemClock` the `clock.set(d)` line becomes a real sleep —
/// the scheduler itself never blocks.
fn drive(clock: &ManualClock, sched: &RefreshScheduler) {
    sched.tick();
    if let Some(d) = sched.next_deadline() {
        if d > clock.now() {
            clock.set(d);
        }
    }
}

fn main() {
    // A service straight from Table 1, with the telemetry provider so
    // `(info=metrics)` can answer operator queries about the scheduler.
    let clock = ManualClock::new();
    let host = SimulatedHost::default_on(clock.clone());
    let registry = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
    let metrics = MetricSet::new();
    let info = InformationService::from_config(
        &ServiceConfig::parse(TABLE1_TEXT).expect("Table 1 parses"),
        registry,
        clock.clone(),
        metrics.clone(),
    );
    info.register_metrics_provider(metrics.clone());

    // The operator knobs, spelled out (these are the defaults — see the
    // README's "Tuning and observing refresh" guide for when to move them).
    let config = SchedConfig {
        lead_sigma: 2.0,                         // prefetch mean + 2σ early
        min_lead: Duration::from_millis(1),      // floor when unmeasured
        max_lead_fraction: 0.5,                  // never lead > TTL/2
        min_interval: Duration::from_millis(10), // refresh-storm guard
        max_batch: 8,                            // per-tick fan-out cap
        idle_skip: true,                         // cold keywords skip
    };
    let sched = RefreshScheduler::new(clock.clone(), config, metrics.clone());
    let watched = sched.watch_service(&info);
    println!(
        "watching {watched} of {} keywords (TTL-0 rows are left on-demand)\n",
        info.entries().len()
    );

    // Steady traffic: `Date` every 10 ms for 5 virtual seconds; the
    // other keywords go cold after their seeding refresh.
    sched.tick(); // seed every cache
    let hot = [InfoSelector::Keyword("Date".to_string())];
    let opts = QueryOptions::default();
    for _ in 0..500 {
        clock.advance(Duration::from_millis(10));
        while sched.next_deadline().is_some_and(|d| d <= clock.now()) {
            sched.tick();
        }
        info.answer(&hot, &opts).expect("hot query");
    }

    let km = info.keyword_metrics("Date").expect("interned");
    println!(
        "5 virtual seconds of steady traffic on Date (TTL 60 ms in Table 1):\n  \
         {} hits, {} misses — the prefetcher kept the cache warm",
        km.hits.get(),
        km.misses.get()
    );

    // The operator's view: the scheduler's own instruments, served by
    // the service itself through the `Metrics:` keyword.
    println!("\n(info=metrics), sched.* attributes:");
    let records = info
        .answer(
            &[InfoSelector::Keyword("Metrics".to_string())],
            &QueryOptions::default(),
        )
        .expect("metrics query");
    for rec in &records {
        for attr in &rec.attributes {
            if attr.name.contains("sched.") {
                println!("  {} = {}", attr.name, attr.value);
            }
        }
    }

    // Idle the traffic and keep driving: every keyword goes cold, and
    // ticks turn into demand checks instead of provider executions.
    let before: u64 = info.entries().iter().map(|e| e.execution_count()).sum();
    for _ in 0..50 {
        drive(&clock, &sched);
    }
    let after: u64 = info.entries().iter().map(|e| e.execution_count()).sum();
    println!(
        "\n50 idle scheduling rounds later: {} provider executions \
         (cold keywords are skipped, not refreshed)",
        after - before
    );
}
