//! A virtual-organization monitor on the unified protocol.
//!
//! The §5.1 scenario from the service operator's side: a monitoring
//! client polls CPU load across a VO. It demonstrates the caching and
//! quality machinery — `response` modes, the `quality` threshold, the
//! `performance` tag — and contrasts the native path with the legacy
//! MDS path (Figure 2's world) on the same data.
//!
//! ```text
//! cargo run --example vo_monitor
//! ```

// Bench/example/test harness: panic-on-failure is the error policy here.
#![allow(clippy::unwrap_used)]

use infogram::core::mds_bridge;
use infogram::mds::filter::Filter;
use infogram::mds::giis::Giis;
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram::rsl::{OutputFormat, ResponseMode};
use infogram::sim::SystemClock;
use infogram_client::QueryBuilder;
use std::time::Duration;

fn main() {
    // A small VO of four nodes.
    let nodes: Vec<Sandbox> = (0..4)
        .map(|i| {
            Sandbox::start_with(SandboxConfig {
                hostname: format!("node{i:02}.vo.example.org"),
                seed: 500 + i as u64,
                ..Default::default()
            })
        })
        .collect();

    println!("=== polling CPULoad natively (one query per node) ===");
    for n in &nodes {
        let mut client = n.connect_client();
        let r = client
            .query(
                &QueryBuilder::new()
                    .keyword("CPULoad")
                    .performance()
                    .format(OutputFormat::Plain),
            )
            .expect("query");
        let load = r
            .body
            .lines()
            .find(|l| l.starts_with("CPULoad:load:"))
            .unwrap_or("?")
            .to_string();
        println!("  {:<24} {}", n.host.hostname(), load.trim());
    }

    println!("\n=== response modes on one node ===");
    let node0 = &nodes[0];
    let mut client = node0.connect_client();
    for (label, mode) in [
        ("immediate", ResponseMode::Immediate),
        ("cached   ", ResponseMode::Cached),
        ("last     ", ResponseMode::Last),
    ] {
        let t0 = std::time::Instant::now();
        let r = client
            .query(&QueryBuilder::new().keyword("Memory").response(mode))
            .expect("query");
        println!(
            "  response={label} → {} record(s) in {:?}",
            r.record_count,
            t0.elapsed()
        );
    }
    let si = node0.service.info_service().lookup("Memory").unwrap();
    println!("  provider executions so far: {}", si.execution_count());

    println!("\n=== quality threshold (quality=99 forces refresh of stale data) ===");
    let before = si.execution_count();
    client
        .query(&QueryBuilder::new().keyword("Memory").quality(99.0))
        .expect("query");
    println!(
        "  executions: {before} → {} (refreshed iff quality dropped below 99%)",
        si.execution_count()
    );

    println!("\n=== the same VO through the legacy MDS path (GIIS aggregate) ===");
    let giis = Giis::new(SystemClock::shared(), Duration::from_secs(30));
    for n in &nodes {
        mds_bridge::register_into(&n.service, &giis);
    }
    let busy = giis.search_all(&Filter::parse("(&(kw=CPULoad)(CPULoad-load>=0))").unwrap());
    for e in &busy {
        println!(
            "  {:<24} load = {}",
            e.first("hn").unwrap_or_default(),
            e.first("CPULoad-load").unwrap_or_default()
        );
    }
    println!(
        "  (aggregate pulled {} member subtrees; cached for 30s)",
        giis.pull_count()
    );

    for n in &nodes {
        n.shutdown();
    }
}
