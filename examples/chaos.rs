//! Chaos smoke: the full sandbox (server, wire protocol, client) under
//! a randomized-but-seeded fault storm.
//!
//! Every provider execution rolls the storm dice — 10% fail, 2% hang,
//! 5% run slow — while a real client hammers queries and submits a few
//! jobs over the in-memory network. The service's WAL rides on a
//! fault-injected disk of its own (failed appends, short writes,
//! failed fsyncs), so job submissions can be honestly refused with
//! `UNAVAILABLE` + a retry hint while the log is read-only. The run
//! must finish with zero panics, a bounded query-error rate, and every
//! submission eventually accepted once the log heals: the fault-domain
//! supervisor turns provider carnage into retries and honestly-tagged
//! stale answers, and the WAL turns disk carnage into bounded
//! read-only windows — never INTERNAL errors or silent acks.
//!
//! The storm is seeded: the seed is printed up front and can be pinned
//! with `SEED=<n>` to replay a failing run exactly (same draws, same
//! injections). `ROUNDS=<n>` scales the run length.
//!
//! Driven by `scripts/chaos_smoke.sh`.

use infogram::exec::{FrameWal, MemStorage, WalConfig, WalStorage};
use infogram::info::config::{ServiceConfig, TABLE1_TEXT};
use infogram::proto::message::{codes, JobStateCode};
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram::sim::fault::{DiskFaultPlan, DiskStormProfile, FaultPlan, StormProfile};
use infogram_client::ClientError;
use std::sync::Arc;
use std::time::Duration;

const KEYWORDS: [&str; 5] = ["Date", "Memory", "CPU", "CPULoad", "list"];

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn main() {
    let seed = env_u64("SEED").unwrap_or_else(|| {
        // Fresh entropy per run unless pinned; the printed seed replays it.
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xc4a0_5eed)
    });
    let rounds = env_u64("ROUNDS").unwrap_or(40);
    println!("chaos seed: {seed}  (replay: SEED={seed} cargo run --example chaos)");

    // Table 1 plus linear degradation windows, so a flapping provider's
    // last-known-good value stays servable for 5 s instead of flooring
    // to zero the moment its TTL expires.
    let mut text = TABLE1_TEXT.to_string();
    for kw in KEYWORDS {
        text.push_str(&format!("@degradation {kw} linear 5000\n"));
    }
    // The WAL's disk weathers its own (milder) storm: occasional failed
    // appends / short writes / failed fsyncs flip the job log read-only
    // for its retry window; submissions then get UNAVAILABLE with a
    // retry hint instead of a silent ack.
    let disk_plan = DiskFaultPlan::storm(
        seed.wrapping_add(0xd15c),
        DiskStormProfile {
            fail_p: 0.005,
            short_p: 0.002,
            fsync_fail_p: 0.005,
        },
    );
    let disk = MemStorage::with_plan(Some(Arc::clone(&disk_plan)));
    let wal_sink = FrameWal::open(
        Arc::clone(&disk) as Arc<dyn WalStorage>,
        WalConfig::default(),
    )
    .expect("open wal");
    let sandbox = Sandbox::start_with(SandboxConfig {
        config: ServiceConfig::parse(&text).expect("config"),
        wal_sink: Some(Box::new(wal_sink)),
        ..Default::default()
    });
    let mut client = sandbox.connect_client();

    // Warm start before the weather turns: a storm hitting a cold cache
    // can only error — there is nothing last-known-good yet.
    for kw in KEYWORDS {
        client.info(kw).expect("warm-up");
    }
    sandbox.registry.set_fault_plan(FaultPlan::storm(
        seed,
        StormProfile {
            // The sandbox charges costs by really sleeping, so keep the
            // injected stalls short (they still blow TTL-0 budgets).
            hang_for: Duration::from_millis(20),
            slow_by: Duration::from_millis(2),
            ..StormProfile::default()
        },
    ));

    let mut queries = 0u64;
    let mut fresh = 0u64;
    let mut stale = 0u64;
    let mut errors = 0u64;
    let mut jobs_done = 0u64;
    let mut jobs_failed = 0u64;
    let mut wal_rejected = 0u64;
    for round in 0..rounds {
        for kw in KEYWORDS {
            queries += 1;
            match client.info(kw) {
                Ok(r) if r.degraded() => stale += 1,
                Ok(_) => fresh += 1,
                // A provider error surfacing is tolerated (bounded
                // below); a protocol/transport failure is not — the
                // service itself must stay up.
                Err(ClientError::Server { .. }) => errors += 1,
                Err(other) => panic!("round {round}: non-server failure: {other}"),
            }
        }
        // A few jobs ride along; the storm may legitimately fail them
        // (simwork runs through the same fault-injected registry), and
        // the disk storm may refuse them while the log is read-only —
        // but refusal is UNAVAILABLE with a retry hint, the window is
        // bounded, and a retried submission must land.
        if round % 8 == 0 {
            let mut handle = None;
            for _attempt in 0..15 {
                match client.submit("(executable=simwork)(arguments=5)", false) {
                    Ok(h) => {
                        handle = Some(h);
                        break;
                    }
                    Err(ClientError::Server { code, message }) if code == codes::UNAVAILABLE => {
                        assert!(
                            message.contains("retry-after-ms="),
                            "read-only refusal lacks a retry hint: {message} (seed {seed})"
                        );
                        wal_rejected += 1;
                        std::thread::sleep(Duration::from_millis(300));
                    }
                    Err(other) => panic!("round {round}: submit failed: {other}"),
                }
            }
            let handle =
                handle.unwrap_or_else(|| panic!("read-only window never healed (seed {seed})"));
            let (state, _, _) = client
                .wait_terminal(&handle, Duration::from_millis(2), Duration::from_secs(5))
                .expect("wait_terminal");
            if state == JobStateCode::Done {
                jobs_done += 1;
            } else {
                jobs_failed += 1;
            }
        }
    }
    let wal_append_errors = sandbox
        .service
        .engine()
        .metrics()
        .counter_value("wal.append_errors");
    sandbox.shutdown();

    let error_rate = errors as f64 / queries as f64;
    println!(
        "chaos: {queries} queries -> {fresh} fresh, {stale} stale, {errors} errors \
         (rate {:.3}); jobs: {jobs_done} done, {jobs_failed} failed; \
         wal: {wal_append_errors} disk faults, {wal_rejected} read-only refusals",
        error_rate
    );
    // The supervisor's whole job: provider faults at 10% must not show
    // up as anywhere near 10% query errors.
    assert!(
        error_rate <= 0.05,
        "error rate {error_rate:.3} exceeds budget 0.05 (seed {seed})"
    );
    println!("chaos smoke ok (seed {seed})");
}
