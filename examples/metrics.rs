//! Self-describing observability: `(info=metrics)`.
//!
//! Every layer of the service — the dispatcher, the connection handlers,
//! the information cache, the job engine and its write-ahead log — writes
//! into one shared telemetry handle. The built-in `Metrics:` keyword
//! exposes that handle through the *same* xRSL query path as every other
//! keyword, so a grid client can ask a service how it is doing with the
//! protocol it already speaks.
//!
//! ```text
//! cargo run --example metrics
//! ```

use infogram::quickstart::Sandbox;
use infogram_client::QueryBuilder;
use std::time::Duration;

fn main() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    println!("connected to InfoGram at {}\n", sandbox.addr());

    // Generate some traffic for the telemetry to describe: two info
    // queries (a cache miss, then a hit) and one job run to completion.
    client.info("Memory").expect("memory query");
    client.info("Memory").expect("memory query (cached)");
    let handle = client
        .submit("(executable=simwork)(arguments=20)", false)
        .expect("submit");
    client
        .wait_terminal(&handle, Duration::from_millis(5), Duration::from_secs(10))
        .expect("job finishes");

    // The service describes itself. TTL is zero for this keyword, so the
    // answer is always a live snapshot, never a cached one.
    println!("== (info=metrics) ==");
    let metrics = client.metrics().expect("metrics query");
    print!("{}", metrics.body);

    // The §6.6 extension tags apply to Metrics: records like any other:
    // narrow the answer to one attribute with (filter=...).
    println!("\n== (info=metrics)(filter=Metrics:jobs.done) ==");
    let one = client
        .query(
            &QueryBuilder::new()
                .keyword("metrics")
                .filter("Metrics:jobs.done"),
        )
        .expect("filtered metrics query");
    print!("{}", one.body);

    sandbox.shutdown();
}
