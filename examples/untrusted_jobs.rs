//! Untrusted applications in a trusted environment (§5.5, §7).
//!
//! Submits a well-behaved jarlet and a series of hostile ones (filesystem
//! escape, network exfiltration, fork bomb, compute bomb) under the two
//! sandbox modes the paper describes — in-process ("same JVM") and
//! isolated ("separate JVM") — and prints what the policy blocked.
//!
//! ```text
//! cargo run --example untrusted_jobs
//! ```

use infogram::exec::sandbox::ExecMode;
use infogram::quickstart::{Sandbox, SandboxConfig};
use std::time::Duration;

const PROGRAMS: &[(&str, &str)] = &[
    (
        "wellbehaved",
        "read /data/input.dat; compute 10; write /tmp/out result; print analysis ok",
    ),
    (
        "fs-escape",
        "read /etc/grid-security/hostcert.pem; print leaked",
    ),
    ("exfiltrate", "net evil.example.org:31337; print sent"),
    ("fork-bomb", "spawn; spawn; spawn"),
    ("compute-bomb", "compute 999999"),
];

fn run_under(mode: ExecMode, label: &str) {
    println!("=== sandbox mode: {label} ===");
    let sandbox = Sandbox::start_with(SandboxConfig {
        sandbox_mode: mode,
        ..Default::default()
    });
    sandbox.host.fs.write("/data/input.dat", "specimen");
    let mut client = sandbox.connect_client();
    for (name, program) in PROGRAMS {
        let path = format!("/home/gregor/{name}.jar");
        sandbox.host.fs.write(&path, *program);
        let handle = client
            .submit(&format!("(executable={path})"), false)
            .expect("submit");
        let (state, exit, output) = client
            .wait_terminal(&handle, Duration::from_millis(5), Duration::from_secs(10))
            .expect("job finishes");
        let verdict = output
            .lines()
            .find(|l| l.starts_with("SECURITY VIOLATION"))
            .unwrap_or("ok")
            .to_string();
        println!(
            "  {name:<13} {state:<8} exit={:<4} {verdict}",
            exit.map(|e| e.to_string()).unwrap_or_default()
        );
    }
    println!();
    sandbox.shutdown();
}

fn main() {
    run_under(ExecMode::Isolated, "isolated (separate \"JVM\")");
    run_under(ExecMode::InProcess, "in-process (same \"JVM\")");
    println!(
        "note: both modes *block* the operations; the difference is that an\n\
         in-process violation contaminates the host service (see the E11\n\
         benchmark for the overhead/containment trade-off)."
    );
}
