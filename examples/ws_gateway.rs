//! Forwards compatibility: the same InfoGram service through a
//! SOAP-shaped XML envelope (§6.6/§10 — "It is straight forward to cast
//! the InfoGram in WSDL").
//!
//! A WS gateway runs next to the native gatekeeper; both front the same
//! dispatcher, so a job submitted through XML is visible to a native
//! GRAM-protocol client and vice versa.
//!
//! ```text
//! cargo run --example ws_gateway
//! ```

use infogram::core::ws::{encode_request, WsClient, WsGateway};
use infogram::core::InfoGramDispatcher;
use infogram::proto::message::{Reply, Request};
use infogram::quickstart::Sandbox;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let sandbox = Sandbox::start();
    let dispatcher = InfoGramDispatcher::new(
        Arc::clone(sandbox.service.engine()),
        Arc::clone(sandbox.service.info_service()),
    );
    let gateway = WsGateway::start(
        dispatcher,
        "/O=Grid/OU=WS/CN=Gateway",
        "gregor",
        &sandbox.net,
        "node00.grid.example.org:8080",
    )
    .expect("gateway starts");
    println!("native gatekeeper : {}", sandbox.addr());
    println!("WS gateway        : {}\n", gateway.addr());

    let info_req = Request::Submit {
        rsl: "(info=memory)(format=xml)".to_string(),
        callback: false,
    };
    println!("== the envelope on the wire ==");
    println!("{}\n", encode_request(&info_req));

    let mut ws = WsClient::connect(&sandbox.net, gateway.addr()).expect("connect");
    println!("== info query through the WS syntax ==");
    match ws.call(&info_req).expect("call") {
        Reply::InfoResult { body, record_count } => {
            println!("{record_count} record(s):");
            for line in body.lines().take(6) {
                println!("  {line}");
            }
        }
        other => panic!("{other:?}"),
    }

    println!("\n== job through the WS syntax ==");
    let handle = match ws
        .call(&Request::Submit {
            rsl: "(executable=simwork)(arguments=30)".to_string(),
            callback: false,
        })
        .expect("submit")
    {
        Reply::JobAccepted { handle } => {
            println!("accepted: {handle}");
            handle
        }
        other => panic!("{other:?}"),
    };

    // The same job is visible over the *native* protocol — one service,
    // two wire syntaxes.
    let mut native = sandbox.connect_client();
    let (state, exit, _out) = native
        .wait_terminal(&handle, Duration::from_millis(5), Duration::from_secs(10))
        .expect("job finishes");
    println!("observed over the native protocol: {state}, exit {exit:?}");

    gateway.shutdown();
    sandbox.shutdown();
}
