//! Push subscriptions: `(action=subscribe)` turns an information query
//! into a standing one. The service streams an initial snapshot and
//! then pushes an incremental delta whenever the refresh scheduler
//! re-runs a provider — and, under the virtual `jobs` keyword, whenever
//! a job changes state. No client-side polling anywhere below.
//!
//! ```text
//! cargo run --example subscribe
//! ```

use infogram::quickstart::Sandbox;

fn main() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    println!("connected to InfoGram at {}\n", sandbox.addr());

    // One subscription may cover several keywords; `jobs` is the
    // virtual channel carrying job-state transitions.
    let id = client.subscribe(&["Date", "jobs"]).expect("subscribe");
    println!("subscription #{id} open on Date + jobs");

    // The cold Date channel opens with a full snapshot at version 1.
    let first = client.wait_update().expect("initial snapshot");
    for (rec, delta) in first.records.iter().zip(&first.deltas) {
        println!(
            "  [{}] v{} {} ({} attrs)",
            rec.keyword,
            delta.version,
            if delta.full { "snapshot" } else { "delta" },
            rec.attributes.len()
        );
    }

    // A job submitted on the same connection streams its transitions
    // through the subscription.
    let handle = client
        .submit("(executable=simwork)(arguments=10)", false)
        .expect("submit");
    println!("\nsubmitted job {handle}; watching the jobs channel:");

    let mut date_pushes = 0u32;
    loop {
        let update = client.wait_update().expect("push");
        let mut done = false;
        for (rec, delta) in update.records.iter().zip(&update.deltas) {
            match rec.keyword.as_str() {
                "jobs" => {
                    let state = rec.get("jobs:state").expect("state").value.clone();
                    println!("  [jobs] v{} state={state}", delta.version);
                    done = state == "DONE";
                }
                kw => {
                    println!(
                        "  [{kw}] v{} {}",
                        delta.version,
                        if delta.full { "snapshot" } else { "delta" }
                    );
                    date_pushes += 1;
                }
            }
        }
        if done {
            break;
        }
    }

    client.unsubscribe().expect("unsubscribe");
    println!(
        "\njob finished; saw {date_pushes} scheduler-driven Date push(es); \
         unsubscribed, hub active = {}",
        sandbox.service.subscriptions().active()
    );
    sandbox.shutdown();
}
