//! Quickstart: one host, one InfoGram service, one client.
//!
//! Shows the paper's core move — the *same* connection and protocol
//! serving an information query and a job submission.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use infogram::quickstart::Sandbox;
use infogram::rsl::OutputFormat;
use infogram_client::QueryBuilder;
use std::time::Duration;

fn main() {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    println!("connected to InfoGram at {}", sandbox.addr());
    println!("authenticated as {}\n", client.gram().context().local);

    // --- information query (Table 1 keyword, LDIF = MDS-compatible) ---
    println!("== (info=memory) — LDIF ==");
    let memory = client.info("Memory").expect("memory query");
    print!("{}", memory.body);

    // --- same keyword, XML, with performance statistics ---
    println!("\n== (info=cpu)(format=xml)(performance=true) ==");
    let cpu = client
        .query(
            &QueryBuilder::new()
                .keyword("CPU")
                .format(OutputFormat::Xml)
                .performance(),
        )
        .expect("cpu query");
    print!("{}", cpu.body);

    // --- service reflection ---
    println!("\n== (info=schema) — first entry ==");
    let schema = client
        .query(&QueryBuilder::new().schema().format(OutputFormat::Plain))
        .expect("schema query");
    for line in schema.body.lines().take(10) {
        println!("{line}");
    }

    // --- job submission over the very same connection ---
    println!("\n== job: (executable=/bin/date)(arguments=-u) ==");
    let handle = client
        .submit("&(executable=/bin/date)(arguments=-u)", false)
        .expect("submit");
    println!("job handle: {handle}");
    let (state, exit, output) = client
        .wait_terminal(&handle, Duration::from_millis(5), Duration::from_secs(10))
        .expect("job finishes");
    println!("state: {state}, exit: {exit:?}");
    print!("output: {output}");

    println!("\n== grid accounting (from the logging service) ==");
    print!(
        "{}",
        infogram::core::accounting::render_report(&sandbox.service.accounting())
    );

    sandbox.shutdown();
}
