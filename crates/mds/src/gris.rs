//! GRIS: the per-resource information provider front-end.
//!
//! §4: "Each compute resource has the Globus GRAM and the Globus Resource
//! Information Service (GRIS) that returns information related to the
//! local resource installed." Our GRIS publishes the records of an
//! `infogram-info` [`InformationService`] into a directory subtree
//! (`/o=Grid/hn=<host>/kw=<Keyword>`), refreshing through the same TTL
//! cache, and answers LDAP-style searches against it.

use crate::dit::{DirEntry, DirectoryTree, Scope};
use crate::filter::Filter;
use infogram_gsi::Dn;
use infogram_info::service::{InfoServiceError, InformationService, QueryOptions};
use infogram_rsl::InfoSelector;
use std::sync::Arc;

/// A GRIS over one host's information service.
pub struct Gris {
    info: Arc<InformationService>,
    tree: DirectoryTree,
    base: Dn,
}

impl std::fmt::Debug for Gris {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gris")
            .field("base", &self.base)
            .finish_non_exhaustive()
    }
}

impl Gris {
    /// A GRIS publishing `info` under `/o=Grid/hn=<hostname>`.
    pub fn new(info: Arc<InformationService>) -> Arc<Self> {
        let base = Dn::from_rdns(vec![
            ("o".to_string(), "Grid".to_string()),
            ("hn".to_string(), info.hostname().to_string()),
        ])
        // lint:allow(unwrap) — from_rdns validates keys, both are fixed literals here
        .expect("hostname RDN valid");
        Arc::new(Gris {
            info,
            tree: DirectoryTree::new(),
            base,
        })
    }

    /// The subtree base this GRIS publishes under.
    pub fn base(&self) -> &Dn {
        &self.base
    }

    /// The backing information service.
    pub fn info_service(&self) -> &Arc<InformationService> {
        &self.info
    }

    /// Refresh the directory subtree from the information service
    /// (cached reads — the GRIS does not bypass the provider TTLs).
    pub fn refresh(&self) {
        // A failing provider leaves stale entries; searches serve them.
        let _ = self.try_refresh();
    }

    /// Like [`Gris::refresh`], but reports why a refresh could not run —
    /// e.g. the keyword's breaker is open with nothing cached. The
    /// subtree is left untouched on failure (stale entries keep
    /// serving), so a GIIS pulling this member can tell "fresh pull"
    /// from "member degraded, serve my cached copy".
    pub fn try_refresh(&self) -> Result<(), InfoServiceError> {
        let records = self
            .info
            .answer(&[InfoSelector::All], &QueryOptions::default())?;
        self.tree.remove_subtree(&self.base);
        self.tree.put(DirEntry::new(
            self.base.clone(),
            vec![
                ("objectclass".to_string(), "GridResource".to_string()),
                ("hn".to_string(), self.info.hostname().to_string()),
            ],
        ));
        for rec in records {
            let dn = self.base.child("kw", &rec.keyword);
            let mut attributes = vec![
                ("objectclass".to_string(), "InfoGramProvider".to_string()),
                ("kw".to_string(), rec.keyword.clone()),
                ("hn".to_string(), rec.host.clone()),
            ];
            for a in &rec.attributes {
                // LDAP attribute names cannot contain ':'; same mapping as
                // the LDIF renderer.
                attributes.push((a.name.replacen(':', "-", 1), a.value.clone()));
            }
            self.tree.put(DirEntry::new(dn, attributes));
        }
        Ok(())
    }

    /// Search the (refreshed) subtree.
    pub fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> Vec<DirEntry> {
        self.refresh();
        self.tree.search(base, scope, filter)
    }

    /// Search from this GRIS's own base.
    pub fn search_all(&self, filter: &Filter) -> Vec<DirEntry> {
        self.search(&self.base.clone(), Scope::Sub, filter)
    }

    /// Search from this GRIS's own base, surfacing a refresh failure
    /// instead of silently serving the stale subtree. Used by the GIIS
    /// member pull so the aggregate can fall back to *its* cached copy.
    pub fn try_search_all(&self, filter: &Filter) -> Result<Vec<DirEntry>, InfoServiceError> {
        self.try_refresh()?;
        Ok(self.tree.search(&self.base, Scope::Sub, filter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_host::commands::{ChargeMode, CommandRegistry};
    use infogram_host::machine::SimulatedHost;
    use infogram_info::config::ServiceConfig;
    use infogram_sim::metrics::MetricSet;
    use infogram_sim::ManualClock;

    fn gris() -> (Arc<ManualClock>, Arc<Gris>) {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        let reg = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
        let info = InformationService::from_config(
            &ServiceConfig::table1(),
            reg,
            clock.clone(),
            MetricSet::new(),
        );
        (clock, Gris::new(info))
    }

    #[test]
    fn publishes_keywords_as_subtree() {
        let (_c, g) = gris();
        let all = g.search_all(&Filter::everything());
        // 1 host entry + 5 keyword entries.
        assert_eq!(all.len(), 6);
        let mem = all
            .iter()
            .find(|e| e.first("kw").as_deref() == Some("Memory"))
            .unwrap();
        assert!(mem.first("Memory-total").is_some());
        assert_eq!(
            mem.dn.to_string(),
            "/o=Grid/hn=node00.grid.example.org/kw=Memory"
        );
    }

    #[test]
    fn ldap_filters_select_providers() {
        let (_c, g) = gris();
        let f = Filter::parse("(kw=CPU)").unwrap();
        let found = g.search_all(&f);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].first("CPU-count").unwrap(), "4");
    }

    #[test]
    fn numeric_filter_on_published_values() {
        let (_c, g) = gris();
        let f = Filter::parse("(Memory-total>=1)").unwrap();
        assert_eq!(g.search_all(&f).len(), 1);
        let f = Filter::parse("(Memory-total<=1)").unwrap();
        assert!(g.search_all(&f).is_empty());
    }

    #[test]
    fn refresh_respects_provider_cache() {
        let (_c, g) = gris();
        g.search_all(&Filter::everything());
        g.search_all(&Filter::everything());
        // Table 1 TTLs: within TTL the second refresh serves from cache
        // (CPULoad has TTL 0 and always executes).
        let info = g.info_service();
        assert_eq!(info.lookup("Memory").unwrap().execution_count(), 1);
        assert_eq!(info.lookup("CPULoad").unwrap().execution_count(), 2);
    }

    #[test]
    fn scoped_search() {
        let (_c, g) = gris();
        g.refresh();
        let base = g.base().clone();
        let one = g.search(&base, Scope::One, &Filter::everything());
        assert_eq!(one.len(), 5, "keyword entries are the children");
        let base_only = g.search(&base, Scope::Base, &Filter::everything());
        assert_eq!(base_only.len(), 1);
    }
}
