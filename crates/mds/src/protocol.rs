//! The MDS wire protocol.
//!
//! Deliberately a *different* protocol from the GRAM/InfoGram one: §4 of
//! the paper complains that "not only do the services operate through
//! different ports, but they also use different protocols making the
//! amount of code sharing for interpreting return values more complex."
//! This module is that second protocol, so the baseline experiments pay
//! its real cost.
//!
//! Requests are search/unbind (bind is the GSI handshake that precedes
//! them); replies carry entries in an LDIF-like text body.

use crate::dit::{DirEntry, Scope};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use infogram_gsi::Dn;

/// Protocol version byte. Distinct from the GRAM protocol's version so
/// cross-protocol confusion fails loudly.
pub const MDS_PROTOCOL_VERSION: u8 = 0x4d; // 'M'

/// Client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdsRequest {
    /// An LDAP-style search.
    Search {
        /// Base DN in slash form.
        base: String,
        /// Search scope.
        scope: Scope,
        /// Filter text (RFC-2254 subset).
        filter: String,
    },
    /// Close the session.
    Unbind,
}

/// Server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdsReply {
    /// Matching entries, rendered as text.
    SearchResult {
        /// The entries body (see [`entries_to_text`]).
        body: String,
        /// Number of entries.
        count: u32,
    },
    /// A failure.
    Error {
        /// Explanation.
        message: String,
    },
}

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdsWireError {
    /// Explanation.
    pub reason: String,
}

impl std::fmt::Display for MdsWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MDS wire error: {}", self.reason)
    }
}

impl std::error::Error for MdsWireError {}

fn err(reason: &str) -> MdsWireError {
    MdsWireError {
        reason: reason.to_string(),
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, MdsWireError> {
    if buf.remaining() < 4 {
        return Err(err("truncated length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(err("truncated string"));
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec()).map_err(|_| err("bad utf-8"))
}

fn scope_to_u8(s: Scope) -> u8 {
    match s {
        Scope::Base => 0,
        Scope::One => 1,
        Scope::Sub => 2,
    }
}

fn scope_from_u8(v: u8) -> Option<Scope> {
    Some(match v {
        0 => Scope::Base,
        1 => Scope::One,
        2 => Scope::Sub,
        _ => return None,
    })
}

impl MdsRequest {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(MDS_PROTOCOL_VERSION);
        match self {
            MdsRequest::Search {
                base,
                scope,
                filter,
            } => {
                buf.put_u8(0);
                put_str(&mut buf, base);
                buf.put_u8(scope_to_u8(*scope));
                put_str(&mut buf, filter);
            }
            MdsRequest::Unbind => buf.put_u8(1),
        }
        buf.to_vec()
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<MdsRequest, MdsWireError> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 2 {
            return Err(err("truncated request"));
        }
        if buf.get_u8() != MDS_PROTOCOL_VERSION {
            return Err(err("not an MDS protocol message"));
        }
        let req = match buf.get_u8() {
            0 => {
                let base = get_str(&mut buf)?;
                if buf.remaining() < 1 {
                    return Err(err("truncated scope"));
                }
                let scope = scope_from_u8(buf.get_u8()).ok_or_else(|| err("bad scope"))?;
                let filter = get_str(&mut buf)?;
                MdsRequest::Search {
                    base,
                    scope,
                    filter,
                }
            }
            1 => MdsRequest::Unbind,
            t => return Err(err(&format!("unknown request tag {t}"))),
        };
        if buf.has_remaining() {
            return Err(err("trailing bytes"));
        }
        Ok(req)
    }
}

impl MdsReply {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(MDS_PROTOCOL_VERSION);
        match self {
            MdsReply::SearchResult { body, count } => {
                buf.put_u8(0);
                put_str(&mut buf, body);
                buf.put_u32(*count);
            }
            MdsReply::Error { message } => {
                buf.put_u8(1);
                put_str(&mut buf, message);
            }
        }
        buf.to_vec()
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<MdsReply, MdsWireError> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 2 {
            return Err(err("truncated reply"));
        }
        if buf.get_u8() != MDS_PROTOCOL_VERSION {
            return Err(err("not an MDS protocol message"));
        }
        let reply = match buf.get_u8() {
            0 => {
                let body = get_str(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(err("truncated count"));
                }
                MdsReply::SearchResult {
                    body,
                    count: buf.get_u32(),
                }
            }
            1 => MdsReply::Error {
                message: get_str(&mut buf)?,
            },
            t => return Err(err(&format!("unknown reply tag {t}"))),
        };
        if buf.has_remaining() {
            return Err(err("trailing bytes"));
        }
        Ok(reply)
    }
}

/// Render entries as the reply body: `dn: <slash dn>` then attribute
/// lines, entries separated by blank lines.
pub fn entries_to_text(entries: &[DirEntry]) -> String {
    let mut out = String::new();
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&format!("dn: {}\n", e.dn));
        for (k, v) in &e.attributes {
            out.push_str(&format!("{k}: {v}\n"));
        }
    }
    out
}

/// Parse a reply body back into entries.
pub fn entries_from_text(text: &str) -> Vec<DirEntry> {
    let mut entries = Vec::new();
    let mut current: Option<DirEntry> = None;
    for line in text.lines() {
        if line.is_empty() {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            continue;
        }
        let Some((k, v)) = line.split_once(": ") else {
            continue;
        };
        if k == "dn" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            if let Ok(dn) = Dn::parse(v) {
                current = Some(DirEntry::new(dn, Vec::new()));
            }
        } else if let Some(e) = current.as_mut() {
            e.attributes.push((k.to_string(), v.to_string()));
        }
    }
    if let Some(e) = current.take() {
        entries.push(e);
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            MdsRequest::Search {
                base: "/o=Grid".to_string(),
                scope: Scope::Sub,
                filter: "(&(kw=Memory)(Memory-free>=1))".to_string(),
            },
            MdsRequest::Search {
                base: "/o=Grid/hn=node0".to_string(),
                scope: Scope::Base,
                filter: "(objectclass=*)".to_string(),
            },
            MdsRequest::Unbind,
        ];
        for r in reqs {
            assert_eq!(MdsRequest::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn reply_roundtrip() {
        let replies = [
            MdsReply::SearchResult {
                body: "dn: /o=Grid\nobjectclass: organization\n".to_string(),
                count: 1,
            },
            MdsReply::Error {
                message: "no such base".to_string(),
            },
        ];
        for r in replies {
            assert_eq!(MdsReply::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn cross_protocol_confusion_rejected() {
        // A GRAM message fed to the MDS decoder fails on the version byte
        // — the "two different wire protocols" of the baseline world.
        let gram_msg = infogram_proto::message::Request::Ping.encode();
        assert!(MdsRequest::decode(&gram_msg).is_err());
        let mds_msg = MdsRequest::Unbind.encode();
        assert!(infogram_proto::message::Request::decode(&mds_msg).is_err());
    }

    #[test]
    fn decode_rejects_noise() {
        assert!(MdsRequest::decode(&[]).is_err());
        assert!(MdsRequest::decode(&[MDS_PROTOCOL_VERSION, 9]).is_err());
        assert!(MdsReply::decode(&[MDS_PROTOCOL_VERSION]).is_err());
        let mut extra = MdsRequest::Unbind.encode();
        extra.push(0);
        assert!(MdsRequest::decode(&extra).is_err());
    }

    #[test]
    fn entries_text_roundtrip() {
        let entries = vec![
            DirEntry::new(
                Dn::parse("/o=Grid/hn=node0").unwrap(),
                vec![
                    ("objectclass".to_string(), "GridResource".to_string()),
                    ("load".to_string(), "0.5".to_string()),
                ],
            ),
            DirEntry::new(
                Dn::parse("/o=Grid/hn=node0/kw=Memory").unwrap(),
                vec![("Memory-free".to_string(), "1024".to_string())],
            ),
        ];
        let text = entries_to_text(&entries);
        let parsed = entries_from_text(&text);
        assert_eq!(parsed, entries);
    }

    #[test]
    fn empty_entries_text() {
        assert_eq!(entries_to_text(&[]), "");
        assert!(entries_from_text("").is_empty());
    }
}
