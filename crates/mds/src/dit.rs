//! The directory information tree.
//!
//! Entries are keyed by distinguished name; the hierarchy is implicit in
//! the DN structure (a child extends its parent by one RDN). Searches
//! take a base DN, a scope, and a [`Filter`].

use crate::filter::Filter;
use infogram_gsi::Dn;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Search scope, as in LDAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The base entry only.
    Base,
    /// Immediate children of the base.
    One,
    /// The base and everything beneath it.
    Sub,
}

/// One directory entry: a DN plus multi-valued attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct DirEntry {
    /// The entry's distinguished name.
    pub dn: Dn,
    /// `(attribute, value)` pairs; attributes may repeat.
    pub attributes: Vec<(String, String)>,
}

impl DirEntry {
    /// An entry with the given attributes.
    pub fn new(dn: Dn, attributes: Vec<(String, String)>) -> Self {
        DirEntry { dn, attributes }
    }

    /// All values of an attribute (case-insensitive name match).
    pub fn values_of(&self, attr: &str) -> Vec<String> {
        self.attributes
            .iter()
            .filter(|(k, _)| k.eq_ignore_ascii_case(attr))
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// First value of an attribute.
    pub fn first(&self, attr: &str) -> Option<String> {
        self.values_of(attr).into_iter().next()
    }

    /// Whether `filter` matches this entry.
    pub fn matches(&self, filter: &Filter) -> bool {
        filter.matches(&|attr| self.values_of(attr))
    }
}

/// Whether `dn` is within `base` at the given scope.
fn in_scope(dn: &Dn, base: &Dn, scope: Scope) -> bool {
    let is_under =
        dn.rdns().len() >= base.rdns().len() && dn.rdns()[..base.rdns().len()] == *base.rdns();
    match scope {
        Scope::Base => dn == base,
        Scope::One => dn.is_immediate_child_of(base),
        Scope::Sub => is_under,
    }
}

/// A thread-safe directory tree.
#[derive(Debug, Default)]
pub struct DirectoryTree {
    entries: RwLock<BTreeMap<Dn, DirEntry>>,
}

impl DirectoryTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace an entry.
    pub fn put(&self, entry: DirEntry) {
        self.entries.write().insert(entry.dn.clone(), entry);
    }

    /// Remove an entry; returns whether it existed.
    pub fn remove(&self, dn: &Dn) -> bool {
        self.entries.write().remove(dn).is_some()
    }

    /// Remove every entry under (and including) `base`.
    pub fn remove_subtree(&self, base: &Dn) -> usize {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|dn, _| !in_scope(dn, base, Scope::Sub));
        before - entries.len()
    }

    /// Fetch one entry.
    pub fn get(&self, dn: &Dn) -> Option<DirEntry> {
        self.entries.read().get(dn).cloned()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// LDAP-style search.
    pub fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> Vec<DirEntry> {
        self.entries
            .read()
            .values()
            .filter(|e| in_scope(&e.dn, base, scope) && e.matches(filter))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn tree() -> DirectoryTree {
        let t = DirectoryTree::new();
        t.put(DirEntry::new(
            dn("/o=Grid"),
            vec![("objectclass".to_string(), "organization".to_string())],
        ));
        for (host, load) in [("node0", "0.5"), ("node1", "2.5")] {
            t.put(DirEntry::new(
                dn(&format!("/o=Grid/hn={host}")),
                vec![
                    ("objectclass".to_string(), "host".to_string()),
                    ("load".to_string(), load.to_string()),
                ],
            ));
            t.put(DirEntry::new(
                dn(&format!("/o=Grid/hn={host}/kw=Memory")),
                vec![
                    ("objectclass".to_string(), "provider".to_string()),
                    ("memory-free".to_string(), "1024".to_string()),
                ],
            ));
        }
        t
    }

    #[test]
    fn scopes() {
        let t = tree();
        let everything = Filter::everything();
        assert_eq!(t.search(&dn("/o=Grid"), Scope::Base, &everything).len(), 1);
        assert_eq!(t.search(&dn("/o=Grid"), Scope::One, &everything).len(), 2);
        assert_eq!(t.search(&dn("/o=Grid"), Scope::Sub, &everything).len(), 5);
        assert_eq!(
            t.search(&dn("/o=Grid/hn=node0"), Scope::Sub, &everything)
                .len(),
            2
        );
    }

    #[test]
    fn filtered_search() {
        let t = tree();
        let busy = Filter::parse("(load>=1)").unwrap();
        let found = t.search(&dn("/o=Grid"), Scope::Sub, &busy);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].first("load").unwrap(), "2.5");
    }

    #[test]
    fn put_replaces() {
        let t = tree();
        t.put(DirEntry::new(
            dn("/o=Grid/hn=node0"),
            vec![("load".to_string(), "9.0".to_string())],
        ));
        assert_eq!(
            t.get(&dn("/o=Grid/hn=node0"))
                .unwrap()
                .first("load")
                .unwrap(),
            "9.0"
        );
        assert_eq!(t.len(), 5, "replace does not grow the tree");
    }

    #[test]
    fn remove_and_subtree() {
        let t = tree();
        assert!(t.remove(&dn("/o=Grid/hn=node0/kw=Memory")));
        assert!(!t.remove(&dn("/o=Grid/hn=node0/kw=Memory")));
        assert_eq!(t.remove_subtree(&dn("/o=Grid/hn=node1")), 2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn search_missing_base() {
        let t = tree();
        assert!(t
            .search(&dn("/o=Elsewhere"), Scope::Sub, &Filter::everything())
            .is_empty());
    }

    #[test]
    fn entry_attribute_access() {
        let e = DirEntry::new(
            dn("/o=G/cn=x"),
            vec![
                ("member".to_string(), "a".to_string()),
                ("member".to_string(), "b".to_string()),
            ],
        );
        assert_eq!(e.values_of("MEMBER"), vec!["a", "b"]);
        assert_eq!(e.first("member").unwrap(), "a");
        assert!(e.first("nope").is_none());
    }
}
