#![warn(missing_docs)]

//! MDS: the Monitoring and Directory Service baseline.
//!
//! §3–4 of the paper describe the Globus information service the
//! InfoGram replaces: "The Globus Grid information service, MDS, contains
//! two fundamental entities: distributed information providers and
//! information aggregates" — the per-resource **GRIS** and the
//! organization-level **GIIS**, queried over LDAP.
//!
//! This crate is that baseline, end to end:
//!
//! * [`filter`] — RFC-2254-style search filters
//!   (`(&(objectclass=*)(Memory-free>=1000))`), parsed from text and
//!   evaluated against entries;
//! * [`dit`] — the directory information tree with base/one/sub scopes;
//! * [`gris`] — a GRIS over an `infogram-info` information service;
//! * [`giis`] — the aggregate with MDS-2.0-style result caching;
//! * [`protocol`] — MDS's own wire protocol (bind/search/unbind) —
//!   deliberately *different* from the GRAM protocol, because that very
//!   difference is what Figure 2 charges the baseline for;
//! * [`service`] / [`client`] — a network-facing MDS server and client.

pub mod client;
pub mod dit;
pub mod filter;
pub mod giis;
pub mod gris;
pub mod protocol;
pub mod service;

pub use client::MdsClient;
pub use dit::{DirEntry, DirectoryTree, Scope};
pub use filter::Filter;
pub use giis::{AggregateSource, Giis};
pub use gris::Gris;
pub use service::MdsServer;
