//! GIIS: the aggregate directory with MDS-2.0-style caching.
//!
//! §3: "the aggregate service is used to integrate a set of information
//! providers that may be part of a virtual organization. To increase the
//! scalability of a distributed information service, the MDS provides an
//! information caching function that allows viewing and querying the
//! information about a resource from a cache."
//!
//! The GIIS pulls each registered member's entries into its own tree and
//! serves searches from that cache until the per-member TTL expires.
//! Members are GRISes or *other GIISes* — §3's "decentralized maintenance
//! and operation" implies the aggregates themselves aggregate, so a
//! site-level GIIS can register into an organization-level one.

use crate::dit::{DirEntry, DirectoryTree, Scope};
use crate::filter::Filter;
use crate::gris::Gris;
use infogram_gsi::Dn;
use infogram_sim::clock::SharedClock;
use infogram_sim::timer::TimerWheel;
use parking_lot::{lock_class, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// Anything a GIIS can aggregate: a leaf GRIS or another GIIS.
#[derive(Clone)]
pub enum AggregateSource {
    /// A per-host GRIS.
    Gris(Arc<Gris>),
    /// A lower-level aggregate (hierarchical GIIS).
    Giis(Arc<Giis>),
}

impl AggregateSource {
    fn snapshot(&self) -> Result<Vec<DirEntry>, String> {
        match self {
            // A GRIS pull is fallible: its keyword breakers may be open
            // with nothing cached (or quality floored to zero), in which
            // case the *aggregate's* cached copy of the member keeps
            // serving instead of the whole query failing.
            AggregateSource::Gris(g) => g
                .try_search_all(&Filter::everything())
                .map_err(|e| e.to_string()),
            // A child GIIS absorbs its own members' failures the same
            // way, so its snapshot is infallible.
            AggregateSource::Giis(g) => Ok(g.search_all(&Filter::everything())),
        }
    }
}

struct Member {
    source: AggregateSource,
    /// DNs this member contributed on its last pull, so a re-pull (or a
    /// shrinking member) replaces exactly its own entries — members may
    /// share subtrees (every GIIS roots at `/o=Grid`).
    contributed: Vec<Dn>,
}

/// The member list plus its re-pull schedule: each member always has
/// exactly one pending [`TimerWheel`] entry (its index) due at its next
/// TTL expiry, so a refresh round pops the due frontier instead of
/// scanning every member for staleness.
struct MemberTable {
    list: Vec<Member>,
    wheel: TimerWheel<usize>,
}

/// A virtual-organization aggregate directory.
pub struct Giis {
    clock: SharedClock,
    cache_ttl: Duration,
    base: Dn,
    tree: DirectoryTree,
    members: Mutex<MemberTable>,
    /// Number of pulls from member GRISes (cache misses).
    pulls: std::sync::atomic::AtomicU64,
    /// Number of member pulls that failed, where the aggregate kept
    /// serving the member's previously contributed (cached) entries.
    stale_pulls: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for Giis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Giis")
            .field("base", &self.base)
            .finish_non_exhaustive()
    }
}

impl Giis {
    /// An aggregate under `/o=Grid` with the given member cache TTL.
    pub fn new(clock: SharedClock, cache_ttl: Duration) -> Arc<Self> {
        Arc::new(Giis {
            clock,
            cache_ttl,
            base: Dn::from_rdns(vec![("o".to_string(), "Grid".to_string())])
                // lint:allow(unwrap) — fixed literal RDN, cannot fail validation
                .expect("static DN"),
            tree: DirectoryTree::new(),
            members: Mutex::with_class(
                MemberTable {
                    list: Vec::new(),
                    wheel: TimerWheel::new(),
                },
                lock_class!("mds.giis.members"),
            ),
            pulls: std::sync::atomic::AtomicU64::new(0),
            stale_pulls: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Register a member GRIS.
    pub fn register(&self, gris: Arc<Gris>) {
        self.register_source(AggregateSource::Gris(gris));
    }

    /// Register a lower-level GIIS (hierarchical aggregation).
    pub fn register_aggregate(&self, child: Arc<Giis>) {
        self.register_source(AggregateSource::Giis(child));
    }

    /// Register any aggregate source. The member is due for its first
    /// pull immediately.
    pub fn register_source(&self, source: AggregateSource) {
        let mut members = self.members.lock();
        let idx = members.list.len();
        members.list.push(Member {
            source,
            contributed: Vec::new(),
        });
        members.wheel.schedule(self.clock.now(), idx);
    }

    /// Number of member GRISes.
    pub fn member_count(&self) -> usize {
        self.members.lock().list.len()
    }

    /// Pulls performed so far (for the caching experiments).
    pub fn pull_count(&self) -> u64 {
        self.pulls.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Failed member pulls served from the aggregate's cached copy.
    pub fn stale_pull_count(&self) -> u64 {
        self.stale_pulls.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The aggregate's base DN.
    pub fn base(&self) -> &Dn {
        &self.base
    }

    fn refresh_expired(&self) {
        let now = self.clock.now();
        // The re-pull schedule is a timer wheel keyed by member index:
        // pop the due frontier instead of scanning every member. Each
        // popped member is rescheduled one TTL out below (on both the
        // success and the degraded path), so every member always has
        // exactly one pending wheel entry. Popping under the lock is
        // also the no-double-pull guarantee: a concurrent search finds
        // the wheel already drained and pulls nothing.
        let mut stale: Vec<(usize, AggregateSource)> = Vec::new();
        {
            let mut members = self.members.lock();
            while let Some(due) = members.wheel.pop_due(now) {
                let idx = due.item;
                stale.push((idx, members.list[idx].source.clone()));
            }
        }
        if stale.is_empty() {
            return;
        }
        // Scatter: snapshot every due member concurrently — one slow
        // member (or a deep child GIIS) no longer serializes the whole
        // pull round. The members lock is NOT held here: member pulls
        // execute providers and can block for a long time, and holding
        // the table lock across them would wedge every concurrent
        // search behind one slow member (sim::lockdep flags exactly
        // this pattern). Child sources lock only their own state.
        let snapshots = infogram_sim::par::fan_out(&stale, |_, (_, src)| src.snapshot());
        // Gather: re-acquire and apply tree mutations sequentially, in
        // member order. `list` only ever grows (members are never
        // removed), so the popped indices stay valid across the gap.
        let mut guard = self.members.lock();
        let members = &mut *guard;
        for ((idx, _), snapshot) in stale.iter().zip(snapshots) {
            let member = &mut members.list[*idx];
            let entries = match snapshot {
                Ok(entries) => entries,
                Err(_why) => {
                    // Member fault domain: keep whatever this member
                    // contributed last time in the tree, push the next
                    // pull a full TTL out so the member is not hammered,
                    // and count the degraded serve.
                    members.wheel.schedule(now.plus(self.cache_ttl), *idx);
                    self.stale_pulls
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    continue;
                }
            };
            for dn in member.contributed.drain(..) {
                self.tree.remove(&dn);
            }
            member.contributed = entries.iter().map(|e| e.dn.clone()).collect();
            for e in entries {
                self.tree.put(e);
            }
            members.wheel.schedule(now.plus(self.cache_ttl), *idx);
            self.pulls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Search the aggregate (refreshing expired members first).
    pub fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> Vec<DirEntry> {
        self.refresh_expired();
        self.tree.search(base, scope, filter)
    }

    /// Search the whole organization.
    pub fn search_all(&self, filter: &Filter) -> Vec<DirEntry> {
        self.search(&self.base.clone(), Scope::Sub, filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_host::commands::{ChargeMode, CommandRegistry};
    use infogram_host::machine::{HostConfig, SimulatedHost};
    use infogram_info::config::ServiceConfig;
    use infogram_info::service::InformationService;
    use infogram_sim::metrics::MetricSet;
    use infogram_sim::ManualClock;

    fn giis_with_hosts(n: usize) -> (Arc<ManualClock>, Arc<Giis>) {
        let clock = ManualClock::new();
        let giis = Giis::new(clock.clone(), Duration::from_secs(30));
        for i in 0..n {
            let host = SimulatedHost::new(
                HostConfig {
                    hostname: format!("node{i:02}.grid"),
                    seed: 77 + i as u64,
                    ..Default::default()
                },
                clock.clone(),
            );
            let reg = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
            let info = InformationService::from_config(
                &ServiceConfig::table1(),
                reg,
                clock.clone(),
                MetricSet::new(),
            );
            giis.register(Gris::new(info));
        }
        (clock, giis)
    }

    #[test]
    fn aggregates_member_subtrees() {
        let (_c, giis) = giis_with_hosts(3);
        assert_eq!(giis.member_count(), 3);
        let hosts = giis.search_all(&Filter::parse("(objectclass=GridResource)").unwrap());
        assert_eq!(hosts.len(), 3);
        let mems = giis.search_all(&Filter::parse("(kw=Memory)").unwrap());
        assert_eq!(mems.len(), 3);
    }

    #[test]
    fn cache_avoids_repeat_pulls() {
        let (clock, giis) = giis_with_hosts(2);
        giis.search_all(&Filter::everything());
        assert_eq!(giis.pull_count(), 2);
        giis.search_all(&Filter::everything());
        assert_eq!(giis.pull_count(), 2, "served from the aggregate cache");
        clock.advance(Duration::from_secs(31));
        giis.search_all(&Filter::everything());
        assert_eq!(giis.pull_count(), 4, "expired members re-pulled");
    }

    #[test]
    fn scoped_search_on_one_host() {
        let (_c, giis) = giis_with_hosts(2);
        let base = Dn::parse("/o=Grid/hn=node01.grid").unwrap();
        let under = giis.search(&base, Scope::Sub, &Filter::everything());
        assert_eq!(under.len(), 6, "host entry + 5 keywords");
        for e in &under {
            assert!(e.dn.to_string().contains("node01.grid"));
        }
    }

    #[test]
    fn hierarchical_giis_of_giis() {
        // Two site-level aggregates, each over 2 hosts, rolled up into an
        // organization-level GIIS — §3's decentralized operation.
        let clock = ManualClock::new();
        let org = Giis::new(clock.clone(), Duration::from_secs(60));
        for site in 0..2 {
            let site_giis = Giis::new(clock.clone(), Duration::from_secs(10));
            for host_i in 0..2 {
                let host = SimulatedHost::new(
                    HostConfig {
                        hostname: format!("s{site}h{host_i}.grid"),
                        seed: 9_000 + site * 10 + host_i,
                        ..Default::default()
                    },
                    clock.clone(),
                );
                let reg = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
                let info = InformationService::from_config(
                    &ServiceConfig::table1(),
                    reg,
                    clock.clone(),
                    MetricSet::new(),
                );
                site_giis.register(Gris::new(info));
            }
            org.register_aggregate(site_giis);
        }
        assert_eq!(org.member_count(), 2, "two site aggregates");
        let hosts = org.search_all(&Filter::parse("(objectclass=GridResource)").unwrap());
        assert_eq!(hosts.len(), 4, "all four hosts visible at the top");
        let mems = org.search_all(&Filter::parse("(kw=Memory)").unwrap());
        assert_eq!(mems.len(), 4);
        // A second top-level search within both TTLs pulls nothing new.
        let pulls_before = org.pull_count();
        org.search_all(&Filter::everything());
        assert_eq!(org.pull_count(), pulls_before);
    }

    #[test]
    fn repull_replaces_only_that_members_entries() {
        // Two members sharing the /o=Grid subtree: refreshing one must
        // not clobber the other's entries.
        let (clock, giis) = giis_with_hosts(2);
        giis.search_all(&Filter::everything());
        // Expire the cache and search again: both members re-pull and
        // the entry count stays stable (no duplicate or lost subtrees).
        let before = giis
            .search_all(&Filter::parse("(objectclass=InfoGramProvider)").unwrap())
            .len();
        clock.advance(Duration::from_secs(31));
        let after = giis
            .search_all(&Filter::parse("(objectclass=InfoGramProvider)").unwrap())
            .len();
        assert_eq!(before, after);
        assert_eq!(before, 10, "5 keywords x 2 hosts");
    }

    #[test]
    fn open_member_serves_cached_records() {
        use infogram_sim::fault::{Fault, FaultPlan};
        let clock = ManualClock::new();
        let giis = Giis::new(clock.clone(), Duration::from_secs(30));
        let mut regs = Vec::new();
        for i in 0..2 {
            let host = SimulatedHost::new(
                HostConfig {
                    hostname: format!("node{i:02}.grid"),
                    seed: 77 + i as u64,
                    ..Default::default()
                },
                clock.clone(),
            );
            let reg = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
            regs.push(reg.clone());
            let info = InformationService::from_config(
                &ServiceConfig::table1(),
                reg,
                clock.clone(),
                MetricSet::new(),
            );
            giis.register(Gris::new(info));
        }
        // Healthy first pull: both members contribute host + 5 keywords.
        assert_eq!(giis.search_all(&Filter::everything()).len(), 12);
        assert_eq!(giis.pull_count(), 2);

        // Every provider command on node00 now fails. By the time the
        // GIIS cache expires, every snapshot is far past its (Binary)
        // lifetime, so node00's GRIS fails hard instead of stale-serving
        // — the aggregate must fall back to its own cached copy.
        let plan = FaultPlan::new();
        for cmd in ["date", "sysinfo", "cpuload", "ls"] {
            plan.script(cmd, vec![Fault::Fail; 12]);
        }
        regs[0].set_fault_plan(plan);
        clock.advance(Duration::from_secs(31));
        let entries = giis.search_all(&Filter::everything());
        assert_eq!(entries.len(), 12, "failed member's cached entries serve");
        assert_eq!(giis.stale_pull_count(), 1);
        assert_eq!(giis.pull_count(), 3, "healthy member still re-pulled");

        // Fault plan removed: the next expiry round pulls fresh again.
        regs[0].clear_fault_plan();
        clock.advance(Duration::from_secs(31));
        assert_eq!(giis.search_all(&Filter::everything()).len(), 12);
        assert_eq!(giis.pull_count(), 5);
        assert_eq!(giis.stale_pull_count(), 1, "no new degraded pulls");
    }

    #[test]
    fn cross_host_filter_query() {
        // The "google-like" VO query: which hosts have free memory?
        let (_c, giis) = giis_with_hosts(4);
        let f = Filter::parse("(&(objectclass=InfoGramProvider)(Memory-free>=1))").unwrap();
        let found = giis.search_all(&f);
        assert_eq!(found.len(), 4);
    }
}
