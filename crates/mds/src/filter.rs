//! LDAP-style search filters (RFC 2254 subset).
//!
//! Supported: `(&...)`, `(|...)`, `(!...)`, `(attr=value)`,
//! `(attr=*)` presence, `(attr=sub*strings*)` substring matching, and the
//! ordering comparisons `(attr>=v)` / `(attr<=v)` (numeric when both
//! sides parse as numbers, lexicographic otherwise). Attribute names are
//! case-insensitive.

use std::fmt;

/// A parsed search filter.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// `(&(f1)(f2)...)` — all must match. Empty = always true.
    And(Vec<Filter>),
    /// `(|(f1)(f2)...)` — any must match. Empty = always false.
    Or(Vec<Filter>),
    /// `(!(f))`.
    Not(Box<Filter>),
    /// `(attr=value)`.
    Equals(String, String),
    /// `(attr=*)`.
    Present(String),
    /// `(attr=a*b*c)` — ordered substring match with optional anchors.
    Substring(String, Vec<String>, bool, bool),
    /// `(attr>=value)`.
    GreaterEq(String, String),
    /// `(attr<=value)`.
    LessEq(String, String),
}

/// A filter parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterParseError {
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for FilterParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter parse error: {}", self.reason)
    }
}

impl std::error::Error for FilterParseError {}

fn err(reason: &str) -> FilterParseError {
    FilterParseError {
        reason: reason.to_string(),
    }
}

impl Filter {
    /// Match-everything filter, the `(objectclass=*)` idiom.
    pub fn everything() -> Filter {
        Filter::Present("objectclass".to_string())
    }

    /// Parse a filter string.
    pub fn parse(s: &str) -> Result<Filter, FilterParseError> {
        let s = s.trim();
        let mut chars = s.char_indices().peekable();
        let filter = parse_filter(s, &mut chars)?;
        if chars.next().is_some() {
            return Err(err("trailing characters after filter"));
        }
        Ok(filter)
    }

    /// Evaluate against a multi-valued attribute lookup: `get(attr)`
    /// returns all values of an attribute.
    pub fn matches(&self, get: &dyn Fn(&str) -> Vec<String>) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(get)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(get)),
            Filter::Not(f) => !f.matches(get),
            Filter::Present(attr) => !get(attr).is_empty(),
            Filter::Equals(attr, want) => get(attr).iter().any(|v| v == want),
            Filter::Substring(attr, parts, anchored_start, anchored_end) => get(attr)
                .iter()
                .any(|v| substring_match(v, parts, *anchored_start, *anchored_end)),
            Filter::GreaterEq(attr, want) => get(attr)
                .iter()
                .any(|v| compare(v, want) >= std::cmp::Ordering::Equal),
            Filter::LessEq(attr, want) => get(attr)
                .iter()
                .any(|v| compare(v, want) <= std::cmp::Ordering::Equal),
        }
    }
}

/// Numeric when both parse, else lexicographic.
fn compare(a: &str, b: &str) -> std::cmp::Ordering {
    match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => a.cmp(b),
    }
}

fn substring_match(
    value: &str,
    parts: &[String],
    anchored_start: bool,
    anchored_end: bool,
) -> bool {
    let mut rest = value;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        match rest.find(part.as_str()) {
            Some(pos) => {
                if i == 0 && anchored_start && pos != 0 {
                    return false;
                }
                rest = &rest[pos + part.len()..];
            }
            None => return false,
        }
    }
    if anchored_end {
        if let Some(last) = parts.last().filter(|p| !p.is_empty()) {
            return value.ends_with(last.as_str()) && {
                // ensure the end-anchored part is the one we matched last
                true
            };
        }
    }
    true
}

type CharStream<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn expect(chars: &mut CharStream, want: char) -> Result<(), FilterParseError> {
    match chars.next() {
        Some((_, c)) if c == want => Ok(()),
        Some((_, c)) => Err(err(&format!("expected '{want}', found '{c}'"))),
        None => Err(err(&format!("expected '{want}', found end"))),
    }
}

fn parse_filter(src: &str, chars: &mut CharStream) -> Result<Filter, FilterParseError> {
    expect(chars, '(')?;
    let filter = match chars.peek().map(|&(_, c)| c) {
        Some('&') => {
            chars.next();
            Filter::And(parse_list(src, chars)?)
        }
        Some('|') => {
            chars.next();
            Filter::Or(parse_list(src, chars)?)
        }
        Some('!') => {
            chars.next();
            let inner = parse_filter(src, chars)?;
            Filter::Not(Box::new(inner))
        }
        Some(_) => parse_comparison(src, chars)?,
        None => return Err(err("unexpected end inside filter")),
    };
    expect(chars, ')')?;
    Ok(filter)
}

fn parse_list(src: &str, chars: &mut CharStream) -> Result<Vec<Filter>, FilterParseError> {
    let mut out = Vec::new();
    while matches!(chars.peek(), Some(&(_, '('))) {
        out.push(parse_filter(src, chars)?);
    }
    Ok(out)
}

fn parse_comparison(src: &str, chars: &mut CharStream) -> Result<Filter, FilterParseError> {
    // attribute name up to =, >=, <=
    let start = chars.peek().map(|&(i, _)| i).ok_or_else(|| err("empty"))?;
    let mut attr_end = start;
    let mut op = None;
    while let Some(&(i, c)) = chars.peek() {
        match c {
            '=' => {
                chars.next();
                op = Some("=");
                attr_end = i;
                break;
            }
            '>' | '<' => {
                chars.next();
                expect(chars, '=')?;
                op = Some(if c == '>' { ">=" } else { "<=" });
                attr_end = i;
                break;
            }
            ')' | '(' => return Err(err("missing comparison operator")),
            _ => {
                chars.next();
            }
        }
    }
    let op = op.ok_or_else(|| err("missing comparison operator"))?;
    let attr = src[start..attr_end].trim().to_ascii_lowercase();
    if attr.is_empty() {
        return Err(err("empty attribute name"));
    }
    // value up to the closing paren
    let vstart = chars.peek().map(|&(i, _)| i).unwrap_or(src.len());
    let mut vend = vstart;
    while let Some(&(i, c)) = chars.peek() {
        if c == ')' {
            vend = i;
            break;
        }
        if c == '(' {
            return Err(err("'(' inside a value"));
        }
        chars.next();
        vend = i + c.len_utf8();
    }
    let value = &src[vstart..vend];
    Ok(match op {
        ">=" => Filter::GreaterEq(attr, value.to_string()),
        "<=" => Filter::LessEq(attr, value.to_string()),
        _ => {
            if value == "*" {
                Filter::Present(attr)
            } else if value.contains('*') {
                let anchored_start = !value.starts_with('*');
                let anchored_end = !value.ends_with('*');
                let parts: Vec<String> = value
                    .split('*')
                    .filter(|p| !p.is_empty())
                    .map(str::to_string)
                    .collect();
                Filter::Substring(attr, parts, anchored_start, anchored_end)
            } else {
                Filter::Equals(attr, value.to_string())
            }
        }
    })
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::And(fs) => {
                write!(f, "(&")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Filter::Or(fs) => {
                write!(f, "(|")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Filter::Not(x) => write!(f, "(!{x})"),
            Filter::Equals(a, v) => write!(f, "({a}={v})"),
            Filter::Present(a) => write!(f, "({a}=*)"),
            Filter::Substring(a, parts, anchored_start, anchored_end) => {
                write!(f, "({a}=")?;
                if !anchored_start {
                    write!(f, "*")?;
                }
                write!(f, "{}", parts.join("*"))?;
                if !anchored_end {
                    write!(f, "*")?;
                }
                write!(f, ")")
            }
            Filter::GreaterEq(a, v) => write!(f, "({a}>={v})"),
            Filter::LessEq(a, v) => write!(f, "({a}<={v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn getter<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Vec<String> + 'a {
        move |attr: &str| {
            pairs
                .iter()
                .filter(|(k, _)| k.eq_ignore_ascii_case(attr))
                .map(|(_, v)| v.to_string())
                .collect()
        }
    }

    #[test]
    fn parse_and_eval_equals() {
        let f = Filter::parse("(cn=gregor)").unwrap();
        assert!(f.matches(&getter(&[("cn", "gregor")])));
        assert!(!f.matches(&getter(&[("cn", "ian")])));
        assert!(!f.matches(&getter(&[])));
    }

    #[test]
    fn presence() {
        let f = Filter::parse("(objectclass=*)").unwrap();
        assert_eq!(f, Filter::Present("objectclass".to_string()));
        assert!(f.matches(&getter(&[("objectclass", "top")])));
        assert!(!f.matches(&getter(&[("cn", "x")])));
    }

    #[test]
    fn boolean_combinations() {
        let f = Filter::parse("(&(a=1)(|(b=2)(b=3))(!(c=4)))").unwrap();
        assert!(f.matches(&getter(&[("a", "1"), ("b", "3")])));
        assert!(!f.matches(&getter(&[("a", "1"), ("b", "9")])));
        assert!(!f.matches(&getter(&[("a", "1"), ("b", "2"), ("c", "4")])));
    }

    #[test]
    fn numeric_comparisons() {
        let f = Filter::parse("(memory-free>=1000)").unwrap();
        assert!(f.matches(&getter(&[("memory-free", "2048")])));
        assert!(f.matches(&getter(&[("memory-free", "1000")])));
        assert!(!f.matches(&getter(&[("memory-free", "999")])));
        // "2048" numerically beats "999" even though lexicographically
        // smaller — numeric comparison kicks in.
        let f = Filter::parse("(x<=10)").unwrap();
        assert!(f.matches(&getter(&[("x", "9.5")])));
        assert!(!f.matches(&getter(&[("x", "10.1")])));
    }

    #[test]
    fn lexicographic_fallback() {
        let f = Filter::parse("(name>=m)").unwrap();
        assert!(f.matches(&getter(&[("name", "zeta")])));
        assert!(!f.matches(&getter(&[("name", "alpha")])));
    }

    #[test]
    fn substring_matching() {
        let f = Filter::parse("(host=node*grid*)").unwrap();
        assert!(f.matches(&getter(&[("host", "node07.grid.example.org")])));
        assert!(!f.matches(&getter(&[("host", "head.grid.example.org")])));
        let f = Filter::parse("(host=*example.org)").unwrap();
        assert!(f.matches(&getter(&[("host", "a.example.org")])));
        assert!(!f.matches(&getter(&[("host", "a.example.com")])));
    }

    #[test]
    fn multivalued_attributes() {
        let f = Filter::parse("(member=alice)").unwrap();
        assert!(f.matches(&getter(&[("member", "bob"), ("member", "alice")])));
    }

    #[test]
    fn attribute_names_case_insensitive() {
        let f = Filter::parse("(CN=x)").unwrap();
        assert!(f.matches(&getter(&[("cn", "x")])));
    }

    #[test]
    fn empty_and_or_semantics() {
        assert!(Filter::And(vec![]).matches(&getter(&[])));
        assert!(!Filter::Or(vec![]).matches(&getter(&[])));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "", "cn=x", "(cn=x", "(cn)", "((a=b))", "(a=b)x", "(=v)", "(a=(b))",
        ] {
            assert!(Filter::parse(bad).is_err(), "'{bad}' should fail");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        for src in [
            "(cn=gregor)",
            "(objectclass=*)",
            "(&(a=1)(b=2))",
            "(|(a=1)(!(b=2)))",
            "(memory-free>=1000)",
            "(x<=5)",
            "(host=*grid*)",
            "(host=node*org)",
        ] {
            let f = Filter::parse(src).unwrap();
            let printed = f.to_string();
            assert_eq!(Filter::parse(&printed).unwrap(), f, "{src} → {printed}");
        }
    }
}
