//! The MDS client.
//!
//! Performs the GSI bind, then issues searches over the MDS protocol.
//! In the baseline world of Figure 2, a grid client holds one of these
//! *and* a GRAM client — two connections, two protocols.

use crate::dit::{DirEntry, Scope};
use crate::protocol::{entries_from_text, MdsReply, MdsRequest};
use infogram_gsi::{
    wire_client_finish, wire_client_hello, Certificate, Credential, SecurityContext,
};
use infogram_proto::transport::{Conn, ProtoError, Transport};
use infogram_sim::clock::SharedClock;
use infogram_sim::SplitMix64;
#[cfg(test)]
use std::sync::Arc;

/// Why an MDS operation failed.
#[derive(Debug)]
pub enum MdsClientError {
    /// Transport problem.
    Transport(ProtoError),
    /// Bind (handshake) rejected.
    BindFailed(String),
    /// The server answered with an error.
    Server(String),
    /// The reply did not decode.
    Protocol(String),
}

impl std::fmt::Display for MdsClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdsClientError::Transport(e) => write!(f, "transport: {e}"),
            MdsClientError::BindFailed(m) => write!(f, "bind failed: {m}"),
            MdsClientError::Server(m) => write!(f, "server error: {m}"),
            MdsClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for MdsClientError {}

impl From<ProtoError> for MdsClientError {
    fn from(e: ProtoError) -> Self {
        MdsClientError::Transport(e)
    }
}

/// A bound MDS session.
pub struct MdsClient {
    conn: Box<dyn Conn>,
    context: SecurityContext,
    searches: u64,
}

impl std::fmt::Debug for MdsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MdsClient")
            .field("peer", &self.context.peer.to_string())
            .finish_non_exhaustive()
    }
}

impl MdsClient {
    /// Connect and bind (GSI handshake).
    pub fn bind(
        transport: &dyn Transport,
        addr: &str,
        credential: &Credential,
        trust_roots: &[Certificate],
        clock: &SharedClock,
    ) -> Result<MdsClient, MdsClientError> {
        let conn = transport.connect(addr)?;
        let now = clock.now();
        let mut rng = SplitMix64::new(now.as_nanos() ^ 0xb1d);
        let (hello, nonce) = wire_client_hello(credential, &mut rng);
        conn.send(&hello)?;
        let resp = conn.recv()?;
        let (fin, context) = wire_client_finish(credential, trust_roots, &resp, nonce, now)
            .map_err(|e| MdsClientError::BindFailed(e.to_string()))?;
        conn.send(&fin)?;
        // Bind ack (or error).
        let ack = conn.recv()?;
        match MdsReply::decode(&ack) {
            Ok(MdsReply::SearchResult { .. }) => {}
            Ok(MdsReply::Error { message }) => return Err(MdsClientError::BindFailed(message)),
            Err(e) => return Err(MdsClientError::Protocol(e.to_string())),
        }
        Ok(MdsClient {
            conn,
            context,
            searches: 0,
        })
    }

    /// The authenticated server identity.
    pub fn server_identity(&self) -> &SecurityContext {
        &self.context
    }

    /// Searches issued on this session.
    pub fn search_count(&self) -> u64 {
        self.searches
    }

    /// Issue one search.
    pub fn search(
        &mut self,
        base: &str,
        scope: Scope,
        filter: &str,
    ) -> Result<Vec<DirEntry>, MdsClientError> {
        let req = MdsRequest::Search {
            base: base.to_string(),
            scope,
            filter: filter.to_string(),
        };
        self.conn.send(&req.encode())?;
        let bytes = self.conn.recv()?;
        self.searches += 1;
        match MdsReply::decode(&bytes) {
            Ok(MdsReply::SearchResult { body, .. }) => Ok(entries_from_text(&body)),
            Ok(MdsReply::Error { message }) => Err(MdsClientError::Server(message)),
            Err(e) => Err(MdsClientError::Protocol(e.to_string())),
        }
    }

    /// Close the session politely.
    pub fn unbind(self) {
        let _ = self.conn.send(&MdsRequest::Unbind.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gris::Gris;
    use crate::service::{Directory, MdsServer};
    use infogram_gsi::{CertificateAuthority, Dn};
    use infogram_host::commands::{ChargeMode, CommandRegistry};
    use infogram_host::machine::SimulatedHost;
    use infogram_info::config::ServiceConfig;
    use infogram_info::service::InformationService;
    use infogram_proto::transport::mem::MemNetwork;
    use infogram_sim::metrics::MetricSet;
    use infogram_sim::{SimTime, SystemClock};
    use std::time::Duration;

    struct World {
        clock: SharedClock,
        net: Arc<MemNetwork>,
        server: Arc<MdsServer>,
        user: Credential,
        roots: Vec<Certificate>,
    }

    fn world() -> World {
        let clock: SharedClock = SystemClock::shared();
        let mut rng = SplitMix64::new(404);
        let ca = CertificateAuthority::new_root(
            &Dn::user("Grid", "CA", "Root"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(86_400 * 365),
        );
        let user = ca.issue(
            &Dn::user("Grid", "ANL", "Client"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let host_cred = ca.issue(
            &Dn::user("Grid", "Hosts", "mds.grid"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let roots = vec![ca.certificate().clone()];

        let host = SimulatedHost::default_on(clock.clone());
        let reg = CommandRegistry::new(host, ChargeMode::None);
        let info = InformationService::from_config(
            &ServiceConfig::table1(),
            reg,
            clock.clone(),
            MetricSet::new(),
        );
        let gris = Gris::new(info);
        let net = MemNetwork::ideal();
        let server = MdsServer::start(
            Directory::Gris(gris),
            &net,
            "mds.grid:2135",
            host_cred,
            roots.clone(),
            clock.clone(),
        )
        .unwrap();
        World {
            clock,
            net,
            server,
            user,
            roots,
        }
    }

    #[test]
    fn bind_search_unbind() {
        let w = world();
        let mut client =
            MdsClient::bind(&w.net, w.server.addr(), &w.user, &w.roots, &w.clock).unwrap();
        assert_eq!(
            client.server_identity().peer,
            Dn::user("Grid", "Hosts", "mds.grid")
        );
        let entries = client.search("/o=Grid", Scope::Sub, "(kw=Memory)").unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].first("Memory-total").is_some());
        assert_eq!(client.search_count(), 1);
        client.unbind();
        w.server.shutdown();
    }

    #[test]
    fn search_with_bad_filter_is_server_error() {
        let w = world();
        let mut client =
            MdsClient::bind(&w.net, w.server.addr(), &w.user, &w.roots, &w.clock).unwrap();
        match client.search("/o=Grid", Scope::Sub, "not a filter") {
            Err(MdsClientError::Server(_)) => {}
            other => panic!("{other:?}"),
        }
        w.server.shutdown();
    }

    #[test]
    fn untrusted_client_rejected_at_bind() {
        let w = world();
        let mut rogue_rng = SplitMix64::new(999);
        let rogue_ca = CertificateAuthority::new_root(
            &Dn::user("Rogue", "CA", "Evil"),
            &mut rogue_rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        let impostor = rogue_ca.issue(
            &Dn::user("Grid", "ANL", "Impostor"),
            &mut rogue_rng,
            SimTime::ZERO,
            Duration::from_secs(3600),
        );
        match MdsClient::bind(&w.net, w.server.addr(), &impostor, &w.roots, &w.clock) {
            Err(MdsClientError::BindFailed(_)) | Err(MdsClientError::Protocol(_)) => {}
            other => panic!("{:?}", other.map(|_| "bound")),
        }
        w.server.shutdown();
    }

    #[test]
    fn connection_and_message_accounting() {
        let w = world();
        let mut client =
            MdsClient::bind(&w.net, w.server.addr(), &w.user, &w.roots, &w.clock).unwrap();
        client
            .search("/o=Grid", Scope::Sub, "(objectclass=*)")
            .unwrap();
        // 1 connection; handshake (3) + ack (1) + search req/reply (2).
        assert_eq!(w.net.metrics().counter_value("net.connections"), 1);
        assert!(w.net.metrics().counter_value("net.messages") >= 6);
        w.server.shutdown();
    }
}
