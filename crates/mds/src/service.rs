//! The network-facing MDS server.
//!
//! GSI-authenticated ("the newest implementation of a Grid information
//! service ... integrates GSI to perform authentication", §3), then an
//! LDAP-style search loop over the MDS protocol. Can front either a
//! single GRIS or a GIIS aggregate.

use crate::dit::{DirEntry, Scope};
use crate::filter::Filter;
use crate::giis::Giis;
use crate::gris::Gris;
use crate::protocol::{entries_to_text, MdsReply, MdsRequest};
use infogram_gsi::{wire_server_respond, wire_server_verify, Certificate, Credential, Dn};
use infogram_proto::transport::{Conn, Listener, ProtoError, Transport};
use infogram_sim::clock::SharedClock;
use infogram_sim::SplitMix64;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What an MDS server fronts.
#[derive(Clone)]
pub enum Directory {
    /// A single host's GRIS.
    Gris(Arc<Gris>),
    /// A virtual-organization GIIS.
    Giis(Arc<Giis>),
}

impl Directory {
    fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> Vec<DirEntry> {
        match self {
            Directory::Gris(g) => g.search(base, scope, filter),
            Directory::Giis(g) => g.search(base, scope, filter),
        }
    }
}

/// A running MDS server.
pub struct MdsServer {
    directory: Directory,
    credential: Credential,
    trust_roots: Vec<Certificate>,
    clock: SharedClock,
    addr: String,
    listener: Arc<Box<dyn Listener>>,
    running: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for MdsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MdsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MdsServer {
    /// Bind and start serving.
    pub fn start(
        directory: Directory,
        transport: &dyn Transport,
        bind_addr: &str,
        credential: Credential,
        trust_roots: Vec<Certificate>,
        clock: SharedClock,
    ) -> Result<Arc<Self>, ProtoError> {
        let listener: Arc<Box<dyn Listener>> = Arc::new(transport.listen(bind_addr)?);
        let addr = listener.local_addr();
        let server = Arc::new(MdsServer {
            directory,
            credential,
            trust_roots,
            clock,
            addr,
            listener: Arc::clone(&listener),
            running: Arc::new(AtomicBool::new(true)),
            accept_thread: Mutex::new(None),
        });
        let accept_server = Arc::clone(&server);
        // lint:allow(thread-spawn) — long-lived accept loop; joined via
        // accept_thread on shutdown, so sim::par's scoped join is the
        // wrong shape.
        let handle = std::thread::spawn(move || {
            while accept_server.running.load(Ordering::SeqCst) {
                match accept_server.listener.accept() {
                    Ok(conn) => {
                        let conn: Arc<dyn Conn> = Arc::from(conn);
                        let server = Arc::clone(&accept_server);
                        // lint:allow(thread-spawn) — per-connection server
                        // thread detaches for the connection's lifetime
                        // (client-paced, no bounded join point).
                        std::thread::spawn(move || server.serve_connection(conn));
                    }
                    Err(_) => break,
                }
            }
        });
        *server.accept_thread.lock() = Some(handle);
        Ok(server)
    }

    /// The bound address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop accepting.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        self.listener.close();
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
    }

    fn serve_connection(&self, conn: Arc<dyn Conn>) {
        // GSI bind.
        let now = self.clock.now();
        let mut rng = SplitMix64::new(now.as_nanos() ^ 0x4d45_5344);
        let Ok(hello) = conn.recv() else { return };
        let Ok((resp, pending)) =
            wire_server_respond(&self.credential, &self.trust_roots, &hello, now, &mut rng)
        else {
            let _ = conn.send(
                &MdsReply::Error {
                    message: "bind failed: bad credentials".to_string(),
                }
                .encode(),
            );
            return;
        };
        if conn.send(&resp).is_err() {
            return;
        }
        let Ok(fin) = conn.recv() else { return };
        if wire_server_verify(&pending, &fin).is_err() {
            let _ = conn.send(
                &MdsReply::Error {
                    message: "bind failed: bad proof".to_string(),
                }
                .encode(),
            );
            return;
        }
        let _ = conn.send(
            &MdsReply::SearchResult {
                body: String::new(),
                count: 0,
            }
            .encode(),
        ); // bind ack

        // Search loop.
        while let Ok(bytes) = conn.recv() {
            let reply = match MdsRequest::decode(&bytes) {
                Ok(MdsRequest::Unbind) => break,
                Ok(MdsRequest::Search {
                    base,
                    scope,
                    filter,
                }) => match (Dn::parse(&base), Filter::parse(&filter)) {
                    (Ok(base), Ok(filter)) => {
                        let entries = self.directory.search(&base, scope, &filter);
                        MdsReply::SearchResult {
                            body: entries_to_text(&entries),
                            count: entries.len() as u32,
                        }
                    }
                    (Err(e), _) => MdsReply::Error {
                        message: e.to_string(),
                    },
                    (_, Err(e)) => MdsReply::Error {
                        message: e.to_string(),
                    },
                },
                Err(e) => MdsReply::Error {
                    message: e.to_string(),
                },
            };
            if conn.send(&reply.encode()).is_err() {
                break;
            }
        }
    }
}
