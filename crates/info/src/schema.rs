//! Service reflection: the `(info=schema)` answer.
//!
//! §6.5: "Each information service can be queried and a client may
//! inspect the schema that is returned by the information service. Thus it
//! will allow developers to design programs that can be flexible to the
//! actually used information schema."
//!
//! The schema lists every configured keyword with its properties (TTL,
//! delay, degradation function, source command, performance statistics)
//! and — once the keyword has produced at least once — the attribute
//! names it exposes.

use crate::entry::SystemInformation;
use crate::service::InformationService;
use infogram_proto::record::InfoRecord;
use std::sync::Arc;

/// A reflective description of one keyword.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordSchema {
    /// The keyword.
    pub keyword: String,
    /// Cache TTL in milliseconds.
    pub ttl_ms: u128,
    /// Update-throttle delay in milliseconds.
    pub delay_ms: u128,
    /// Degradation function name.
    pub degradation: String,
    /// Provider source (command line, file path, …).
    pub source: String,
    /// Attribute names observed on the last production, if any.
    pub attributes: Option<Vec<String>>,
    /// Performance catalog: (mean seconds, std-dev seconds, samples).
    pub performance: (f64, f64, u64),
}

/// The whole service's schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// Per-keyword schemas, sorted by keyword.
    pub keywords: Vec<KeywordSchema>,
}

impl Schema {
    /// Reflect over a service.
    pub fn of(service: &InformationService) -> Schema {
        let mut keywords: Vec<KeywordSchema> =
            service.entries().iter().map(Self::of_entry).collect();
        keywords.sort_by(|a, b| a.keyword.cmp(&b.keyword));
        Schema { keywords }
    }

    fn of_entry(si: &Arc<SystemInformation>) -> KeywordSchema {
        let attributes = si
            .last_state()
            .ok()
            .map(|snap| snap.attributes.iter().map(|(k, _)| k.clone()).collect());
        KeywordSchema {
            keyword: si.keyword().to_string(),
            ttl_ms: si.ttl().as_millis(),
            delay_ms: si.delay().as_millis(),
            degradation: si.degradation().name().to_string(),
            source: si.source(),
            attributes,
            performance: si.average_update_time(),
        }
    }

    /// Render the schema as information records — "a hierarchical schema
    /// that contains all objects associated with the keywords and lists
    /// properties of their attributes" — so it travels through the same
    /// formats as any other information.
    pub fn to_records(&self, hostname: &str) -> Vec<InfoRecord> {
        self.keywords
            .iter()
            .map(|k| {
                let mut rec = InfoRecord::new(&format!("Schema.{}", k.keyword), hostname);
                rec.push("keyword", &k.keyword);
                rec.push("ttl_ms", &k.ttl_ms.to_string());
                rec.push("delay_ms", &k.delay_ms.to_string());
                rec.push("degradation", &k.degradation);
                rec.push("source", &k.source);
                match &k.attributes {
                    Some(attrs) => {
                        rec.push("attributes", &attrs.join(","));
                    }
                    None => {
                        rec.push("attributes", "(not yet produced)");
                    }
                }
                let (mean, std, n) = k.performance;
                rec.push("perf.mean_seconds", &format!("{mean:.6}"));
                rec.push("perf.std_seconds", &format!("{std:.6}"));
                rec.push("perf.samples", &n.to_string());
                rec
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use crate::service::QueryOptions;
    use infogram_host::commands::{ChargeMode, CommandRegistry};
    use infogram_host::machine::SimulatedHost;
    use infogram_rsl::InfoSelector;
    use infogram_sim::metrics::MetricSet;
    use infogram_sim::ManualClock;
    use std::sync::Arc;

    fn service() -> Arc<InformationService> {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        let reg = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
        InformationService::from_config(&ServiceConfig::table1(), reg, clock, MetricSet::new())
    }

    #[test]
    fn schema_lists_all_keywords_with_properties() {
        let svc = service();
        let schema = Schema::of(&svc);
        assert_eq!(schema.keywords.len(), 5);
        let date = schema
            .keywords
            .iter()
            .find(|k| k.keyword == "Date")
            .unwrap();
        assert_eq!(date.ttl_ms, 60);
        assert_eq!(date.degradation, "binary");
        assert_eq!(date.source, "date -u");
        assert!(date.attributes.is_none(), "never produced yet");
    }

    #[test]
    fn schema_learns_attributes_after_production() {
        let svc = service();
        svc.answer(
            &[InfoSelector::Keyword("Memory".to_string())],
            &QueryOptions::default(),
        )
        .unwrap();
        let schema = Schema::of(&svc);
        let mem = schema
            .keywords
            .iter()
            .find(|k| k.keyword == "Memory")
            .unwrap();
        assert_eq!(
            mem.attributes.as_deref(),
            Some(&["total".to_string(), "used".to_string(), "free".to_string()][..])
        );
        assert_eq!(mem.performance.2, 1, "one sample recorded");
    }

    #[test]
    fn schema_records_render() {
        let svc = service();
        let recs = Schema::of(&svc).to_records("node0");
        assert_eq!(recs.len(), 5);
        let cpuload = recs.iter().find(|r| r.keyword == "Schema.CPULoad").unwrap();
        assert_eq!(cpuload.get("ttl_ms").unwrap().value, "0");
        assert_eq!(
            cpuload.get("source").unwrap().value,
            "/usr/local/bin/cpuload.exe"
        );
    }

    #[test]
    fn info_schema_selector_goes_through_answer() {
        let svc = service();
        let recs = svc
            .answer(&[InfoSelector::Schema], &QueryOptions::default())
            .unwrap();
        assert_eq!(recs.len(), 5);
        assert!(recs.iter().all(|r| r.keyword.starts_with("Schema.")));
    }
}
