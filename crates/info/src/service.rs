//! The assembled information service.
//!
//! Holds the keyword registry ([`SystemInformation`] entries), answers
//! selector lists with the xRSL response modes, applies the quality
//! threshold and the attribute filter, and attaches the performance
//! catalog when asked — §6.2–6.6 of the paper, in one object.

use crate::config::ServiceConfig;
use crate::entry::{QueryError, Snapshot, SystemInformation};
use crate::provider::{CommandProvider, TelemetryProvider};
use crate::quality::DegradationFn;
use crate::schema::Schema;
use infogram_host::commands::CommandRegistry;
use infogram_proto::record::InfoRecord;
use infogram_rsl::{InfoSelector, ResponseMode};
use infogram_sim::clock::SharedClock;
use infogram_sim::metrics::MetricSet;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq)]
pub enum InfoServiceError {
    /// The keyword has no configured provider.
    UnknownKeyword(String),
    /// The provider layer failed.
    Query(QueryError),
}

impl std::fmt::Display for InfoServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InfoServiceError::UnknownKeyword(k) => write!(f, "unknown keyword '{k}'"),
            InfoServiceError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InfoServiceError {}

impl From<QueryError> for InfoServiceError {
    fn from(e: QueryError) -> Self {
        InfoServiceError::Query(e)
    }
}

/// Options accompanying a query — the xRSL tags that shape the answer.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// `(response=...)`.
    pub mode: ResponseMode,
    /// `(quality=...)` threshold in percent.
    pub quality_threshold: Option<f64>,
    /// `(filter=...)` attribute filter.
    pub filter: Option<String>,
    /// `(performance=true)` — attach timing statistics.
    pub performance: bool,
}

/// The information service of one host.
pub struct InformationService {
    hostname: String,
    clock: SharedClock,
    entries: RwLock<BTreeMap<String, Arc<SystemInformation>>>,
    metrics: MetricSet,
}

impl std::fmt::Debug for InformationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InformationService")
            .field("hostname", &self.hostname)
            .field("keywords", &self.keywords())
            .finish_non_exhaustive()
    }
}

impl InformationService {
    /// An empty service for a host.
    pub fn new(hostname: &str, clock: SharedClock, metrics: MetricSet) -> Arc<Self> {
        Arc::new(InformationService {
            hostname: hostname.to_string(),
            clock,
            entries: RwLock::new(BTreeMap::new()),
            metrics,
        })
    }

    /// Build a service from a configuration file (Table 1 style), wiring
    /// every entry to a [`CommandProvider`] on the given registry.
    pub fn from_config(
        config: &ServiceConfig,
        registry: Arc<CommandRegistry>,
        clock: SharedClock,
        metrics: MetricSet,
    ) -> Arc<Self> {
        let service =
            InformationService::new(registry.host().hostname(), clock.clone(), metrics);
        for entry in &config.entries {
            let provider = CommandProvider::new(
                &entry.keyword,
                &entry.command,
                Arc::clone(&registry),
            );
            let si = SystemInformation::new(
                Box::new(provider),
                clock.clone(),
                entry.ttl,
                entry.degradation.clone(),
            );
            si.set_delay(entry.delay);
            service.register(si);
        }
        service
    }

    /// Register a keyword entry (replacing any same-keyword entry). The
    /// entry is wired into this service's telemetry, so its monitor and
    /// delay gate contribute to `info.coalesced` / `info.throttled`.
    pub fn register(&self, si: Arc<SystemInformation>) {
        si.set_telemetry(self.metrics.clone());
        self.entries
            .write()
            .insert(si.keyword().to_ascii_lowercase(), si);
    }

    /// Register the built-in `Metrics:` keyword over the given telemetry
    /// handle — the service describing itself through its own query path.
    ///
    /// The entry has a TTL of zero (Table 1's "execute every time"
    /// convention), so each `(info=metrics)` reads a live snapshot; all
    /// the xRSL tags (`filter`, `response`, `format`, `performance`)
    /// apply to it like to any other keyword. Returns the entry.
    pub fn register_metrics_provider(
        &self,
        telemetry: MetricSet,
    ) -> Arc<SystemInformation> {
        let si = SystemInformation::new(
            Box::new(TelemetryProvider::new(telemetry)),
            self.clock.clone(),
            std::time::Duration::ZERO,
            DegradationFn::default(),
        );
        self.register(Arc::clone(&si));
        si
    }

    /// Hostname this service describes.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// The service's metric sink.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// Configured keywords, in canonical case, sorted.
    pub fn keywords(&self) -> Vec<String> {
        self.entries
            .read()
            .values()
            .map(|si| si.keyword().to_string())
            .collect()
    }

    /// Look up a keyword case-insensitively.
    pub fn lookup(&self, keyword: &str) -> Option<Arc<SystemInformation>> {
        self.entries
            .read()
            .get(&keyword.to_ascii_lowercase())
            .cloned()
    }

    /// All entries (for schema reflection and aggregation).
    pub fn entries(&self) -> Vec<Arc<SystemInformation>> {
        self.entries.read().values().cloned().collect()
    }

    /// Fetch one keyword's snapshot under a response mode and quality
    /// threshold.
    fn fetch(
        &self,
        si: &SystemInformation,
        opts: &QueryOptions,
    ) -> Result<Snapshot, QueryError> {
        self.metrics.counter("info.queries").incr();
        // §6.6 quality tag: "If the degradation function of any of its
        // returned attributes is below that threshold, this attribute is
        // regenerated by the associated command."
        let quality_forces_refresh = match (opts.quality_threshold, opts.mode) {
            (Some(threshold), ResponseMode::Cached) => match si.current_quality() {
                Some(q) => q * 100.0 < threshold,
                None => false, // nothing cached yet; normal path handles it
            },
            _ => false,
        };
        let before = self.clock.now();
        let snap = if quality_forces_refresh {
            self.metrics.counter("info.quality_refreshes").incr();
            si.update_state()?
        } else {
            match opts.mode {
                ResponseMode::Immediate => si.update_state()?,
                ResponseMode::Cached => si.cached_state()?,
                ResponseMode::Last => si.last_state()?,
            }
        };
        let kw = si.keyword();
        if snap.from_cache {
            self.metrics.counter("info.cache_hits").incr();
            self.metrics.counter(&format!("info.hits.{kw}")).incr();
            // A cached answer older than the TTL (only `(response=last)`
            // or the delay throttle can produce one) is served stale.
            let age = self.clock.now().since(snap.produced_at);
            if !si.ttl().is_zero() && age >= si.ttl() {
                self.metrics.counter(&format!("info.stale.{kw}")).incr();
            }
        } else {
            self.metrics.counter("info.refreshes").incr();
            self.metrics.counter(&format!("info.misses.{kw}")).incr();
            // Refresh latency on the service clock (simulated command
            // costs advance it; free commands record zero).
            self.metrics
                .histogram("info.refresh")
                .record(self.clock.now().since(before));
        }
        // Remaining validity of what is now cached — the TTL-expiry
        // countdown a monitoring client watches.
        self.metrics
            .gauge(&format!("info.validity_ms.{kw}"))
            .set(si.validity().as_millis() as f64);
        Ok(snap)
    }

    /// Convert a snapshot into a wire record, annotating quality and age.
    fn to_record(
        &self,
        si: &SystemInformation,
        snap: &Snapshot,
        opts: &QueryOptions,
    ) -> InfoRecord {
        let mut rec = InfoRecord::new(si.keyword(), &self.hostname);
        let age = self.clock.now().since(snap.produced_at);
        let quality = si.degradation().quality(age);
        for (name, value) in &snap.attributes {
            let attr = rec.push(name, value);
            attr.quality = Some(quality);
            attr.age_secs = Some(age.as_secs_f64());
        }
        if opts.performance {
            // §6.6: "The performance tag returns the number of seconds and
            // the standard deviation about how long it takes to obtain a
            // particular information value."
            let (mean, std, n) = si.average_update_time();
            rec.push("perf.mean_seconds", &format!("{mean:.6}"));
            rec.push("perf.std_seconds", &format!("{std:.6}"));
            rec.push("perf.samples", &n.to_string());
        }
        rec
    }

    /// Answer a selector list. Unknown keywords fail the whole query with
    /// [`InfoServiceError::UnknownKeyword`]; provider failures fail it
    /// with the underlying error.
    pub fn answer(
        &self,
        selectors: &[InfoSelector],
        opts: &QueryOptions,
    ) -> Result<Vec<InfoRecord>, InfoServiceError> {
        let mut records = Vec::new();
        for sel in selectors {
            match sel {
                InfoSelector::Schema => {
                    records.extend(Schema::of(self).to_records(&self.hostname));
                }
                InfoSelector::All => {
                    for si in self.entries() {
                        let snap = self.fetch(&si, opts)?;
                        records.push(self.to_record(&si, &snap, opts));
                    }
                }
                InfoSelector::Keyword(k) => {
                    let si = self
                        .lookup(k)
                        .ok_or_else(|| InfoServiceError::UnknownKeyword(k.clone()))?;
                    let snap = self.fetch(&si, opts)?;
                    records.push(self.to_record(&si, &snap, opts));
                }
            }
        }
        if let Some(filter) = &opts.filter {
            for rec in &mut records {
                rec.retain_matching(filter);
            }
            records.retain(|r| !r.attributes.is_empty());
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_host::commands::{ChargeMode, CostModel};
    use infogram_host::machine::SimulatedHost;
    use infogram_sim::ManualClock;
    use std::time::Duration;

    fn table1_service() -> (
        Arc<ManualClock>,
        Arc<CommandRegistry>,
        Arc<InformationService>,
    ) {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        let reg = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
        let svc = InformationService::from_config(
            &ServiceConfig::table1(),
            Arc::clone(&reg),
            clock.clone(),
            MetricSet::new(),
        );
        (clock, reg, svc)
    }

    fn kw(k: &str) -> Vec<InfoSelector> {
        vec![InfoSelector::Keyword(k.to_string())]
    }

    #[test]
    fn table1_keywords_registered() {
        let (_c, _r, svc) = table1_service();
        assert_eq!(
            svc.keywords(),
            vec!["CPU", "CPULoad", "Date", "list", "Memory"]
        );
    }

    #[test]
    fn query_memory_returns_namespaced_attributes() {
        let (_c, _r, svc) = table1_service();
        let recs = svc.answer(&kw("Memory"), &QueryOptions::default()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].keyword, "Memory");
        assert!(recs[0].get("Memory:total").is_some());
        assert!(recs[0].get("Memory:free").is_some());
    }

    #[test]
    fn keyword_lookup_case_insensitive() {
        let (_c, _r, svc) = table1_service();
        assert!(svc.answer(&kw("memory"), &QueryOptions::default()).is_ok());
        assert!(svc.answer(&kw("MEMORY"), &QueryOptions::default()).is_ok());
    }

    #[test]
    fn unknown_keyword_rejected() {
        let (_c, _r, svc) = table1_service();
        match svc.answer(&kw("Bogus"), &QueryOptions::default()) {
            Err(InfoServiceError::UnknownKeyword(k)) => assert_eq!(k, "Bogus"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn info_all_returns_every_keyword() {
        let (_c, _r, svc) = table1_service();
        let recs = svc
            .answer(&[InfoSelector::All], &QueryOptions::default())
            .unwrap();
        assert_eq!(recs.len(), 5);
    }

    #[test]
    fn concatenated_selectors_like_the_paper() {
        // "(info=memory)(info=cpu)"
        let (_c, _r, svc) = table1_service();
        let recs = svc
            .answer(
                &[
                    InfoSelector::Keyword("memory".to_string()),
                    InfoSelector::Keyword("cpu".to_string()),
                ],
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].keyword, "Memory");
        assert_eq!(recs[1].keyword, "CPU");
    }

    #[test]
    fn cached_mode_serves_within_ttl() {
        let (clock, _r, svc) = table1_service();
        let opts = QueryOptions::default();
        svc.answer(&kw("Memory"), &opts).unwrap(); // miss
        let si = svc.lookup("Memory").unwrap();
        assert_eq!(si.execution_count(), 1);
        // Within the 80ms TTL (command costs advance the manual clock, so
        // stay well under it).
        svc.answer(&kw("Memory"), &opts).unwrap();
        assert_eq!(si.execution_count(), 1, "served from cache");
        clock.advance(Duration::from_millis(80));
        svc.answer(&kw("Memory"), &opts).unwrap();
        assert_eq!(si.execution_count(), 2, "expired → refreshed");
    }

    #[test]
    fn cpuload_ttl_zero_always_executes() {
        let (_c, reg, svc) = table1_service();
        // Make the command cost zero so the clock does not advance and the
        // effect is purely the TTL-0 rule.
        reg.set_cost("cpuload", CostModel::Fixed(Duration::ZERO));
        let opts = QueryOptions::default();
        for _ in 0..3 {
            svc.answer(&kw("CPULoad"), &opts).unwrap();
        }
        assert_eq!(svc.lookup("CPULoad").unwrap().execution_count(), 3);
    }

    #[test]
    fn immediate_mode_always_refreshes() {
        let (_c, _r, svc) = table1_service();
        let opts = QueryOptions {
            mode: ResponseMode::Immediate,
            ..Default::default()
        };
        svc.answer(&kw("Memory"), &opts).unwrap();
        svc.answer(&kw("Memory"), &opts).unwrap();
        assert_eq!(svc.lookup("Memory").unwrap().execution_count(), 2);
    }

    #[test]
    fn last_mode_never_refreshes() {
        let (clock, _r, svc) = table1_service();
        let cached = QueryOptions::default();
        svc.answer(&kw("Memory"), &cached).unwrap();
        clock.advance(Duration::from_secs(3600)); // far past TTL
        let last = QueryOptions {
            mode: ResponseMode::Last,
            ..Default::default()
        };
        let recs = svc.answer(&kw("Memory"), &last).unwrap();
        assert_eq!(svc.lookup("Memory").unwrap().execution_count(), 1);
        // The age annotation shows how stale it is.
        assert!(recs[0].attributes[0].age_secs.unwrap() >= 3600.0);
        // And `last` before anything cached is an error.
        match svc.answer(&kw("CPU"), &last) {
            Err(InfoServiceError::Query(QueryError::NeverProduced)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quality_threshold_forces_refresh() {
        let (clock, _r, svc) = table1_service();
        // Binary degradation over 80ms TTL; at age 40ms quality is 1.0,
        // so threshold 50 does not refresh; threshold via linear would.
        // Re-register Memory with linear degradation for a gradual curve.
        let si = svc.lookup("Memory").unwrap();
        let _ = si;
        let reg_entry = SystemInformation::new(
            Box::new(crate::provider::FnProvider::new("Memory", || {
                Ok(vec![("total".to_string(), "1".to_string())])
            })),
            clock.clone(),
            Duration::from_secs(100),
            crate::quality::DegradationFn::Linear {
                lifetime: Duration::from_secs(100),
            },
        );
        svc.register(Arc::clone(&reg_entry));
        let base = QueryOptions::default();
        svc.answer(&kw("Memory"), &base).unwrap();
        clock.advance(Duration::from_secs(30)); // quality now 0.7
        let strict = QueryOptions {
            quality_threshold: Some(90.0),
            ..Default::default()
        };
        svc.answer(&kw("Memory"), &strict).unwrap();
        assert_eq!(
            reg_entry.execution_count(),
            2,
            "quality 70% < threshold 90% forces a refresh"
        );
        let lax = QueryOptions {
            quality_threshold: Some(10.0),
            ..Default::default()
        };
        svc.answer(&kw("Memory"), &lax).unwrap();
        assert_eq!(reg_entry.execution_count(), 2, "fresh value passes");
    }

    #[test]
    fn performance_tag_attaches_stats() {
        let (_c, _r, svc) = table1_service();
        let opts = QueryOptions {
            performance: true,
            ..Default::default()
        };
        let recs = svc.answer(&kw("Memory"), &opts).unwrap();
        let mean: f64 = recs[0]
            .get("perf.mean_seconds")
            .unwrap()
            .value
            .parse()
            .unwrap();
        assert!(mean > 0.0, "command cost recorded");
        assert_eq!(recs[0].get("perf.samples").unwrap().value, "1");
    }

    #[test]
    fn filter_selects_attributes() {
        let (_c, _r, svc) = table1_service();
        let opts = QueryOptions {
            filter: Some("Memory:free".to_string()),
            ..Default::default()
        };
        let recs = svc.answer(&kw("Memory"), &opts).unwrap();
        assert_eq!(recs[0].attributes.len(), 1);
        assert_eq!(recs[0].attributes[0].name, "Memory:free");
        // A filter matching nothing drops the record entirely.
        let opts = QueryOptions {
            filter: Some("Nothing:here".to_string()),
            ..Default::default()
        };
        assert!(svc.answer(&kw("Memory"), &opts).unwrap().is_empty());
    }

    #[test]
    fn quality_annotation_reflects_age() {
        let (clock, _r, svc) = table1_service();
        svc.answer(&kw("list"), &QueryOptions::default()).unwrap(); // ttl 1000ms binary
        clock.advance(Duration::from_millis(500));
        let last = QueryOptions {
            mode: ResponseMode::Last,
            ..Default::default()
        };
        let recs = svc.answer(&kw("list"), &last).unwrap();
        assert_eq!(recs[0].attributes[0].quality, Some(1.0));
        clock.advance(Duration::from_millis(600));
        let recs = svc.answer(&kw("list"), &last).unwrap();
        assert_eq!(
            recs[0].attributes[0].quality,
            Some(0.0),
            "binary degradation flips at the 1000ms lifetime"
        );
    }

    #[test]
    fn metrics_count_hits_and_refreshes() {
        let (_c, _r, svc) = table1_service();
        let opts = QueryOptions::default();
        svc.answer(&kw("Memory"), &opts).unwrap();
        svc.answer(&kw("Memory"), &opts).unwrap();
        assert_eq!(svc.metrics().counter_value("info.refreshes"), 1);
        assert_eq!(svc.metrics().counter_value("info.cache_hits"), 1);
        assert_eq!(svc.metrics().counter_value("info.queries"), 2);
    }
}
