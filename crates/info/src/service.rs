//! The assembled information service.
//!
//! Holds the keyword registry ([`SystemInformation`] entries), answers
//! selector lists with the xRSL response modes, applies the quality
//! threshold and the attribute filter, and attaches the performance
//! catalog when asked — §6.2–6.6 of the paper, in one object.

use crate::config::ServiceConfig;
use crate::entry::{QueryError, Snapshot, SystemInformation};
use crate::provider::{CommandProvider, TelemetryProvider};
use crate::quality::DegradationFn;
use crate::schema::Schema;
use infogram_host::commands::CommandRegistry;
use infogram_proto::record::InfoRecord;
use infogram_rsl::{InfoSelector, ResponseMode};
use infogram_sim::clock::SharedClock;
use infogram_sim::metrics::{Counter, Gauge, Histogram, MetricSet};
use infogram_sim::par;
use parking_lot::{lock_class, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq)]
pub enum InfoServiceError {
    /// The keyword has no configured provider.
    UnknownKeyword(String),
    /// The provider layer failed.
    Query(QueryError),
}

impl std::fmt::Display for InfoServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InfoServiceError::UnknownKeyword(k) => write!(f, "unknown keyword '{k}'"),
            InfoServiceError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InfoServiceError {}

impl From<QueryError> for InfoServiceError {
    fn from(e: QueryError) -> Self {
        InfoServiceError::Query(e)
    }
}

/// Options accompanying a query — the xRSL tags that shape the answer.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// `(response=...)`.
    pub mode: ResponseMode,
    /// `(quality=...)` threshold in percent.
    pub quality_threshold: Option<f64>,
    /// `(filter=...)` attribute filter.
    pub filter: Option<String>,
    /// `(performance=true)` — attach timing statistics.
    pub performance: bool,
    /// `(timeout=...)` — the deadline budget for provider executions.
    /// `None` uses the per-keyword TTL-proportional default.
    pub deadline: Option<std::time::Duration>,
}

/// Interned per-keyword telemetry handles, resolved once at
/// [`InformationService::register`] time so the per-query fetch path
/// performs zero `format!` calls and zero registry-map lookups.
#[derive(Debug, Clone)]
pub struct KeywordMetrics {
    /// `info.hits.<kw>` — queries served from the cache.
    pub hits: Arc<Counter>,
    /// `info.misses.<kw>` — queries that executed the provider.
    pub misses: Arc<Counter>,
    /// `info.stale.<kw>` — cached answers served past their TTL.
    pub stale: Arc<Counter>,
    /// `info.validity_ms.<kw>` — remaining TTL after the last refresh.
    pub validity_ms: Arc<Gauge>,
}

impl KeywordMetrics {
    /// Intern the per-keyword instruments under the standard names.
    /// Exposed so the refresh scheduler (and tests) can wire demand
    /// tracking to entries that are not registered in a service.
    pub fn intern(metrics: &MetricSet, keyword: &str) -> Self {
        KeywordMetrics {
            hits: metrics.counter(&format!("info.hits.{keyword}")),
            misses: metrics.counter(&format!("info.misses.{keyword}")),
            stale: metrics.counter(&format!("info.stale.{keyword}")),
            validity_ms: metrics.gauge(&format!("info.validity_ms.{keyword}")),
        }
    }
}

/// Interned service-wide instrument handles (one set per service).
#[derive(Debug)]
struct ServiceMetrics {
    queries: Arc<Counter>,
    cache_hits: Arc<Counter>,
    refreshes: Arc<Counter>,
    quality_refreshes: Arc<Counter>,
    refresh_latency: Arc<Histogram>,
}

impl ServiceMetrics {
    fn intern(metrics: &MetricSet) -> Self {
        ServiceMetrics {
            queries: metrics.counter("info.queries"),
            cache_hits: metrics.counter("info.cache_hits"),
            refreshes: metrics.counter("info.refreshes"),
            quality_refreshes: metrics.counter("info.quality_refreshes"),
            refresh_latency: metrics.histogram("info.refresh"),
        }
    }
}

/// One registered keyword: the entry plus its interned telemetry.
#[derive(Clone)]
struct Registered {
    si: Arc<SystemInformation>,
    km: KeywordMetrics,
}

/// The keyword registry, arc-swapped copy-on-write: readers clone the
/// `Arc` under a briefly-held read lock and then walk the map with no
/// lock at all, so concurrent fan-out workers never contend on lookups.
/// Registration (rare) clones the map and swaps the `Arc`.
type Registry = Arc<BTreeMap<String, Registered>>;

/// The information service of one host.
pub struct InformationService {
    hostname: String,
    clock: SharedClock,
    entries: RwLock<Registry>,
    metrics: MetricSet,
    svc_metrics: ServiceMetrics,
}

impl std::fmt::Debug for InformationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InformationService")
            .field("hostname", &self.hostname)
            .field("keywords", &self.keywords())
            .finish_non_exhaustive()
    }
}

impl InformationService {
    /// An empty service for a host.
    pub fn new(hostname: &str, clock: SharedClock, metrics: MetricSet) -> Arc<Self> {
        let svc_metrics = ServiceMetrics::intern(&metrics);
        Arc::new(InformationService {
            hostname: hostname.to_string(),
            clock,
            entries: RwLock::with_class(
                Arc::new(BTreeMap::new()),
                lock_class!("info.service.registry"),
            ),
            metrics,
            svc_metrics,
        })
    }

    /// Build a service from a configuration file (Table 1 style), wiring
    /// every entry to a [`CommandProvider`] on the given registry.
    pub fn from_config(
        config: &ServiceConfig,
        registry: Arc<CommandRegistry>,
        clock: SharedClock,
        metrics: MetricSet,
    ) -> Arc<Self> {
        let service = InformationService::new(registry.host().hostname(), clock.clone(), metrics);
        for entry in &config.entries {
            let provider =
                CommandProvider::new(&entry.keyword, &entry.command, Arc::clone(&registry));
            let si = SystemInformation::new(
                Box::new(provider),
                clock.clone(),
                entry.ttl,
                entry.degradation.clone(),
            );
            si.set_delay(entry.delay);
            service.register(si);
        }
        service
    }

    /// Register a keyword entry (replacing any same-keyword entry). The
    /// entry is wired into this service's telemetry, so its monitor and
    /// delay gate contribute to `info.coalesced` / `info.throttled`, and
    /// its per-keyword counters (`info.hits.<kw>`, `info.misses.<kw>`,
    /// `info.stale.<kw>`, `info.validity_ms.<kw>`) are interned now so
    /// no query ever formats a metric name.
    pub fn register(&self, si: Arc<SystemInformation>) {
        si.set_telemetry(self.metrics.clone());
        let km = KeywordMetrics::intern(&self.metrics, si.keyword());
        let key = si.keyword().to_ascii_lowercase();
        let mut entries = self.entries.write();
        let mut next = BTreeMap::clone(&entries);
        next.insert(key, Registered { si, km });
        *entries = Arc::new(next);
    }

    /// Register the built-in `Metrics:` keyword over the given telemetry
    /// handle — the service describing itself through its own query path.
    ///
    /// The entry has a TTL of zero (Table 1's "execute every time"
    /// convention), so each `(info=metrics)` reads a live snapshot; all
    /// the xRSL tags (`filter`, `response`, `format`, `performance`)
    /// apply to it like to any other keyword. Returns the entry.
    pub fn register_metrics_provider(&self, telemetry: MetricSet) -> Arc<SystemInformation> {
        let si = SystemInformation::new(
            Box::new(TelemetryProvider::new(telemetry)),
            self.clock.clone(),
            std::time::Duration::ZERO,
            DegradationFn::default(),
        );
        self.register(Arc::clone(&si));
        si
    }

    /// Hostname this service describes.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// The service's metric sink.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// A consistent point-in-time view of the registry: one `Arc` clone
    /// under a briefly-held read lock, then lock-free map walks.
    fn registry(&self) -> Registry {
        Arc::clone(&self.entries.read())
    }

    /// Configured keywords, in canonical case, sorted.
    pub fn keywords(&self) -> Vec<String> {
        self.registry()
            .values()
            .map(|r| r.si.keyword().to_string())
            .collect()
    }

    /// Look up a keyword case-insensitively.
    pub fn lookup(&self, keyword: &str) -> Option<Arc<SystemInformation>> {
        self.registry()
            .get(&keyword.to_ascii_lowercase())
            .map(|r| Arc::clone(&r.si))
    }

    /// The interned telemetry handles for a keyword, if registered —
    /// exposed so tests can assert the hot path shares these exact
    /// instruments rather than re-resolving names per query.
    pub fn keyword_metrics(&self, keyword: &str) -> Option<KeywordMetrics> {
        self.registry()
            .get(&keyword.to_ascii_lowercase())
            .map(|r| r.km.clone())
    }

    /// All entries (for schema reflection and aggregation).
    pub fn entries(&self) -> Vec<Arc<SystemInformation>> {
        self.registry()
            .values()
            .map(|r| Arc::clone(&r.si))
            .collect()
    }

    /// Would fetching this entry under these options plausibly execute
    /// its provider (and therefore block)? Used purely as a scheduling
    /// hint by [`InformationService::answer`]: entries that can be served
    /// from cache are answered inline, the rest are fanned out in
    /// parallel. A stale hint is harmless — [`InformationService::fetch`]
    /// handles either outcome.
    fn may_block(reg: &Registered, opts: &QueryOptions) -> bool {
        match opts.mode {
            ResponseMode::Immediate => true,
            ResponseMode::Last => false,
            ResponseMode::Cached => {
                Self::quality_forces_refresh(&reg.si, opts) || reg.si.validity().is_zero()
            }
        }
    }

    /// §6.6 quality tag: "If the degradation function of any of its
    /// returned attributes is below that threshold, this attribute is
    /// regenerated by the associated command."
    fn quality_forces_refresh(si: &SystemInformation, opts: &QueryOptions) -> bool {
        match (opts.quality_threshold, opts.mode) {
            (Some(threshold), ResponseMode::Cached) => match si.current_quality() {
                Some(q) => q * 100.0 < threshold,
                None => false, // nothing cached yet; normal path handles it
            },
            _ => false,
        }
    }

    /// Fetch one keyword's snapshot under a response mode and quality
    /// threshold.
    ///
    /// The cache-hit path is allocation-free and lock-light: one interned
    /// counter increment per service-level and per-keyword metric, no
    /// `format!`, and no refresh-latency clock reads — that bookkeeping
    /// only runs when the provider actually executes.
    fn fetch(&self, reg: &Registered, opts: &QueryOptions) -> Result<Snapshot, QueryError> {
        let si = &reg.si;
        self.svc_metrics.queries.incr();
        let quality_forces_refresh = Self::quality_forces_refresh(si, opts);
        match opts.mode {
            // Pure cache hit: no refresh bookkeeping at all.
            ResponseMode::Cached if !quality_forces_refresh => {
                if let Ok(snap) = si.query_state() {
                    self.svc_metrics.cache_hits.incr();
                    reg.km.hits.incr();
                    // A valid cached-mode hit is by definition within its
                    // TTL, so no staleness check is needed either.
                    return Ok(snap);
                }
            }
            ResponseMode::Last => {
                let snap = si.last_state()?;
                self.svc_metrics.cache_hits.incr();
                reg.km.hits.incr();
                // Only `(response=last)` and the delay throttle can serve
                // a value older than its TTL.
                let age = self.clock.now().since(snap.produced_at);
                if !si.ttl().is_zero() && age >= si.ttl() {
                    reg.km.stale.incr();
                }
                return Ok(snap);
            }
            _ => {}
        }
        // Refresh path: `(response=immediate)`, a quality-forced refresh,
        // or a cached-mode miss (expired / never produced / TTL 0).
        // Runs under the fault-domain supervisor: breaker-gated, retried,
        // deadline-budgeted, and stale-serving on failure.
        if quality_forces_refresh {
            self.svc_metrics.quality_refreshes.incr();
        }
        let before = self.clock.now();
        let snap = si.fetch_supervised(opts.deadline)?;
        if snap.stale {
            // Last-known-good served in place of a failed/gated refresh.
            self.svc_metrics.cache_hits.incr();
            reg.km.hits.incr();
            reg.km.stale.incr();
        } else if snap.from_cache {
            // The monitor coalesced us onto another caller's refresh, or
            // the delay throttle served the previous value.
            self.svc_metrics.cache_hits.incr();
            reg.km.hits.incr();
            let age = self.clock.now().since(snap.produced_at);
            if !si.ttl().is_zero() && age >= si.ttl() {
                reg.km.stale.incr();
            }
        } else {
            self.svc_metrics.refreshes.incr();
            reg.km.misses.incr();
            // Refresh latency on the service clock (simulated command
            // costs advance it; free commands record zero).
            self.svc_metrics
                .refresh_latency
                .record(self.clock.now().since(before));
            // Remaining validity of what is now cached — the TTL-expiry
            // countdown a monitoring client watches.
            reg.km.validity_ms.set(si.validity().as_millis() as f64);
        }
        Ok(snap)
    }

    /// Convert a snapshot into a wire record, annotating quality and age.
    fn to_record(
        &self,
        si: &SystemInformation,
        snap: &Snapshot,
        opts: &QueryOptions,
    ) -> InfoRecord {
        let mut rec = InfoRecord::new(si.keyword(), &self.hostname);
        let age = self.clock.now().since(snap.produced_at);
        let quality = si.degradation().quality(age);
        if snap.stale {
            // Fault-driven last-known-good: mark the record degraded and
            // carry the value's true age so clients can judge it.
            rec.degraded = true;
            rec.stale_age_secs = Some(age.as_secs_f64());
        }
        for (name, value) in snap.attributes.iter() {
            let attr = rec.push(name, value);
            attr.quality = Some(quality);
            attr.age_secs = Some(age.as_secs_f64());
        }
        if opts.performance {
            // §6.6: "The performance tag returns the number of seconds and
            // the standard deviation about how long it takes to obtain a
            // particular information value."
            let (mean, std, n) = si.average_update_time();
            rec.push("perf.mean_seconds", &format!("{mean:.6}"));
            rec.push("perf.std_seconds", &format!("{std:.6}"));
            rec.push("perf.samples", &n.to_string());
        }
        rec
    }

    /// Answer a selector list. Unknown keywords fail the whole query with
    /// [`InfoServiceError::UnknownKeyword`]; provider failures fail it
    /// with the error of the earliest failing selector position.
    ///
    /// Scatter-gather: the selector list is first resolved against one
    /// consistent registry snapshot (so unknown keywords fail before any
    /// provider runs), then every fetch expected to execute a provider is
    /// fanned out across the scoped thread pool while cache hits are
    /// answered inline. Records are gathered back in selector order, so
    /// the reply is indistinguishable from the sequential walk — N slow
    /// keywords cost ~1 provider execution of wall time instead of ~N.
    pub fn answer(
        &self,
        selectors: &[InfoSelector],
        opts: &QueryOptions,
    ) -> Result<Vec<InfoRecord>, InfoServiceError> {
        enum Item<'a> {
            Schema,
            Fetch(&'a Registered),
        }
        let registry = self.registry();
        let mut items: Vec<Item<'_>> = Vec::new();
        for sel in selectors {
            match sel {
                InfoSelector::Schema => items.push(Item::Schema),
                InfoSelector::All => {
                    items.extend(registry.values().map(Item::Fetch));
                }
                InfoSelector::Keyword(k) => items.push(Item::Fetch(
                    registry
                        .get(&k.to_ascii_lowercase())
                        .ok_or_else(|| InfoServiceError::UnknownKeyword(k.clone()))?,
                )),
            }
        }
        // Scatter: serve whatever cannot block inline; fan the rest out.
        let mut slots: Vec<Option<Result<Snapshot, QueryError>>> =
            items.iter().map(|_| None).collect();
        let mut slow: Vec<(usize, &Registered)> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if let Item::Fetch(reg) = item {
                if Self::may_block(reg, opts) {
                    slow.push((i, reg));
                } else {
                    slots[i] = Some(self.fetch(reg, opts));
                }
            }
        }
        match slow.len() {
            0 => {}
            1 => {
                let (i, reg) = slow[0];
                slots[i] = Some(self.fetch(reg, opts));
            }
            _ => {
                for (slot, (i, _)) in par::fan_out(&slow, |_, (_, reg)| self.fetch(reg, opts))
                    .into_iter()
                    .zip(&slow)
                {
                    slots[*i] = Some(slot);
                }
            }
        }
        // Gather in selector order; the first error (by position) wins.
        let mut records = Vec::with_capacity(items.len());
        for (item, slot) in items.iter().zip(slots) {
            match item {
                Item::Schema => {
                    records.extend(Schema::of(self).to_records(&self.hostname));
                }
                Item::Fetch(reg) => {
                    // lint:allow(unwrap) — the scatter loop above fills one slot per Fetch item
                    let snap = slot.expect("every fetch item was filled")?;
                    records.push(self.to_record(&reg.si, &snap, opts));
                }
            }
        }
        if let Some(filter) = &opts.filter {
            for rec in &mut records {
                rec.retain_matching(filter);
            }
            records.retain(|r| !r.attributes.is_empty());
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_host::commands::{ChargeMode, CostModel};
    use infogram_host::machine::SimulatedHost;
    use infogram_sim::ManualClock;
    use std::time::Duration;

    fn table1_service() -> (
        Arc<ManualClock>,
        Arc<CommandRegistry>,
        Arc<InformationService>,
    ) {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        let reg = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
        let svc = InformationService::from_config(
            &ServiceConfig::table1(),
            Arc::clone(&reg),
            clock.clone(),
            MetricSet::new(),
        );
        (clock, reg, svc)
    }

    fn kw(k: &str) -> Vec<InfoSelector> {
        vec![InfoSelector::Keyword(k.to_string())]
    }

    #[test]
    fn table1_keywords_registered() {
        let (_c, _r, svc) = table1_service();
        assert_eq!(
            svc.keywords(),
            vec!["CPU", "CPULoad", "Date", "list", "Memory"]
        );
    }

    #[test]
    fn query_memory_returns_namespaced_attributes() {
        let (_c, _r, svc) = table1_service();
        let recs = svc.answer(&kw("Memory"), &QueryOptions::default()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].keyword, "Memory");
        assert!(recs[0].get("Memory:total").is_some());
        assert!(recs[0].get("Memory:free").is_some());
    }

    #[test]
    fn keyword_lookup_case_insensitive() {
        let (_c, _r, svc) = table1_service();
        assert!(svc.answer(&kw("memory"), &QueryOptions::default()).is_ok());
        assert!(svc.answer(&kw("MEMORY"), &QueryOptions::default()).is_ok());
    }

    #[test]
    fn unknown_keyword_rejected() {
        let (_c, _r, svc) = table1_service();
        match svc.answer(&kw("Bogus"), &QueryOptions::default()) {
            Err(InfoServiceError::UnknownKeyword(k)) => assert_eq!(k, "Bogus"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn info_all_returns_every_keyword() {
        let (_c, _r, svc) = table1_service();
        let recs = svc
            .answer(&[InfoSelector::All], &QueryOptions::default())
            .unwrap();
        assert_eq!(recs.len(), 5);
    }

    #[test]
    fn concatenated_selectors_like_the_paper() {
        // "(info=memory)(info=cpu)"
        let (_c, _r, svc) = table1_service();
        let recs = svc
            .answer(
                &[
                    InfoSelector::Keyword("memory".to_string()),
                    InfoSelector::Keyword("cpu".to_string()),
                ],
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].keyword, "Memory");
        assert_eq!(recs[1].keyword, "CPU");
    }

    #[test]
    fn cached_mode_serves_within_ttl() {
        let (clock, _r, svc) = table1_service();
        let opts = QueryOptions::default();
        svc.answer(&kw("Memory"), &opts).unwrap(); // miss
        let si = svc.lookup("Memory").unwrap();
        assert_eq!(si.execution_count(), 1);
        // Within the 80ms TTL (command costs advance the manual clock, so
        // stay well under it).
        svc.answer(&kw("Memory"), &opts).unwrap();
        assert_eq!(si.execution_count(), 1, "served from cache");
        clock.advance(Duration::from_millis(80));
        svc.answer(&kw("Memory"), &opts).unwrap();
        assert_eq!(si.execution_count(), 2, "expired → refreshed");
    }

    #[test]
    fn cpuload_ttl_zero_always_executes() {
        let (_c, reg, svc) = table1_service();
        // Make the command cost zero so the clock does not advance and the
        // effect is purely the TTL-0 rule.
        reg.set_cost("cpuload", CostModel::Fixed(Duration::ZERO));
        let opts = QueryOptions::default();
        for _ in 0..3 {
            svc.answer(&kw("CPULoad"), &opts).unwrap();
        }
        assert_eq!(svc.lookup("CPULoad").unwrap().execution_count(), 3);
    }

    #[test]
    fn immediate_mode_always_refreshes() {
        let (_c, _r, svc) = table1_service();
        let opts = QueryOptions {
            mode: ResponseMode::Immediate,
            ..Default::default()
        };
        svc.answer(&kw("Memory"), &opts).unwrap();
        svc.answer(&kw("Memory"), &opts).unwrap();
        assert_eq!(svc.lookup("Memory").unwrap().execution_count(), 2);
    }

    #[test]
    fn last_mode_never_refreshes() {
        let (clock, _r, svc) = table1_service();
        let cached = QueryOptions::default();
        svc.answer(&kw("Memory"), &cached).unwrap();
        clock.advance(Duration::from_secs(3600)); // far past TTL
        let last = QueryOptions {
            mode: ResponseMode::Last,
            ..Default::default()
        };
        let recs = svc.answer(&kw("Memory"), &last).unwrap();
        assert_eq!(svc.lookup("Memory").unwrap().execution_count(), 1);
        // The age annotation shows how stale it is.
        assert!(recs[0].attributes[0].age_secs.unwrap() >= 3600.0);
        // And `last` before anything cached is an error.
        match svc.answer(&kw("CPU"), &last) {
            Err(InfoServiceError::Query(QueryError::NeverProduced)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quality_threshold_forces_refresh() {
        let (clock, _r, svc) = table1_service();
        // Binary degradation over 80ms TTL; at age 40ms quality is 1.0,
        // so threshold 50 does not refresh; threshold via linear would.
        // Re-register Memory with linear degradation for a gradual curve.
        let si = svc.lookup("Memory").unwrap();
        let _ = si;
        let reg_entry = SystemInformation::new(
            Box::new(crate::provider::FnProvider::new("Memory", || {
                Ok(vec![("total".to_string(), "1".to_string())])
            })),
            clock.clone(),
            Duration::from_secs(100),
            crate::quality::DegradationFn::Linear {
                lifetime: Duration::from_secs(100),
            },
        );
        svc.register(Arc::clone(&reg_entry));
        let base = QueryOptions::default();
        svc.answer(&kw("Memory"), &base).unwrap();
        clock.advance(Duration::from_secs(30)); // quality now 0.7
        let strict = QueryOptions {
            quality_threshold: Some(90.0),
            ..Default::default()
        };
        svc.answer(&kw("Memory"), &strict).unwrap();
        assert_eq!(
            reg_entry.execution_count(),
            2,
            "quality 70% < threshold 90% forces a refresh"
        );
        let lax = QueryOptions {
            quality_threshold: Some(10.0),
            ..Default::default()
        };
        svc.answer(&kw("Memory"), &lax).unwrap();
        assert_eq!(reg_entry.execution_count(), 2, "fresh value passes");
    }

    #[test]
    fn performance_tag_attaches_stats() {
        let (_c, _r, svc) = table1_service();
        let opts = QueryOptions {
            performance: true,
            ..Default::default()
        };
        let recs = svc.answer(&kw("Memory"), &opts).unwrap();
        let mean: f64 = recs[0]
            .get("perf.mean_seconds")
            .unwrap()
            .value
            .parse()
            .unwrap();
        assert!(mean > 0.0, "command cost recorded");
        assert_eq!(recs[0].get("perf.samples").unwrap().value, "1");
    }

    #[test]
    fn filter_selects_attributes() {
        let (_c, _r, svc) = table1_service();
        let opts = QueryOptions {
            filter: Some("Memory:free".to_string()),
            ..Default::default()
        };
        let recs = svc.answer(&kw("Memory"), &opts).unwrap();
        assert_eq!(recs[0].attributes.len(), 1);
        assert_eq!(recs[0].attributes[0].name, "Memory:free");
        // A filter matching nothing drops the record entirely.
        let opts = QueryOptions {
            filter: Some("Nothing:here".to_string()),
            ..Default::default()
        };
        assert!(svc.answer(&kw("Memory"), &opts).unwrap().is_empty());
    }

    #[test]
    fn quality_annotation_reflects_age() {
        let (clock, _r, svc) = table1_service();
        svc.answer(&kw("list"), &QueryOptions::default()).unwrap(); // ttl 1000ms binary
        clock.advance(Duration::from_millis(500));
        let last = QueryOptions {
            mode: ResponseMode::Last,
            ..Default::default()
        };
        let recs = svc.answer(&kw("list"), &last).unwrap();
        assert_eq!(recs[0].attributes[0].quality, Some(1.0));
        clock.advance(Duration::from_millis(600));
        let recs = svc.answer(&kw("list"), &last).unwrap();
        assert_eq!(
            recs[0].attributes[0].quality,
            Some(0.0),
            "binary degradation flips at the 1000ms lifetime"
        );
    }

    #[test]
    fn hot_path_uses_interned_keyword_handles() {
        let (_c, _r, svc) = table1_service();
        let opts = QueryOptions::default();
        svc.answer(&kw("Memory"), &opts).unwrap(); // miss: creates nothing new either
        let km = svc.keyword_metrics("Memory").unwrap();
        // The handles cached at register() time are the very instruments
        // the telemetry set resolves by name.
        assert!(Arc::ptr_eq(
            &km.hits,
            &svc.metrics().counter("info.hits.Memory")
        ));
        assert!(Arc::ptr_eq(
            &km.misses,
            &svc.metrics().counter("info.misses.Memory")
        ));
        assert!(Arc::ptr_eq(
            &km.stale,
            &svc.metrics().counter("info.stale.Memory")
        ));
        assert!(Arc::ptr_eq(
            &km.validity_ms,
            &svc.metrics().gauge("info.validity_ms.Memory")
        ));
        // Cache hits go through those handles without creating (or even
        // naming) any instrument: the counter set stays fixed while the
        // interned handle observes every hit.
        let names_before = svc.metrics().counters_snapshot().len();
        let hits_before = km.hits.get();
        for _ in 0..100 {
            svc.answer(&kw("Memory"), &opts).unwrap();
        }
        assert_eq!(km.hits.get(), hits_before + 100);
        assert_eq!(
            svc.metrics().counters_snapshot().len(),
            names_before,
            "hit path must not mint new metric names"
        );
    }

    #[test]
    fn answer_fans_out_but_keeps_selector_order() {
        // Five TTL-0 keywords: (info=all) refreshes every one, through
        // the fan-out pool, and the reply must still be in registry
        // order with one record per keyword.
        let clock = ManualClock::new();
        let svc = InformationService::new("h", clock.clone(), MetricSet::new());
        for name in ["E", "A", "C", "B", "D"] {
            let n = name.to_string();
            svc.register(SystemInformation::new(
                Box::new(crate::provider::FnProvider::new(name, move || {
                    Ok(vec![("v".to_string(), n.clone())])
                })),
                clock.clone(),
                Duration::ZERO,
                crate::quality::DegradationFn::default(),
            ));
        }
        let recs = svc
            .answer(&[InfoSelector::All], &QueryOptions::default())
            .unwrap();
        let order: Vec<&str> = recs.iter().map(|r| r.keyword.as_str()).collect();
        assert_eq!(order, vec!["A", "B", "C", "D", "E"]);
        // Concatenated selectors keep request order, not registry order.
        let recs = svc
            .answer(
                &[
                    InfoSelector::Keyword("D".into()),
                    InfoSelector::Keyword("A".into()),
                    InfoSelector::Keyword("C".into()),
                ],
                &QueryOptions::default(),
            )
            .unwrap();
        let order: Vec<&str> = recs.iter().map(|r| r.keyword.as_str()).collect();
        assert_eq!(order, vec!["D", "A", "C"]);
    }

    #[test]
    fn unknown_keyword_fails_before_any_provider_runs() {
        let (_c, _r, svc) = table1_service();
        let res = svc.answer(
            &[
                InfoSelector::Keyword("memory".into()),
                InfoSelector::Keyword("Bogus".into()),
            ],
            &QueryOptions::default(),
        );
        assert!(matches!(res, Err(InfoServiceError::UnknownKeyword(_))));
        assert_eq!(
            svc.lookup("Memory").unwrap().execution_count(),
            0,
            "selector resolution rejects the query before fetching"
        );
    }

    #[test]
    fn metrics_count_hits_and_refreshes() {
        let (_c, _r, svc) = table1_service();
        let opts = QueryOptions::default();
        svc.answer(&kw("Memory"), &opts).unwrap();
        svc.answer(&kw("Memory"), &opts).unwrap();
        assert_eq!(svc.metrics().counter_value("info.refreshes"), 1);
        assert_eq!(svc.metrics().counter_value("info.cache_hits"), 1);
        assert_eq!(svc.metrics().counter_value("info.queries"), 2);
    }
}
