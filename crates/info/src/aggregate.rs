//! Information aggregation.
//!
//! §3: "the aggregate service is used to integrate a set of information
//! providers that may be part of a virtual organization. ... we can
//! create information aggregates through reuse of information providers
//! to improve scalability." An [`Aggregate`] indexes several
//! [`InformationService`]s (typically one per host of a virtual
//! organization) and fans queries out to every member that serves the
//! requested keyword.

use crate::service::{InfoServiceError, InformationService, QueryOptions};
use infogram_proto::record::InfoRecord;
use infogram_rsl::InfoSelector;
use infogram_sim::metrics::{Counter, MetricSet};
use infogram_sim::par;
use parking_lot::{lock_class, RwLock};
use std::sync::Arc;

/// A virtual-organization-level index over member information services.
pub struct Aggregate {
    name: String,
    members: RwLock<Vec<Arc<InformationService>>>,
    metrics: MetricSet,
    /// Interned `aggregate.fanout` handle (one member answer = one tick).
    fanout: Arc<Counter>,
}

impl std::fmt::Debug for Aggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aggregate")
            .field("name", &self.name)
            .field("members", &self.members.read().len())
            .finish_non_exhaustive()
    }
}

impl Aggregate {
    /// An empty aggregate for a virtual organization.
    pub fn new(name: &str, metrics: MetricSet) -> Arc<Self> {
        let fanout = metrics.counter("aggregate.fanout");
        Arc::new(Aggregate {
            name: name.to_string(),
            members: RwLock::with_class(Vec::new(), lock_class!("info.aggregate.members")),
            metrics,
            fanout,
        })
    }

    /// The virtual organization name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The aggregate's metric sink.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// Register a member service.
    pub fn register(&self, service: Arc<InformationService>) {
        self.members.write().push(service);
    }

    /// Number of member services.
    pub fn member_count(&self) -> usize {
        self.members.read().len()
    }

    /// Hosts that serve a given keyword.
    pub fn who_serves(&self, keyword: &str) -> Vec<String> {
        self.members
            .read()
            .iter()
            .filter(|m| m.lookup(keyword).is_some())
            .map(|m| m.hostname().to_string())
            .collect()
    }

    /// Fan a query out to every member that can answer it; concatenates
    /// the per-host records (member registration order within each
    /// selector, selectors in request order). Members lacking a requested
    /// keyword are skipped (an aggregate is sparse by nature); a query no
    /// member can answer returns `UnknownKeyword`.
    ///
    /// Members are polled concurrently through the scoped fan-out pool —
    /// one slow member no longer serializes the whole virtual
    /// organization — and the gather step preserves the sequential
    /// record order. On failure the error of the earliest (by member
    /// order) failing member is returned.
    pub fn query(
        &self,
        selectors: &[InfoSelector],
        opts: &QueryOptions,
    ) -> Result<Vec<InfoRecord>, InfoServiceError> {
        let members = self.members.read().clone();
        let mut records = Vec::new();
        for sel in selectors {
            let able: Vec<&Arc<InformationService>> = members
                .iter()
                .filter(|m| match sel {
                    InfoSelector::Keyword(k) => m.lookup(k).is_some(),
                    _ => true,
                })
                .collect();
            if able.is_empty() {
                if let InfoSelector::Keyword(k) = sel {
                    return Err(InfoServiceError::UnknownKeyword(k.clone()));
                }
                continue;
            }
            self.fanout.add(able.len() as u64);
            let answers = par::fan_out(&able, |_, m| m.answer(std::slice::from_ref(sel), opts));
            for answer in answers {
                records.extend(answer?);
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use infogram_host::commands::{ChargeMode, CommandRegistry};
    use infogram_host::machine::{HostConfig, SimulatedHost};
    use infogram_sim::ManualClock;

    fn vo_with_hosts(n: usize) -> (Arc<ManualClock>, Arc<Aggregate>) {
        let clock = ManualClock::new();
        let agg = Aggregate::new("anl-vo", MetricSet::new());
        for i in 0..n {
            let config = HostConfig {
                hostname: format!("node{i:02}.grid"),
                seed: 1000 + i as u64,
                ..Default::default()
            };
            let host = SimulatedHost::new(config, clock.clone());
            let reg = CommandRegistry::new(host, ChargeMode::Advance(clock.clone()));
            agg.register(InformationService::from_config(
                &ServiceConfig::table1(),
                reg,
                clock.clone(),
                MetricSet::new(),
            ));
        }
        (clock, agg)
    }

    #[test]
    fn fanout_collects_per_host_records() {
        let (_c, agg) = vo_with_hosts(4);
        assert_eq!(agg.member_count(), 4);
        let recs = agg
            .query(
                &[InfoSelector::Keyword("Memory".to_string())],
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(recs.len(), 4);
        let hosts: Vec<&str> = recs.iter().map(|r| r.host.as_str()).collect();
        assert!(hosts.contains(&"node00.grid"));
        assert!(hosts.contains(&"node03.grid"));
    }

    #[test]
    fn who_serves() {
        let (_c, agg) = vo_with_hosts(3);
        assert_eq!(agg.who_serves("CPULoad").len(), 3);
        assert!(agg.who_serves("Bogus").is_empty());
    }

    #[test]
    fn unknown_keyword_across_all_members() {
        let (_c, agg) = vo_with_hosts(2);
        match agg.query(
            &[InfoSelector::Keyword("Bogus".to_string())],
            &QueryOptions::default(),
        ) {
            Err(InfoServiceError::UnknownKeyword(k)) => assert_eq!(k, "Bogus"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn info_all_fans_out_everything() {
        let (_c, agg) = vo_with_hosts(2);
        let recs = agg
            .query(&[InfoSelector::All], &QueryOptions::default())
            .unwrap();
        assert_eq!(recs.len(), 10, "5 keywords × 2 hosts");
        assert_eq!(agg.metrics.counter_value("aggregate.fanout"), 2);
    }

    #[test]
    fn member_caches_are_independent() {
        let (_c, agg) = vo_with_hosts(2);
        let sel = [InfoSelector::Keyword("Memory".to_string())];
        let opts = QueryOptions::default();
        agg.query(&sel, &opts).unwrap();
        agg.query(&sel, &opts).unwrap();
        let members = agg.members.read().clone();
        for m in members.iter() {
            assert_eq!(m.lookup("Memory").unwrap().execution_count(), 1);
        }
    }
}
