//! One cached keyword: the paper's `SystemInformation` interface.
//!
//! §6.2 specifies the behaviour this module implements verbatim:
//!
//! > "The method `queryState` is non blocking and returns valid
//! > information only when the information has been queried previously and
//! > the time to live (ttl) value has not expired. Otherwise, it throws an
//! > exception. Upon invocation of the `updateState` method, a blocking
//! > method is called that returns the appropriate information while also
//! > updating the time to live value. If multiple `updateState` methods
//! > are invoked, monitors are used to perform only one such update at a
//! > time. Additionally, we provide a delay that controls how many
//! > milliseconds must pass between consecutive calls of `updateState`
//! > before the actual information is obtained through a runtime exec
//! > call."

use crate::provider::{InfoProvider, ProviderError};
use crate::quality::DegradationFn;
use crate::supervisor::{Admission, BreakerState, Supervisor, SupervisorConfig};
use infogram_sim::clock::SharedClock;
use infogram_sim::metrics::{Counter, Gauge, MetricSet};
use infogram_sim::{SimTime, Welford};
use parking_lot::{lock_class, Condvar, Mutex};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A point-in-time copy of a keyword's cached information.
///
/// The attribute list is shared (`Arc<[..]>`) with the cache it was read
/// from, so taking a snapshot — and cloning one — never deep-copies the
/// attribute vector. Cache hits, coalesced waiters, and `(response=last)`
/// reads all alias the one list the provider produced.
///
/// ```
/// use infogram_info::entry::SystemInformation;
/// use infogram_info::provider::FnProvider;
/// use infogram_info::quality::DegradationFn;
/// use infogram_sim::ManualClock;
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let si = SystemInformation::new(
///     Box::new(FnProvider::new("Date", || {
///         Ok(vec![("date".to_string(), "2002-07-24".to_string())])
///     })),
///     ManualClock::new(),
///     Duration::from_secs(60),
///     DegradationFn::default(),
/// );
/// let fresh = si.update_state()?; // provider executed
/// let hit = si.query_state()?; // served from cache
/// assert!(!fresh.from_cache && hit.from_cache && !hit.stale);
/// // Both snapshots alias the one produced attribute list.
/// assert!(Arc::ptr_eq(&fresh.attributes, &hit.attributes));
/// # Ok::<(), infogram_info::entry::QueryError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The keyword.
    pub keyword: String,
    /// `(attribute, value)` pairs as produced, shared with the cache.
    pub attributes: Arc<[(String, String)]>,
    /// When the value was produced.
    pub produced_at: SimTime,
    /// Whether this call was served from cache (no provider execution).
    pub from_cache: bool,
    /// Whether this is a last-known-good value served *because the
    /// provider failed or was breaker-gated* — a degraded answer. The
    /// age annotation carries the value's true staleness; consumers
    /// must report degraded quality, not fresh data.
    pub stale: bool,
}

/// Why a non-blocking query could not be served.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Nothing has ever been produced for this keyword.
    NeverProduced,
    /// The cached value's TTL has expired.
    Expired {
        /// Age of the stale value.
        age: Duration,
        /// The TTL it exceeded.
        ttl: Duration,
    },
    /// The provider failed during a (blocking) update.
    Provider(ProviderError),
    /// The fault supervisor is holding the provider closed (breaker
    /// open, or backoff gate in force) and no stale snapshot could be
    /// served. `retry_after` is the wire-level retry hint.
    Unavailable {
        /// Time until the supervisor will admit another execution.
        retry_after: Duration,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NeverProduced => write!(f, "information never produced"),
            QueryError::Expired { age, ttl } => {
                write!(f, "information expired: age {age:?} exceeds ttl {ttl:?}")
            }
            QueryError::Provider(e) => write!(f, "{e}"),
            QueryError::Unavailable { retry_after } => write!(
                f,
                "provider unavailable (breaker open); retry-after-ms={}",
                // Round up: a hint must never understate the wait, or a
                // client sleeping exactly `hint` (worst case: 0 ms from
                // a sub-millisecond remainder) retries still-early.
                retry_after.as_millis() + u128::from(retry_after.subsec_nanos() % 1_000_000 != 0)
            ),
        }
    }
}

impl std::error::Error for QueryError {}

#[derive(Debug, Clone)]
struct CachedValue {
    attributes: Arc<[(String, String)]>,
    produced_at: SimTime,
}

#[derive(Debug, Default)]
struct EntryState {
    cached: Option<CachedValue>,
    /// Clock time the last real provider execution *started*.
    last_update_started: Option<SimTime>,
    /// Whether a provider execution is in flight (the monitor).
    updating: bool,
    /// Bumped on every *successful* refresh, so a waiter woken by the
    /// monitor can tell "the in-flight update produced a fresh value"
    /// apart from "it failed and only an old value remains".
    generation: u64,
}

/// Interned per-entry telemetry handles, resolved once when the entry is
/// wired into a service so the monitor and the delay gate never format a
/// metric name or take a registry lock on the query path.
#[derive(Debug)]
struct EntryTelemetry {
    coalesced: Arc<Counter>,
    throttled: Arc<Counter>,
    /// Supervised-fetch accounting: in-fetch retries, last-known-good
    /// serves, and deadline-budget breaches (service-wide counters).
    retries: Arc<Counter>,
    stale_serves: Arc<Counter>,
    deadline_breaches: Arc<Counter>,
    /// `info.breaker.<kw>` — the breaker position as a gauge
    /// (0 = Closed, 1 = Open, 2 = HalfOpen).
    breaker: Arc<Gauge>,
}

/// A keyword's provider, cache, monitor, and performance catalog.
pub struct SystemInformation {
    provider: Box<dyn InfoProvider>,
    clock: SharedClock,
    ttl: Duration,
    delay: Mutex<Duration>,
    degradation: DegradationFn,
    state: Mutex<EntryState>,
    update_done: Condvar,
    perf: Mutex<Welford>,
    /// Real provider executions (cache misses / refreshes).
    executions: std::sync::atomic::AtomicU64,
    /// Write-once telemetry handles for monitor/throttle accounting;
    /// reading them is lock-free.
    telemetry: OnceLock<EntryTelemetry>,
    /// The fault-domain supervisor guarding this keyword's provider.
    supervisor: Supervisor,
}

impl std::fmt::Debug for SystemInformation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemInformation")
            .field("keyword", &self.provider.keyword())
            .field("ttl", &self.ttl)
            .finish_non_exhaustive()
    }
}

impl SystemInformation {
    /// Wrap a provider with a TTL cache.
    ///
    /// Per Table 1, a TTL of zero "specifies execution of the keyword
    /// every time it is requested" — i.e. the cache never serves.
    pub fn new(
        provider: Box<dyn InfoProvider>,
        clock: SharedClock,
        ttl: Duration,
        degradation: DegradationFn,
    ) -> Arc<Self> {
        let supervisor = Supervisor::new(provider.keyword(), SupervisorConfig::default());
        Arc::new(SystemInformation {
            provider,
            clock,
            ttl,
            delay: Mutex::with_class(Duration::ZERO, lock_class!("info.entry.delay")),
            degradation,
            state: Mutex::with_class(EntryState::default(), lock_class!("info.entry.state")),
            update_done: Condvar::with_class(lock_class!("info.entry.update_done")),
            perf: Mutex::with_class(Welford::new(), lock_class!("info.entry.perf")),
            executions: std::sync::atomic::AtomicU64::new(0),
            telemetry: OnceLock::new(),
            supervisor,
        })
    }

    /// Attach a telemetry sink. The monitor and the delay gate count the
    /// calls they collapse into a cached result through it
    /// (`info.coalesced` and `info.throttled`).
    ///
    /// The counter handles are interned here, once, so the hot path never
    /// takes a lock or formats a metric name. The slot is write-once: the
    /// first sink wins, and re-registering the same entry elsewhere keeps
    /// reporting to the original sink.
    pub fn set_telemetry(&self, telemetry: MetricSet) {
        let _ = self.telemetry.set(EntryTelemetry {
            coalesced: telemetry.counter("info.coalesced"),
            throttled: telemetry.counter("info.throttled"),
            retries: telemetry.counter("info.retries"),
            stale_serves: telemetry.counter("info.stale_serves"),
            deadline_breaches: telemetry.counter("info.deadline_breaches"),
            breaker: telemetry.gauge(&format!("info.breaker.{}", self.keyword())),
        });
    }

    fn count_coalesced(&self) {
        if let Some(t) = self.telemetry.get() {
            t.coalesced.incr();
        }
    }

    fn count_throttled(&self) {
        if let Some(t) = self.telemetry.get() {
            t.throttled.incr();
        }
    }

    /// The keyword served.
    pub fn keyword(&self) -> &str {
        self.provider.keyword()
    }

    /// The provider's source description (schema reflection).
    pub fn source(&self) -> String {
        self.provider.source()
    }

    /// The configured TTL.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// The degradation function.
    pub fn degradation(&self) -> &DegradationFn {
        &self.degradation
    }

    /// Set the minimum gap between consecutive real updates (the paper's
    /// `setDelay`).
    pub fn set_delay(&self, delay: Duration) {
        *self.delay.lock() = delay;
    }

    /// The configured delay.
    pub fn delay(&self) -> Duration {
        *self.delay.lock()
    }

    /// Remaining validity of the cached value: the paper's `validity()`.
    /// Zero if never produced or already expired.
    pub fn validity(&self) -> Duration {
        let st = self.state.lock();
        match &st.cached {
            Some(c) => {
                let age = self.clock.now().since(c.produced_at);
                self.ttl.saturating_sub(age)
            }
            None => Duration::ZERO,
        }
    }

    /// Quality of the currently cached value under the degradation
    /// function; `None` if never produced.
    pub fn current_quality(&self) -> Option<f64> {
        let st = self.state.lock();
        st.cached.as_ref().map(|c| {
            self.degradation
                .quality(self.clock.now().since(c.produced_at))
        })
    }

    /// Non-blocking cache read: the paper's `queryState`.
    pub fn query_state(&self) -> Result<Snapshot, QueryError> {
        let st = self.state.lock();
        let cached = st.cached.as_ref().ok_or(QueryError::NeverProduced)?;
        let age = self.clock.now().since(cached.produced_at);
        if self.ttl.is_zero() || age >= self.ttl {
            return Err(QueryError::Expired { age, ttl: self.ttl });
        }
        Ok(Snapshot {
            keyword: self.keyword().to_string(),
            attributes: cached.attributes.clone(),
            produced_at: cached.produced_at,
            from_cache: true,
            stale: false,
        })
    }

    /// The last stored value regardless of TTL: `(response=last)`.
    pub fn last_state(&self) -> Result<Snapshot, QueryError> {
        let st = self.state.lock();
        let cached = st.cached.as_ref().ok_or(QueryError::NeverProduced)?;
        Ok(Snapshot {
            keyword: self.keyword().to_string(),
            attributes: cached.attributes.clone(),
            produced_at: cached.produced_at,
            from_cache: true,
            stale: false,
        })
    }

    /// Blocking refresh: the paper's `updateState`.
    ///
    /// * Concurrent calls coalesce: only one provider execution runs at a
    ///   time; waiters reuse its result.
    /// * A waiter woken after a *failed* in-flight refresh does not blindly
    ///   reuse whatever old value is cached: it serves the old value only
    ///   while that value is still within its TTL, and otherwise retries
    ///   the update itself (propagating its own error if that fails too).
    /// * The `delay` throttle serves the cached value if the last real
    ///   execution started less than `delay` ago — "useful in cases where
    ///   users ask for information more frequently than it can be
    ///   produced by the system".
    pub fn update_state(&self) -> Result<Snapshot, QueryError> {
        loop {
            let mut st = self.state.lock();
            if st.updating {
                // Monitor: wait for the in-flight update, then reuse it.
                let seen = st.generation;
                self.update_done.wait(&mut st);
                if st.generation != seen {
                    // The in-flight update succeeded; reuse its fresh
                    // result (even for TTL-0 entries — it is the result
                    // of the very update this caller was waiting on).
                    if let Some(c) = &st.cached {
                        self.count_coalesced();
                        return Ok(Snapshot {
                            keyword: self.keyword().to_string(),
                            attributes: Arc::clone(&c.attributes),
                            produced_at: c.produced_at,
                            from_cache: true,
                            stale: false,
                        });
                    }
                }
                // The in-flight update failed. An older value may still be
                // cached — serve it only while it is genuinely valid;
                // handing out a long-expired value as a coalesced success
                // would silently mask the failure.
                if let Some(c) = &st.cached {
                    let age = self.clock.now().since(c.produced_at);
                    if !self.ttl.is_zero() && age < self.ttl {
                        self.count_coalesced();
                        return Ok(Snapshot {
                            keyword: self.keyword().to_string(),
                            attributes: Arc::clone(&c.attributes),
                            produced_at: c.produced_at,
                            from_cache: true,
                            stale: false,
                        });
                    }
                }
                // No valid value to fall back on; try an update ourselves.
                continue;
            }
            // Delay gate.
            let delay = *self.delay.lock();
            if !delay.is_zero() {
                if let (Some(last), Some(c)) = (st.last_update_started, st.cached.as_ref()) {
                    if self.clock.now().since(last) < delay {
                        self.count_throttled();
                        return Ok(Snapshot {
                            keyword: self.keyword().to_string(),
                            attributes: Arc::clone(&c.attributes),
                            produced_at: c.produced_at,
                            from_cache: true,
                            stale: false,
                        });
                    }
                }
            }
            st.updating = true;
            st.last_update_started = Some(self.clock.now());
            drop(st);

            let started = self.clock.now();
            // A provider execution is an arbitrary external command (a
            // runtime exec in the paper); the monitor flag — not a lock
            // — serializes updates precisely so nothing is held here.
            infogram_sim::lockdep::blocking_point("info.provider.produce", &[]);
            let result = self.provider.produce();
            let elapsed = self.clock.now().since(started);
            self.executions
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

            let mut st = self.state.lock();
            st.updating = false;
            match result {
                Ok(attributes) => {
                    let attributes: Arc<[(String, String)]> = attributes.into();
                    let produced_at = self.clock.now();
                    st.cached = Some(CachedValue {
                        attributes: Arc::clone(&attributes),
                        produced_at,
                    });
                    st.generation = st.generation.wrapping_add(1);
                    self.perf.lock().record_duration(elapsed);
                    self.update_done.notify_all();
                    return Ok(Snapshot {
                        keyword: self.keyword().to_string(),
                        attributes,
                        produced_at,
                        from_cache: false,
                        stale: false,
                    });
                }
                Err(e) => {
                    self.update_done.notify_all();
                    return Err(QueryError::Provider(e));
                }
            }
        }
    }

    /// Cache-preferring read: `(response=cached)` — serve the cache while
    /// valid, refresh otherwise.
    pub fn cached_state(&self) -> Result<Snapshot, QueryError> {
        match self.query_state() {
            Ok(snap) => Ok(snap),
            Err(QueryError::NeverProduced) | Err(QueryError::Expired { .. }) => self.update_state(),
            Err(e) => Err(e),
        }
    }

    /// The fault-domain supervisor guarding this entry's provider.
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Current breaker position (convenience over
    /// [`SystemInformation::supervisor`]).
    pub fn breaker_state(&self) -> BreakerState {
        self.supervisor.state()
    }

    /// The deadline budget used when a query carries no explicit
    /// `(timeout=...)`: TTL-proportional with a floor, per the
    /// supervisor config.
    pub fn default_deadline(&self) -> Duration {
        self.supervisor.config().deadline_for(self.ttl)
    }

    fn count_supervised(&self, f: impl Fn(&EntryTelemetry)) {
        if let Some(t) = self.telemetry.get() {
            f(t);
        }
    }

    fn publish_breaker_gauge(&self) {
        if let Some(t) = self.telemetry.get() {
            t.breaker.set(self.supervisor.state() as u32 as f64);
        }
    }

    /// Supervised blocking refresh: [`update_state`] wrapped in the
    /// fault-domain supervisor.
    ///
    /// * The breaker/backoff gate is consulted first; a deferred fetch
    ///   never touches the provider and is served the last-known-good
    ///   snapshot (tagged `stale`, with its true age) — or fails with
    ///   [`QueryError::Unavailable`] carrying the retry-after hint when
    ///   nothing is cached.
    /// * Transient provider failures are retried in-fetch (bounded by
    ///   the config's `max_retries`; a half-open probe gets none).
    ///   Configuration errors ([`ProviderError::is_transient`] false)
    ///   are never retried and never counted toward the breaker.
    /// * The whole fetch runs under a deadline budget: `deadline` if
    ///   given (the xRSL `(timeout=...)` tag), else TTL-proportional.
    ///   Enforcement is cooperative — elapsed clock time is checked
    ///   after the provider returns (injected hangs charge the clock,
    ///   so breaches are observable under both clocks); a breach stops
    ///   further retries and falls back to the stale snapshot.
    /// * After the final failure the supervisor computes the jittered
    ///   exponential backoff as a *not-before gate* rather than
    ///   sleeping: subsequent fetches stale-serve until the gate opens.
    ///   (A sleeping backoff would deadlock the virtual clock.)
    ///
    /// Hard failure (an `Err`) happens only when no snapshot exists or
    /// the snapshot's quality has floored to zero under the degradation
    /// function.
    ///
    /// [`update_state`]: SystemInformation::update_state
    pub fn fetch_supervised(&self, deadline: Option<Duration>) -> Result<Snapshot, QueryError> {
        self.supervised_refresh(deadline, true)
    }

    /// Supervised refresh for the background scheduler: identical
    /// admission, retry, and breaker accounting to
    /// [`SystemInformation::fetch_supervised`], but failures are
    /// *reported, not degraded* — a prefetch has no caller to serve a
    /// stale answer to, and the scheduler needs the raw outcome to
    /// decide between rescheduling, parking, and evicting:
    ///
    /// * [`QueryError::Unavailable`] — the breaker/backoff gate deferred
    ///   the refresh; `retry_after` is when to try again (park).
    /// * [`QueryError::Provider`] with a non-transient error — the
    ///   keyword is misconfigured; refreshing it again is pointless
    ///   (evict from the refresh queue).
    /// * [`QueryError::Provider`] with a transient error — the bounded
    ///   in-fetch retries were exhausted; the supervisor's backoff gate
    ///   is now armed (park until it opens).
    pub fn refresh_scheduled(&self) -> Result<Snapshot, QueryError> {
        self.supervised_refresh(None, false)
    }

    /// Shared core of the two supervised paths. `degrade` selects the
    /// failure policy: serve the last-known-good snapshot (interactive
    /// queries) or surface the error (background refreshes).
    fn supervised_refresh(
        &self,
        deadline: Option<Duration>,
        degrade: bool,
    ) -> Result<Snapshot, QueryError> {
        let budget = deadline.unwrap_or_else(|| self.default_deadline());
        let admission = self.supervisor.admit(self.clock.now());
        let (probe, attempts) = match admission {
            Admission::Deferred { retry_after } => {
                self.publish_breaker_gauge();
                let err = QueryError::Unavailable { retry_after };
                return if degrade {
                    self.stale_serve(err)
                } else {
                    Err(err)
                };
            }
            Admission::Execute { probe } => {
                let retries = if probe {
                    0
                } else {
                    self.supervisor.config().max_retries
                };
                (probe, 1 + retries)
            }
        };
        let started = self.clock.now();
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.count_supervised(|t| t.retries.incr());
            }
            let result = self.update_state();
            let elapsed = self.clock.now().since(started);
            let breached = elapsed > budget;
            if breached {
                self.count_supervised(|t| t.deadline_breaches.incr());
            }
            match result {
                Ok(snap) => {
                    // A late success is still a success: the value is
                    // cached and fresher than anything stale-servable.
                    // The breach was counted above.
                    self.supervisor.on_success();
                    self.publish_breaker_gauge();
                    return Ok(snap);
                }
                Err(QueryError::Provider(e)) if !e.is_transient() => {
                    // Configuration error: retrying cannot help, and the
                    // breaker is for transient faults only.
                    self.supervisor.on_config_failure(self.clock.now(), probe);
                    self.publish_breaker_gauge();
                    let err = QueryError::Provider(e);
                    return if degrade {
                        self.stale_serve(err)
                    } else {
                        Err(err)
                    };
                }
                Err(QueryError::Provider(e)) => {
                    last_err = Some(QueryError::Provider(e));
                    if breached {
                        break; // no budget left to retry into
                    }
                }
                Err(other) => return Err(other),
            }
        }
        self.supervisor.on_failure(self.clock.now(), probe);
        self.publish_breaker_gauge();
        // lint:allow(unwrap) — the loop always runs at least once and only exits with last_err set
        let err = last_err.expect("at least one attempt ran");
        if degrade {
            self.stale_serve(err)
        } else {
            Err(err)
        }
    }

    /// Serve the last-known-good snapshot as a degraded answer, or
    /// propagate `underlying` when nothing (useful) is cached.
    ///
    /// The snapshot keeps its true `produced_at`, so the age and
    /// quality annotations downstream are honest; `stale: true` marks
    /// it as fault-driven. When the degradation function has floored
    /// the cached value's quality to zero, the value is worthless and
    /// the underlying error surfaces instead.
    fn stale_serve(&self, underlying: QueryError) -> Result<Snapshot, QueryError> {
        let st = self.state.lock();
        let Some(c) = &st.cached else {
            return Err(underlying);
        };
        let age = self.clock.now().since(c.produced_at);
        if self.degradation.quality(age) <= 0.0 {
            return Err(underlying);
        }
        let snap = Snapshot {
            keyword: self.keyword().to_string(),
            attributes: Arc::clone(&c.attributes),
            produced_at: c.produced_at,
            from_cache: true,
            stale: true,
        };
        drop(st);
        self.count_supervised(|t| t.stale_serves.incr());
        Ok(snap)
    }

    /// The paper's `getAverageUpdateTime`: `(mean, std_dev)` of real
    /// provider execution time, in seconds, plus the sample count.
    pub fn average_update_time(&self) -> (f64, f64, u64) {
        let p = self.perf.lock();
        (p.mean(), p.std_dev(), p.count())
    }

    /// Number of real provider executions so far.
    pub fn execution_count(&self) -> u64 {
        self.executions.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of successful cache installs so far (the `generation`
    /// stamp bumped by every `update_state` that lands a fresh value).
    /// The missed-update ledger in `tests/refresh_sched.rs` balances
    /// scheduler-reported refreshes against this counter, and the push
    /// subscription fan-out uses the same ground truth: one generation
    /// bump ↔ one delivered update per subscriber.
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::FnProvider;
    use infogram_sim::{ManualClock, SystemClock};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counted_provider(calls: Arc<AtomicU64>) -> Box<dyn InfoProvider> {
        Box::new(FnProvider::new("K", move || {
            let n = calls.fetch_add(1, Ordering::SeqCst) + 1;
            Ok(vec![("n".to_string(), n.to_string())])
        }))
    }

    fn entry_with_ttl(ttl_ms: u64) -> (Arc<ManualClock>, Arc<AtomicU64>, Arc<SystemInformation>) {
        let clock = ManualClock::new();
        let calls = Arc::new(AtomicU64::new(0));
        let si = SystemInformation::new(
            counted_provider(Arc::clone(&calls)),
            clock.clone(),
            Duration::from_millis(ttl_ms),
            DegradationFn::Linear {
                lifetime: Duration::from_millis(ttl_ms.max(1) * 2),
            },
        );
        (clock, calls, si)
    }

    #[test]
    fn query_before_any_update_throws() {
        let (_c, _calls, si) = entry_with_ttl(100);
        assert_eq!(si.query_state(), Err(QueryError::NeverProduced));
        assert_eq!(si.last_state(), Err(QueryError::NeverProduced));
        assert_eq!(si.validity(), Duration::ZERO);
        assert_eq!(si.current_quality(), None);
    }

    #[test]
    fn update_then_query_within_ttl() {
        let (clock, calls, si) = entry_with_ttl(100);
        let snap = si.update_state().unwrap();
        assert!(!snap.from_cache);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        clock.advance(Duration::from_millis(50));
        let q = si.query_state().unwrap();
        assert!(q.from_cache);
        assert_eq!(q.attributes, snap.attributes);
        assert_eq!(si.validity(), Duration::from_millis(50));
    }

    #[test]
    fn query_after_ttl_expires() {
        let (clock, _calls, si) = entry_with_ttl(100);
        si.update_state().unwrap();
        clock.advance(Duration::from_millis(100));
        match si.query_state() {
            Err(QueryError::Expired { age, ttl }) => {
                assert_eq!(age, Duration::from_millis(100));
                assert_eq!(ttl, Duration::from_millis(100));
            }
            other => panic!("{other:?}"),
        }
        // last_state still serves it.
        assert!(si.last_state().unwrap().from_cache);
    }

    #[test]
    fn ttl_zero_always_executes() {
        // Table 1: "0 specifies execution of the keyword every time it is
        // requested" (the CPULoad row).
        let (_c, calls, si) = entry_with_ttl(0);
        si.update_state().unwrap();
        assert!(si.query_state().is_err(), "ttl=0 cache never serves");
        si.cached_state().unwrap();
        si.cached_state().unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn cached_state_refreshes_only_on_expiry() {
        let (clock, calls, si) = entry_with_ttl(100);
        si.cached_state().unwrap(); // miss → execute
        si.cached_state().unwrap(); // hit
        clock.advance(Duration::from_millis(99));
        si.cached_state().unwrap(); // still valid
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        clock.advance(Duration::from_millis(1));
        si.cached_state().unwrap(); // expired → execute
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn provider_failure_surfaces() {
        let clock = ManualClock::new();
        let si = SystemInformation::new(
            Box::new(FnProvider::new("Bad", || {
                Err(ProviderError::Other("broken".to_string()))
            })),
            clock,
            Duration::from_millis(100),
            DegradationFn::default(),
        );
        assert!(matches!(
            si.update_state(),
            Err(QueryError::Provider(ProviderError::Other(_)))
        ));
        // A failure does not poison the entry; the next update may
        // succeed (here it fails again, but does not deadlock).
        assert!(si.update_state().is_err());
    }

    #[test]
    fn delay_throttles_consecutive_updates() {
        let (clock, calls, si) = entry_with_ttl(1);
        si.set_delay(Duration::from_millis(100));
        si.update_state().unwrap(); // real execution
        clock.advance(Duration::from_millis(10));
        let snap = si.update_state().unwrap(); // throttled → cached
        assert!(snap.from_cache);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        clock.advance(Duration::from_millis(100));
        let snap = si.update_state().unwrap();
        assert!(!snap.from_cache);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_updates_coalesce() {
        // Real-time test: a slow provider, many threads calling
        // update_state simultaneously — the monitor must collapse them
        // into one execution.
        let clock = SystemClock::shared();
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = Arc::clone(&calls);
        let si = SystemInformation::new(
            Box::new(FnProvider::new("Slow", move || {
                calls2.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(80));
                Ok(vec![("v".to_string(), "1".to_string())])
            })),
            clock,
            Duration::from_secs(10),
            DegradationFn::default(),
        );
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let si = Arc::clone(&si);
                std::thread::spawn(move || si.update_state().unwrap())
            })
            .collect();
        let mut from_cache = 0;
        for t in threads {
            if t.join().unwrap().from_cache {
                from_cache += 1;
            }
        }
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "monitor must collapse concurrent updates into one execution"
        );
        assert_eq!(from_cache, 7, "seven waiters reuse the one result");
        assert_eq!(si.execution_count(), 1);
    }

    /// A provider that replays a scripted sequence of outcomes, sleeping
    /// `delay_ms` of real time before each one.
    fn scripted_provider(
        outcomes: Vec<Result<u64, ()>>,
        delay_ms: u64,
    ) -> (Arc<AtomicU64>, Box<dyn InfoProvider>) {
        let calls = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&calls);
        let provider = Box::new(FnProvider::new("Scripted", move || {
            let n = c2.fetch_add(1, Ordering::SeqCst) as usize;
            if delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            match outcomes.get(n).copied().unwrap_or(Err(())) {
                Ok(v) => Ok(vec![("v".to_string(), v.to_string())]),
                Err(()) => Err(ProviderError::Other("scripted failure".to_string())),
            }
        }));
        (calls, provider)
    }

    #[test]
    fn waiter_after_failed_refresh_retries_instead_of_serving_expired() {
        // Script: 1st call caches v=1; 2nd (slow) call fails while a
        // waiter coalesces on it; the waiter must notice the cached v=1
        // is long expired, retry, and get the 3rd call's fresh v=3.
        let clock = SystemClock::shared();
        let (calls, provider) = scripted_provider(vec![Ok(1), Err(()), Ok(3)], 40);
        let si = SystemInformation::new(
            provider,
            clock,
            Duration::from_millis(10),
            DegradationFn::default(),
        );
        si.update_state().unwrap();
        std::thread::sleep(Duration::from_millis(20)); // v=1 now expired
        let si2 = Arc::clone(&si);
        let failing = std::thread::spawn(move || si2.update_state());
        std::thread::sleep(Duration::from_millis(15)); // let the update start
        let snap = si.update_state().unwrap();
        assert!(
            failing.join().unwrap().is_err(),
            "the in-flight update itself must surface its failure"
        );
        assert_eq!(
            snap.attributes.first().map(|(_, v)| v.as_str()),
            Some("3"),
            "waiter must not be served the expired v=1"
        );
        assert!(!snap.from_cache, "the waiter re-executed the provider");
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn waiter_after_failed_refresh_still_coalesces_on_valid_cache() {
        // Same shape, but the old value is still within its TTL when the
        // in-flight update fails: the waiter may reuse it.
        let clock = SystemClock::shared();
        let (calls, provider) = scripted_provider(vec![Ok(1), Err(())], 40);
        let si = SystemInformation::new(
            provider,
            clock,
            Duration::from_secs(60),
            DegradationFn::default(),
        );
        si.update_state().unwrap();
        let si2 = Arc::clone(&si);
        let failing = std::thread::spawn(move || si2.update_state());
        std::thread::sleep(Duration::from_millis(15));
        let snap = si.update_state().unwrap();
        assert!(failing.join().unwrap().is_err());
        assert!(snap.from_cache, "valid old value serves the waiter");
        assert_eq!(snap.attributes.first().map(|(_, v)| v.as_str()), Some("1"));
        assert_eq!(calls.load(Ordering::SeqCst), 2, "waiter did not re-execute");
    }

    #[test]
    fn snapshots_share_the_cached_attribute_list() {
        let (_c, _calls, si) = entry_with_ttl(1000);
        let a = si.update_state().unwrap();
        let b = si.query_state().unwrap();
        let c = si.last_state().unwrap();
        assert!(
            Arc::ptr_eq(&a.attributes, &b.attributes),
            "hits must alias the produced list, not deep-copy it"
        );
        assert!(Arc::ptr_eq(&b.attributes, &c.attributes));
        let d = b.clone();
        assert!(Arc::ptr_eq(&b.attributes, &d.attributes));
    }

    #[test]
    fn performance_catalog_tracks_updates() {
        let clock = ManualClock::new();
        let c2 = clock.clone();
        let si = SystemInformation::new(
            Box::new(FnProvider::new("Timed", move || {
                c2.advance(Duration::from_millis(25));
                Ok(vec![("v".to_string(), "1".to_string())])
            })),
            clock.clone(),
            Duration::ZERO,
            DegradationFn::default(),
        );
        for _ in 0..4 {
            si.update_state().unwrap();
        }
        let (mean, std, n) = si.average_update_time();
        assert_eq!(n, 4);
        assert!((mean - 0.025).abs() < 1e-9, "mean {mean}");
        assert!(std < 1e-9, "constant cost has zero stddev");
    }

    #[test]
    fn quality_degrades_with_age() {
        let (clock, _calls, si) = entry_with_ttl(100); // linear over 200ms
        si.update_state().unwrap();
        assert!((si.current_quality().unwrap() - 1.0).abs() < 1e-9);
        clock.advance(Duration::from_millis(100));
        assert!((si.current_quality().unwrap() - 0.5).abs() < 1e-9);
        clock.advance(Duration::from_millis(200));
        assert_eq!(si.current_quality().unwrap(), 0.0);
    }
}
