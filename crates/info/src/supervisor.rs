//! Per-keyword fault-domain supervisor: a circuit breaker with
//! non-blocking jittered backoff and deadline budgets.
//!
//! Each [`SystemInformation`] entry owns one [`Supervisor`]. Every
//! supervised fetch first asks [`Supervisor::admit`] whether the
//! provider may run; the answer encodes the classic three-state breaker:
//!
//! ```text
//!             N consecutive transient failures
//!   Closed ────────────────────────────────────▶ Open
//!     ▲                                            │ cool-down elapses
//!     │ probe succeeds                             ▼
//!     └─────────────────────────────────────── HalfOpen
//!                 (probe fails → back to Open, cool-down doubled)
//! ```
//!
//! Two design decisions keep the supervisor deterministic under the
//! virtual clock and explorable by `sim::model`:
//!
//! * **Backoff never sleeps.** `ManualClock::sleep` blocks until another
//!   thread advances the clock, so a sleeping backoff would deadlock
//!   single-threaded deterministic tests. Instead, backoff is a
//!   *not-before gate*: after a failed fetch the supervisor computes the
//!   jittered exponential delay and simply refuses admission until that
//!   clock time, steering callers to the last-known-good snapshot in the
//!   meantime. The delay schedule is identical to a sleeping
//!   implementation; only the waiting is cooperative.
//! * **Jitter is seeded per keyword.** The jitter PRNG is seeded from
//!   the keyword name (FNV-1a), so a fault scenario replays
//!   byte-identically from its seed — run-to-run and host-to-host.
//!
//! Deadline budgets are enforced cooperatively at completion: the
//! supervised fetch compares elapsed clock time against the budget after
//! the provider returns (injected `Hang` faults charge their stall to
//! the clock, so a breach is always observable), counts the breach, and
//! falls back to the stale snapshot rather than retrying into a dead
//! budget.
//!
//! [`SystemInformation`]: crate::entry::SystemInformation

use infogram_sim::{SimTime, SplitMix64};
use parking_lot::{lock_class, Mutex};
use std::time::Duration;

/// Breaker position of one keyword's fault domain.
///
/// The numeric values are the wire/gauge encoding (`info.breaker.<kw>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: fetches execute the provider (subject to the backoff
    /// gate after isolated failures).
    Closed = 0,
    /// Tripped: the provider is not executed until the cool-down ends;
    /// callers are served the last-known-good snapshot.
    Open = 1,
    /// Cool-down elapsed: exactly one probe fetch is admitted; success
    /// closes the breaker, failure re-opens it with a doubled cool-down.
    HalfOpen = 2,
}

/// Tunables for one keyword's supervisor.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Consecutive transient failures that trip the breaker.
    pub failure_threshold: u32,
    /// Base cool-down after tripping (doubles on each failed probe, up
    /// to [`SupervisorConfig::open_max`]).
    pub open_for: Duration,
    /// Cool-down ceiling.
    pub open_max: Duration,
    /// Bounded in-fetch retries after the first transient failure.
    pub max_retries: u32,
    /// Base of the jittered exponential backoff gate between fetches.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Deadline budget floor (used directly for TTL-0 keywords).
    pub deadline_floor: Duration,
    /// Default deadline budget = `max(ttl × factor, deadline_floor)`.
    pub deadline_ttl_factor: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            failure_threshold: 3,
            open_for: Duration::from_millis(500),
            open_max: Duration::from_secs(30),
            max_retries: 2,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_secs(2),
            jitter: 0.2,
            deadline_floor: Duration::from_millis(250),
            deadline_ttl_factor: 4,
        }
    }
}

impl SupervisorConfig {
    /// The default deadline budget for a keyword with this TTL.
    pub fn deadline_for(&self, ttl: Duration) -> Duration {
        (ttl * self.deadline_ttl_factor).max(self.deadline_floor)
    }
}

/// What [`Supervisor::admit`] decided for one fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the provider. `probe` marks the single half-open probe: it
    /// gets no in-fetch retries, and its outcome moves the breaker.
    Execute {
        /// Whether this execution is the half-open probe.
        probe: bool,
    },
    /// Do not run the provider; serve stale or fail. `retry_after` is
    /// the time until the gate re-opens — the wire-level retry hint.
    Deferred {
        /// Time until the next admission.
        retry_after: Duration,
    },
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Consecutive transient failures (reset on success).
    streak: u32,
    /// While `Open`: when the cool-down ends.
    open_until: SimTime,
    /// Current cool-down length (doubles on failed probes).
    open_len: Duration,
    /// While `Closed` after a failed fetch: the backoff gate.
    not_before: SimTime,
    /// A half-open probe is in flight; concurrent fetches are deferred.
    probing: bool,
}

/// The per-keyword breaker + backoff state machine. All transitions are
/// guarded by one mutex; nothing blocking is ever called under it.
#[derive(Debug)]
pub struct Supervisor {
    config: Mutex<SupervisorConfig>,
    inner: Mutex<Inner>,
    rng: Mutex<SplitMix64>,
}

/// FNV-1a over the keyword: a stable, platform-independent jitter seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Supervisor {
    /// A closed supervisor for `keyword` with the given tunables.
    pub fn new(keyword: &str, config: SupervisorConfig) -> Self {
        let open_len = config.open_for;
        Supervisor {
            config: Mutex::with_class(config, lock_class!("info.supervisor.config")),
            inner: Mutex::with_class(
                Inner {
                    state: BreakerState::Closed,
                    streak: 0,
                    open_until: SimTime::ZERO,
                    open_len,
                    not_before: SimTime::ZERO,
                    probing: false,
                },
                lock_class!("info.supervisor.inner"),
            ),
            rng: Mutex::with_class(
                SplitMix64::new(fnv1a(keyword) ^ 0x5afe_b0ff),
                lock_class!("info.supervisor.rng"),
            ),
        }
    }

    /// Replace the tunables (existing breaker state is kept).
    pub fn set_config(&self, config: SupervisorConfig) {
        *self.config.lock() = config;
    }

    /// A copy of the current tunables.
    pub fn config(&self) -> SupervisorConfig {
        self.config.lock().clone()
    }

    /// Current breaker position.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Current consecutive-failure streak.
    pub fn streak(&self) -> u32 {
        self.inner.lock().streak
    }

    /// Decide whether a fetch arriving at `now` may run the provider.
    pub fn admit(&self, now: SimTime) -> Admission {
        let config = self.config.lock().clone();
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                if now < inner.not_before {
                    Admission::Deferred {
                        retry_after: inner.not_before.since(now),
                    }
                } else {
                    Admission::Execute { probe: false }
                }
            }
            BreakerState::Open => {
                if now < inner.open_until {
                    Admission::Deferred {
                        retry_after: inner.open_until.since(now),
                    }
                } else {
                    inner.state = BreakerState::HalfOpen;
                    inner.probing = true;
                    Admission::Execute { probe: true }
                }
            }
            BreakerState::HalfOpen => {
                if inner.probing {
                    // One probe at a time; others wait a short beat.
                    Admission::Deferred {
                        retry_after: config.backoff_base,
                    }
                } else {
                    inner.probing = true;
                    Admission::Execute { probe: true }
                }
            }
        }
    }

    /// Non-mutating admission peek for schedulers: if a fetch arriving
    /// at `now` would be deferred, returns how long until the gate
    /// re-opens; `None` means a fetch would be admitted.
    ///
    /// Unlike [`Supervisor::admit`], this never transitions the breaker
    /// and never claims the half-open probe slot — the refresh scheduler
    /// uses it to *park* a keyword (reschedule past the cool-down)
    /// without racing real queries for the probe.
    pub fn retry_hint(&self, now: SimTime) -> Option<Duration> {
        let config = self.config.lock().clone();
        let inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed if now < inner.not_before => Some(inner.not_before.since(now)),
            BreakerState::Closed => None,
            BreakerState::Open if now < inner.open_until => Some(inner.open_until.since(now)),
            // Cool-down elapsed (or half-open with a probe in flight):
            // leave the probe to a real query; check back in one
            // backoff beat.
            BreakerState::Open | BreakerState::HalfOpen if inner.probing => {
                Some(config.backoff_base)
            }
            BreakerState::Open | BreakerState::HalfOpen => None,
        }
    }

    /// Record a successful provider execution: close the breaker and
    /// clear all failure state.
    pub fn on_success(&self) {
        let config = self.config.lock().clone();
        let mut inner = self.inner.lock();
        inner.state = BreakerState::Closed;
        inner.streak = 0;
        inner.probing = false;
        inner.not_before = SimTime::ZERO;
        inner.open_len = config.open_for;
    }

    /// Record a failed (transient) provider execution at `now`; `probe`
    /// marks the half-open probe. Returns the new breaker state.
    pub fn on_failure(&self, now: SimTime, probe: bool) -> BreakerState {
        let config = self.config.lock().clone();
        let jitter = self.jittered_factor(config.jitter);
        let mut inner = self.inner.lock();
        inner.probing = false;
        inner.streak = inner.streak.saturating_add(1);
        if probe {
            // Failed probe: re-open, doubled cool-down.
            inner.open_len = (inner.open_len * 2).min(config.open_max);
            inner.open_until = now.plus(scale(inner.open_len, jitter));
            inner.state = BreakerState::Open;
        } else if inner.streak >= config.failure_threshold {
            inner.open_len = config.open_for;
            inner.open_until = now.plus(scale(inner.open_len, jitter));
            inner.state = BreakerState::Open;
        } else {
            // Below the threshold: exponential not-before gate.
            let exp = inner.streak.saturating_sub(1).min(16);
            let delay = config
                .backoff_base
                .saturating_mul(1u32 << exp)
                .min(config.backoff_max);
            inner.not_before = now.plus(scale(delay, jitter));
        }
        inner.state
    }

    /// Record a *configuration* failure (unknown command, missing file):
    /// clears any in-flight probe without counting toward the breaker —
    /// retrying a config error is pointless, but so is tripping the
    /// breaker over it. A failed probe still re-opens the breaker (the
    /// transient streak that opened it is unresolved).
    pub fn on_config_failure(&self, now: SimTime, probe: bool) {
        let mut inner = self.inner.lock();
        inner.probing = false;
        if probe {
            inner.open_until = now.plus(inner.open_len);
            inner.state = BreakerState::Open;
        }
    }

    /// A jitter factor in `[1 - jitter, 1 + jitter]`, drawn from the
    /// keyword-seeded PRNG (deterministic replay).
    fn jittered_factor(&self, jitter: f64) -> f64 {
        if jitter <= 0.0 {
            return 1.0;
        }
        let u = self.rng.lock().next_f64();
        1.0 - jitter + 2.0 * jitter * u
    }
}

fn scale(d: Duration, factor: f64) -> Duration {
    Duration::from_secs_f64(d.as_secs_f64() * factor.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SupervisorConfig {
        SupervisorConfig {
            jitter: 0.0, // deterministic delays for exact assertions
            ..SupervisorConfig::default()
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn trips_after_threshold_and_recovers_via_probe() {
        let s = Supervisor::new("K", config());
        assert_eq!(s.admit(t(0)), Admission::Execute { probe: false });
        s.on_failure(t(0), false);
        assert_eq!(s.state(), BreakerState::Closed);
        // Backoff gate defers until 25ms.
        assert!(matches!(s.admit(t(1)), Admission::Deferred { .. }));
        assert_eq!(s.admit(t(25)), Admission::Execute { probe: false });
        s.on_failure(t(25), false);
        assert_eq!(s.admit(t(80)), Admission::Execute { probe: false });
        s.on_failure(t(80), false); // third: trips
        assert_eq!(s.state(), BreakerState::Open);
        // Open defers with the cool-down as the retry hint.
        match s.admit(t(81)) {
            Admission::Deferred { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(499));
            }
            other => panic!("{other:?}"),
        }
        // Cool-down over: exactly one probe.
        assert_eq!(s.admit(t(580)), Admission::Execute { probe: true });
        assert_eq!(s.state(), BreakerState::HalfOpen);
        assert!(matches!(s.admit(t(580)), Admission::Deferred { .. }));
        s.on_success();
        assert_eq!(s.state(), BreakerState::Closed);
        assert_eq!(s.streak(), 0);
        assert_eq!(s.admit(t(581)), Admission::Execute { probe: false });
    }

    #[test]
    fn failed_probe_doubles_cooldown() {
        let s = Supervisor::new("K", config());
        for i in 0..3 {
            s.admit(t(i));
            s.on_failure(t(i), false);
        }
        assert_eq!(s.state(), BreakerState::Open);
        // First cool-down 500ms.
        assert_eq!(s.admit(t(502 + 2)), Admission::Execute { probe: true });
        s.on_failure(t(504), true);
        assert_eq!(s.state(), BreakerState::Open);
        // Doubled: deferred until ~1504.
        match s.admit(t(504)) {
            Admission::Deferred { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(1000));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let mut cfg = config();
        cfg.failure_threshold = 100; // never trip; isolate the gate
        cfg.backoff_max = Duration::from_millis(80);
        let s = Supervisor::new("K", cfg);
        let mut now = t(0);
        let mut delays = Vec::new();
        for _ in 0..5 {
            assert!(matches!(s.admit(now), Admission::Execute { .. }));
            s.on_failure(now, false);
            match s.admit(now) {
                Admission::Deferred { retry_after } => {
                    delays.push(retry_after);
                    now = now.plus(retry_after);
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(
            delays,
            [25, 50, 80, 80, 80].map(Duration::from_millis).to_vec()
        );
    }

    #[test]
    fn jitter_is_seed_deterministic_per_keyword() {
        let mk = || {
            let s = Supervisor::new("CPULoad", SupervisorConfig::default());
            s.on_failure(t(0), false);
            match s.admit(t(0)) {
                Admission::Deferred { retry_after } => retry_after,
                other => panic!("{other:?}"),
            }
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a, b, "same keyword, same seed, same jitter");
        let base = Duration::from_millis(25);
        assert!(a >= base.mul_f64(0.8) && a <= base.mul_f64(1.2), "{a:?}");
    }

    #[test]
    fn config_failure_does_not_count_but_clears_probe() {
        let s = Supervisor::new("K", config());
        s.admit(t(0));
        s.on_config_failure(t(0), false);
        assert_eq!(s.streak(), 0);
        assert_eq!(s.state(), BreakerState::Closed);
        assert_eq!(s.admit(t(0)), Admission::Execute { probe: false });
        // Trip, probe, config failure during probe → back to Open.
        for i in 0..3 {
            s.on_failure(t(i), false);
        }
        assert_eq!(s.admit(t(600)), Admission::Execute { probe: true });
        s.on_config_failure(t(600), true);
        assert_eq!(s.state(), BreakerState::Open);
    }

    #[test]
    fn deadline_budget_is_ttl_proportional_with_floor() {
        let cfg = SupervisorConfig::default();
        assert_eq!(
            cfg.deadline_for(Duration::from_millis(100)),
            Duration::from_millis(400)
        );
        assert_eq!(cfg.deadline_for(Duration::ZERO), Duration::from_millis(250));
    }
}
