//! Adaptive refresh scheduling driven by the §6.6 performance tag.
//!
//! The paper's service refreshes keywords *reactively*: a query arriving
//! after TTL expiry blocks on `updateState`, so steady traffic on a hot
//! keyword takes one guaranteed miss every TTL period, while idle
//! keywords are refreshed for nobody whenever a stray probe lands. The
//! [`RefreshScheduler`] replaces that with a central plan built from two
//! signals the system already measures:
//!
//! * the **performance catalog** (§6.6) — per-keyword mean/stddev of
//!   provider execution time, via
//!   [`SystemInformation::average_update_time`];
//! * the **query arrival rate** — the interned `info.hits.<kw>` /
//!   `info.misses.<kw>` counters the service already bumps per query,
//!   diffed between scheduler visits so the query hot path pays nothing
//!   for demand tracking.
//!
//! From these it maintains one [`TimerWheel`] over all watched keywords:
//!
//! * **prefetch** — a hot keyword's refresh is scheduled a *lead* of
//!   `mean + lead_sigma × stddev` before its TTL expires, so the fresh
//!   value lands just as the old one dies and steady traffic never
//!   misses;
//! * **skip** — a keyword with zero queries since its last visit is
//!   cold: its refresh is skipped and a demand check is pushed one TTL
//!   out (`sched.skipped`);
//! * **batch** — co-expiring refreshes dispatch through one
//!   [`fan_out`], capped at
//!   [`SchedConfig::max_batch`] per tick with the *highest* predicted
//!   staleness cost refreshed first;
//! * **park** — a keyword whose supervisor is holding the provider
//!   closed (breaker open, backoff gate armed) is rescheduled past the
//!   gate via the non-mutating [`Supervisor::retry_hint`] peek — the
//!   scheduler never hot-loops a broken provider and never steals the
//!   half-open probe from real queries;
//! * **evict** — a keyword whose provider fails *non-transiently*
//!   (unknown command, missing file) leaves the queue entirely
//!   (`sched.evicted`); refreshing a config error forever is the one
//!   thing strictly worse than a cache miss.
//!
//! The scheduler is **tick-driven**: [`RefreshScheduler::tick`] pops
//! whatever is due at `clock.now()` and returns the next deadline, so
//! the same code runs under a [`ManualClock`](infogram_sim::ManualClock)
//! in deterministic tests, under the model checker (see
//! `tests/model_sched.rs`), and behind a trivial sleep-loop driver on
//! the system clock (see `examples/scheduler.rs`). Nothing here spawns
//! threads or sleeps.
//!
//! [`Supervisor::retry_hint`]: crate::supervisor::Supervisor::retry_hint

use crate::config::SchedConfig;
use crate::entry::{QueryError, Snapshot, SystemInformation};
use crate::service::{InformationService, KeywordMetrics};
use crate::sub::SubscriptionHub;
use infogram_sim::clock::SharedClock;
use infogram_sim::metrics::{Counter, Gauge, Histogram, MetricSet};
use infogram_sim::timer::{Ticket, TimerWheel};
use infogram_sim::{fan_out, SimTime};
use parking_lot::{lock_class, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Why [`RefreshScheduler::watch`] refused a keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchError {
    /// TTL-0 keywords execute on every request by definition (Table 1:
    /// "0 specifies execution of the keyword every time it is
    /// requested") — a prefetched value would be unservable, so they
    /// are never enqueued.
    TtlZero,
}

impl std::fmt::Display for WatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchError::TtlZero => write!(f, "TTL-0 keywords are never prefetched"),
        }
    }
}

impl std::error::Error for WatchError {}

/// What one [`RefreshScheduler::tick`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Keywords refreshed (provider executed, fresh value cached).
    pub refreshed: usize,
    /// Cold keywords whose refresh was skipped for lack of demand.
    pub skipped: usize,
    /// Keywords parked behind their supervisor's breaker/backoff gate.
    pub parked: usize,
    /// Keywords evicted after a non-transient (config) provider error.
    pub evicted: usize,
    /// Due keywords pushed to the next tick by the batch cap.
    pub deferred: usize,
    /// When the wheel next has work, if any keywords remain watched.
    pub next_deadline: Option<SimTime>,
}

/// Interned scheduler instruments (see the README operator guide).
struct SchedTelemetry {
    prefetches: Arc<Counter>,
    skipped: Arc<Counter>,
    parked: Arc<Counter>,
    evicted: Arc<Counter>,
    deferred: Arc<Counter>,
    batch_size: Arc<Histogram>,
    watched: Arc<Gauge>,
}

impl SchedTelemetry {
    fn intern(metrics: &MetricSet) -> Self {
        SchedTelemetry {
            prefetches: metrics.counter("sched.prefetches"),
            skipped: metrics.counter("sched.skipped"),
            parked: metrics.counter("sched.parked"),
            evicted: metrics.counter("sched.evicted"),
            deferred: metrics.counter("sched.deferred"),
            batch_size: metrics.histogram("sched.batch_size"),
            watched: metrics.gauge("sched.watched"),
        }
    }
}

/// One watched keyword's scheduling state.
struct Tracked {
    si: Arc<SystemInformation>,
    /// The service's interned per-keyword query counters, diffed between
    /// visits for demand; `None` (no service wiring) disables the
    /// cold-skip gate for this keyword.
    km: Option<KeywordMetrics>,
    /// The pending wheel entry; `None` only while a tick has the
    /// keyword in flight (popped, not yet rescheduled).
    ticket: Option<Ticket>,
    /// Guards against a stale in-flight tick rescheduling a keyword
    /// that was re-watched or evicted meanwhile: bumped on every watch,
    /// compared at completion.
    epoch: u64,
    /// `hits + misses` observed at the previous visit.
    seen_queries: u64,
    /// When the previous visit happened (demand-rate denominator).
    last_visit: SimTime,
    /// Whether the first scheduled refresh already ran — the demand
    /// gate only applies after it, so a newly watched keyword always
    /// gets its cache seeded.
    primed: bool,
    /// Most recent demand estimate, queries/second.
    demand_rate: f64,
    /// `sched.staleness.<kw>` — predicted staleness cost.
    staleness: Arc<Gauge>,
}

struct SchedState {
    wheel: TimerWheel<String>,
    tracked: BTreeMap<String, Tracked>,
    next_epoch: u64,
}

/// A keyword popped off the wheel and bound for the refresh fan-out.
struct InFlight {
    key: String,
    epoch: u64,
    si: Arc<SystemInformation>,
    cost: f64,
}

/// The central refresh scheduler. See the [module docs](self).
pub struct RefreshScheduler {
    clock: SharedClock,
    config: SchedConfig,
    metrics: MetricSet,
    telemetry: SchedTelemetry,
    state: Mutex<SchedState>,
    /// Push-subscription fan-out target (see [`SubscriptionHub`]):
    /// every successful refresh is forwarded here *after* the state
    /// lock drops, and a subscribed keyword counts as standing demand
    /// for the cold-skip gate.
    hub: Mutex<Option<Arc<SubscriptionHub>>>,
}

impl std::fmt::Debug for RefreshScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefreshScheduler")
            .field("watched", &self.watched())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl RefreshScheduler {
    /// A scheduler with no watched keywords. `metrics` receives the
    /// `sched.*` instruments; pass the service's own set so
    /// `(info=metrics)` surfaces them.
    pub fn new(clock: SharedClock, config: SchedConfig, metrics: MetricSet) -> Arc<Self> {
        let telemetry = SchedTelemetry::intern(&metrics);
        Arc::new(RefreshScheduler {
            clock,
            config,
            metrics,
            telemetry,
            state: Mutex::with_class(
                SchedState {
                    wheel: TimerWheel::new(),
                    tracked: BTreeMap::new(),
                    next_epoch: 0,
                },
                lock_class!("info.sched.state"),
            ),
            hub: Mutex::with_class(None, lock_class!("info.sched.hub")),
        })
    }

    /// The active tunables.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Wire a [`SubscriptionHub`]: from now on every successful refresh
    /// fans out to the keyword's subscribers, and a keyword with live
    /// subscribers is never cold-skipped (a subscription is standing
    /// demand — the subscriber already asked for every future value).
    pub fn set_hub(&self, hub: Arc<SubscriptionHub>) {
        *self.hub.lock() = Some(hub);
    }

    /// Number of keywords currently watched.
    pub fn watched(&self) -> usize {
        self.state.lock().tracked.len()
    }

    /// Whether a keyword is already on the wheel (case-insensitive).
    /// Lets a subscribe avoid re-watching — which would reset the
    /// keyword's schedule and demand history.
    pub fn is_watched(&self, keyword: &str) -> bool {
        self.state
            .lock()
            .tracked
            .contains_key(&keyword.to_ascii_lowercase())
    }

    /// When the wheel next has work, if anything is watched.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.state.lock().wheel.next_deadline()
    }

    /// Number of pending wheel entries. When no tick is in flight this
    /// equals [`watched`](Self::watched) — exactly one pending entry per
    /// keyword, never zero (a lost wakeup) and never two (a refresh
    /// storm). The model scenarios in `tests/model_sched.rs` check that
    /// invariant across interleavings.
    pub fn pending(&self) -> usize {
        self.state.lock().wheel.len()
    }

    /// Watch one entry, optionally wired to the service's per-keyword
    /// query counters (without them the cold-skip gate is off for this
    /// keyword — demand cannot be observed).
    ///
    /// TTL-0 entries are refused with [`WatchError::TtlZero`].
    /// Re-watching a keyword supersedes its previous schedule; an
    /// in-flight refresh from the old schedule completes but no longer
    /// reschedules.
    pub fn watch(
        &self,
        si: Arc<SystemInformation>,
        km: Option<KeywordMetrics>,
    ) -> Result<(), WatchError> {
        if si.ttl().is_zero() {
            return Err(WatchError::TtlZero);
        }
        let now = self.clock.now();
        // First due time: the remaining validity minus the prefetch
        // lead. A never-produced entry has zero validity — it is due
        // immediately, and the first tick seeds its cache.
        let lead = self.lead_for(&si);
        let due = now.plus(si.validity().saturating_sub(lead));
        let seen = km.as_ref().map_or(0, |k| k.hits.get() + k.misses.get());
        let staleness = self
            .metrics
            .gauge(&format!("sched.staleness.{}", si.keyword()));
        let key = si.keyword().to_ascii_lowercase();
        let mut st = self.state.lock();
        if let Some(old) = st.tracked.remove(&key) {
            if let Some(t) = old.ticket {
                st.wheel.cancel(t);
            }
        }
        let epoch = st.next_epoch;
        st.next_epoch += 1;
        let ticket = st.wheel.schedule(due, key.clone());
        st.tracked.insert(
            key,
            Tracked {
                si,
                km,
                ticket: Some(ticket),
                epoch,
                seen_queries: seen,
                last_visit: now,
                primed: false,
                demand_rate: 0.0,
                staleness,
            },
        );
        self.telemetry.watched.set(st.tracked.len() as f64);
        Ok(())
    }

    /// Watch every eligible (TTL > 0) keyword of a service, wiring each
    /// to the service's interned query counters. Returns how many were
    /// enqueued; TTL-0 keywords (e.g. the `Metrics:` provider) are
    /// silently left to on-demand execution.
    pub fn watch_service(&self, service: &InformationService) -> usize {
        let mut n = 0;
        for si in service.entries() {
            let km = service.keyword_metrics(si.keyword());
            if self.watch(si, km).is_ok() {
                n += 1;
            }
        }
        n
    }

    /// Stop watching a keyword. Returns whether it was watched. An
    /// in-flight refresh completes but no longer reschedules.
    pub fn unwatch(&self, keyword: &str) -> bool {
        let key = keyword.to_ascii_lowercase();
        let mut st = self.state.lock();
        match st.tracked.remove(&key) {
            Some(old) => {
                if let Some(t) = old.ticket {
                    st.wheel.cancel(t);
                }
                self.telemetry.watched.set(st.tracked.len() as f64);
                true
            }
            None => false,
        }
    }

    /// The prefetch lead for an entry: `mean + lead_sigma × stddev` of
    /// its observed provider latency, clamped to
    /// `[min_lead, ttl × max_lead_fraction]`.
    fn lead_for(&self, si: &SystemInformation) -> Duration {
        let (mean, std, samples) = si.average_update_time();
        let raw = if samples == 0 {
            self.config.min_lead
        } else {
            Duration::from_secs_f64((mean + self.config.lead_sigma * std).max(0.0))
        };
        let cap = si
            .ttl()
            .mul_f64(self.config.max_lead_fraction.clamp(0.0, 1.0));
        raw.clamp(self.config.min_lead.min(cap), cap.max(self.config.min_lead))
    }

    /// Predicted staleness cost: observed demand (queries/s) × expected
    /// refresh duration (s). This is the expected amount of client-
    /// visible staleness *bought* by delaying this refresh — the batch
    /// cap trims the cheapest keywords first, and the per-keyword
    /// `sched.staleness.<kw>` gauge publishes it.
    fn staleness_cost(demand_rate: f64, si: &SystemInformation) -> f64 {
        let (mean, _, samples) = si.average_update_time();
        let expected = if samples == 0 { 1e-3 } else { mean.max(1e-6) };
        demand_rate * expected
    }

    /// Run one scheduling round at the current clock time: pop every
    /// due keyword, decide skip/park/refresh for each, dispatch the
    /// refresh batch through one [`fan_out`], and reschedule.
    ///
    /// Safe to call concurrently (each keyword is popped by exactly one
    /// tick) and cheap when nothing is due.
    pub fn tick(&self) -> TickReport {
        let now = self.clock.now();
        let mut report = TickReport::default();
        let mut batch: Vec<InFlight> = Vec::new();
        // Snapshot the hub wiring once per tick; the scheduler's state
        // lock is ordered strictly before the hub's (never the reverse).
        let hub = self.hub.lock().clone();
        {
            let mut guard = self.state.lock();
            // Reborrow as a plain `&mut` so the wheel and the tracked
            // map can be borrowed disjointly through the guard.
            let st = &mut *guard;
            let mut due = Vec::new();
            while let Some(d) = st.wheel.pop_due(now) {
                due.push(d.item);
            }
            for key in due {
                let Some(t) = st.tracked.get_mut(&key) else {
                    continue; // unwatched while queued (tombstone raced)
                };
                t.ticket = None;
                // Demand sample: queries since the previous visit.
                let queries = t.km.as_ref().map(|k| k.hits.get() + k.misses.get());
                let elapsed = now.since(t.last_visit).as_secs_f64();
                let delta = queries.map(|q| q.saturating_sub(t.seen_queries));
                if let Some(q) = queries {
                    t.seen_queries = q;
                }
                t.last_visit = now;
                if elapsed > 0.0 {
                    t.demand_rate = delta.unwrap_or(0) as f64 / elapsed;
                }
                let cost = Self::staleness_cost(t.demand_rate, &t.si);
                t.staleness.set(cost);
                // Cold skip: no demand since the last visit (and the
                // cache has been seeded) → check again one TTL out.
                // A keyword with live push subscribers is never cold:
                // its subscribers asked for every future value.
                let subscribed = hub.as_ref().is_some_and(|h| h.has_subscribers(&key));
                if self.config.idle_skip && t.primed && delta == Some(0) && !subscribed {
                    let ttl = t.si.ttl().max(self.config.min_interval);
                    t.ticket = Some(st.wheel.schedule(now.plus(ttl), key.clone()));
                    self.telemetry.skipped.incr();
                    report.skipped += 1;
                    continue;
                }
                // Park: the supervisor is holding the provider closed.
                if let Some(hint) = t.si.supervisor().retry_hint(now) {
                    let wait = hint.max(self.config.min_interval);
                    t.ticket = Some(st.wheel.schedule(now.plus(wait), key.clone()));
                    self.telemetry.parked.incr();
                    report.parked += 1;
                    continue;
                }
                batch.push(InFlight {
                    key,
                    epoch: t.epoch,
                    si: Arc::clone(&t.si),
                    cost,
                });
            }
            // Batch cap: keep the costliest refreshes, push the rest
            // one storm-guard interval out (they stay pending — no
            // lost wakeups, just a later seat).
            if batch.len() > self.config.max_batch.max(1) {
                batch.sort_by(|a, b| {
                    b.cost
                        .partial_cmp(&a.cost)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for spill in batch.split_off(self.config.max_batch.max(1)) {
                    if let Some(t) = st.tracked.get_mut(&spill.key) {
                        let at = now.plus(self.config.min_interval);
                        t.ticket = Some(st.wheel.schedule(at, spill.key.clone()));
                    }
                    self.telemetry.deferred.incr();
                    report.deferred += 1;
                }
            }
        }
        // Successful refreshes bound for the subscription fan-out; the
        // hub is notified only after the scheduler's state lock drops.
        let mut pushed: Vec<(Arc<SystemInformation>, Snapshot)> = Vec::new();
        if !batch.is_empty() {
            self.telemetry.batch_size.record_secs(batch.len() as f64);
            // One scatter-gather over the co-due keywords; the lock is
            // *not* held while providers run.
            let results = fan_out(&batch, |_, f| f.si.refresh_scheduled());
            let mut st = self.state.lock();
            for (flight, result) in batch.into_iter().zip(results) {
                // A re-watch or unwatch during the fan-out supersedes
                // this flight: complete without rescheduling.
                let stale_flight =
                    !matches!(st.tracked.get(&flight.key), Some(t) if t.epoch == flight.epoch);
                if stale_flight {
                    continue;
                }
                match result {
                    Ok(snap) => {
                        self.reschedule_after_refresh(&mut st, &flight.key, &snap);
                        self.telemetry.prefetches.incr();
                        report.refreshed += 1;
                        if hub.is_some() {
                            pushed.push((Arc::clone(&flight.si), snap));
                        }
                    }
                    Err(QueryError::Provider(e)) if !e.is_transient() => {
                        // Config error: evict — retrying cannot help.
                        if let Some(t) = st.tracked.remove(&flight.key) {
                            t.staleness.set(0.0);
                        }
                        self.telemetry.watched.set(st.tracked.len() as f64);
                        self.telemetry.evicted.incr();
                        report.evicted += 1;
                    }
                    Err(QueryError::Unavailable { retry_after }) => {
                        // Lost the race with a real query for admission;
                        // the supervisor's hint says when to return.
                        let wait = retry_after.max(self.config.min_interval);
                        self.park(&mut st, &flight.key, now.plus(wait));
                        self.telemetry.parked.incr();
                        report.parked += 1;
                    }
                    Err(_) => {
                        // Transient failure: the supervisor's backoff /
                        // breaker gate is now armed — park behind it.
                        let wait = flight
                            .si
                            .supervisor()
                            .retry_hint(self.clock.now())
                            .unwrap_or(self.config.min_interval)
                            .max(self.config.min_interval);
                        self.park(&mut st, &flight.key, self.clock.now().plus(wait));
                        self.telemetry.parked.incr();
                        report.parked += 1;
                    }
                }
            }
        }
        if let Some(hub) = &hub {
            // Fan out with no scheduler lock held: a slow or deadlocked
            // sink can cost this tick latency, never a lock cycle.
            for (si, snap) in pushed {
                hub.notify_refresh(&si, &snap);
            }
        }
        report.next_deadline = self.state.lock().wheel.next_deadline();
        report
    }

    /// After a successful refresh: next due = `produced_at + ttl − lead`,
    /// floored one storm-guard interval away from now.
    fn reschedule_after_refresh(&self, st: &mut SchedState, key: &str, snap: &Snapshot) {
        let Some(t) = st.tracked.get_mut(key) else {
            return;
        };
        t.primed = true;
        let lead = self.lead_for(&t.si);
        let expiry = snap.produced_at.plus(t.si.ttl());
        let due = expiry
            .minus(lead)
            .max(self.clock.now().plus(self.config.min_interval));
        t.ticket = Some(st.wheel.schedule(due, key.to_string()));
    }

    fn park(&self, st: &mut SchedState, key: &str, at: SimTime) {
        if let Some(t) = st.tracked.get_mut(key) {
            t.ticket = Some(st.wheel.schedule(at, key.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{FnProvider, ProviderError};
    use crate::quality::DegradationFn;
    use infogram_sim::{Clock, ManualClock};
    use std::sync::atomic::{AtomicU64, Ordering};

    const TTL: Duration = Duration::from_millis(100);

    fn entry(
        clock: Arc<ManualClock>,
        keyword: &str,
        ttl: Duration,
        calls: Arc<AtomicU64>,
    ) -> Arc<SystemInformation> {
        SystemInformation::new(
            Box::new(FnProvider::new(keyword, move || {
                let n = calls.fetch_add(1, Ordering::SeqCst) + 1;
                Ok(vec![("n".to_string(), n.to_string())])
            })),
            clock,
            ttl,
            DegradationFn::Linear { lifetime: ttl * 4 },
        )
    }

    fn sched(clock: Arc<ManualClock>) -> Arc<RefreshScheduler> {
        RefreshScheduler::new(clock, SchedConfig::default(), MetricSet::new())
    }

    #[test]
    fn ttl_zero_is_refused() {
        let clock = ManualClock::new();
        let s = sched(clock.clone());
        let calls = Arc::new(AtomicU64::new(0));
        let si = entry(clock, "CPULoad", Duration::ZERO, calls);
        assert_eq!(s.watch(si, None), Err(WatchError::TtlZero));
        assert_eq!(s.watched(), 0);
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn first_tick_seeds_the_cache_then_prefetches_before_expiry() {
        let clock = ManualClock::new();
        let s = sched(clock.clone());
        let calls = Arc::new(AtomicU64::new(0));
        let si = entry(clock.clone(), "Date", TTL, Arc::clone(&calls));
        s.watch(Arc::clone(&si), None).unwrap();
        // Never produced → due immediately.
        let r = s.tick();
        assert_eq!(r.refreshed, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let next = r.next_deadline.expect("rescheduled");
        // Next refresh is due before the value expires.
        assert!(next <= clock.now().plus(TTL), "due {next:?}");
        // Advance to the rescheduled refresh: the cache never lapses.
        clock.set(next);
        let r = s.tick();
        assert_eq!(r.refreshed, 1);
        assert!(si.query_state().is_ok(), "value still valid at refresh");
    }

    #[test]
    fn cold_keyword_is_skipped_without_demand_wiring_off() {
        // No KeywordMetrics → demand unobservable → never skipped.
        let clock = ManualClock::new();
        let s = sched(clock.clone());
        let calls = Arc::new(AtomicU64::new(0));
        s.watch(entry(clock.clone(), "Date", TTL, Arc::clone(&calls)), None)
            .unwrap();
        for _ in 0..3 {
            if let Some(d) = s.next_deadline() {
                clock.set(d.max(clock.now()));
            }
            s.tick();
        }
        assert!(calls.load(Ordering::SeqCst) >= 3);
    }

    #[test]
    fn cold_keyword_with_demand_wiring_is_skipped() {
        let clock = ManualClock::new();
        let metrics = MetricSet::new();
        let s = RefreshScheduler::new(clock.clone(), SchedConfig::default(), metrics.clone());
        let calls = Arc::new(AtomicU64::new(0));
        let km = KeywordMetrics::intern(&metrics, "Date");
        let si = entry(clock.clone(), "Date", TTL, Arc::clone(&calls));
        s.watch(si, Some(km.clone())).unwrap();
        // Seed (primes the demand gate).
        s.tick();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // No queries arrive: every later visit skips.
        for _ in 0..3 {
            clock.set(s.next_deadline().unwrap().max(clock.now()));
            let r = s.tick();
            assert_eq!(r.skipped, 1);
            assert_eq!(r.refreshed, 0);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "cold: no more executions");
        assert_eq!(metrics.counter_value("sched.skipped"), 3);
        // Demand returns: the next visit refreshes again.
        km.hits.incr();
        clock.set(s.next_deadline().unwrap().max(clock.now()));
        let r = s.tick();
        assert_eq!(r.refreshed, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn config_error_evicts_instead_of_retrying() {
        let clock = ManualClock::new();
        let metrics = MetricSet::new();
        let s = RefreshScheduler::new(clock.clone(), SchedConfig::default(), metrics.clone());
        let calls = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&calls);
        let si = SystemInformation::new(
            Box::new(FnProvider::new("Broken", move || {
                c2.fetch_add(1, Ordering::SeqCst);
                Err(ProviderError::UnknownCommand {
                    command: "nope".to_string(),
                    detail: "not in Table 1".to_string(),
                })
            })),
            clock.clone(),
            TTL,
            DegradationFn::default(),
        );
        s.watch(si, None).unwrap();
        let r = s.tick();
        assert_eq!(r.evicted, 1);
        assert_eq!(s.watched(), 0);
        assert_eq!(s.next_deadline(), None, "evicted keywords leave the wheel");
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(metrics.counter_value("sched.evicted"), 1);
        // Nothing left to do; further ticks are no-ops.
        clock.advance(TTL * 10);
        assert_eq!(s.tick(), TickReport::default());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn open_breaker_parks_the_keyword() {
        let clock = ManualClock::new();
        let metrics = MetricSet::new();
        let s = RefreshScheduler::new(clock.clone(), SchedConfig::default(), metrics.clone());
        let calls = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&calls);
        let si = SystemInformation::new(
            Box::new(FnProvider::new("Flaky", move || {
                c2.fetch_add(1, Ordering::SeqCst);
                Err(ProviderError::Other("down".to_string()))
            })),
            clock.clone(),
            TTL,
            DegradationFn::default(),
        );
        // Trip the breaker through real (supervised) fetches.
        while si.breaker_state() != crate::supervisor::BreakerState::Open {
            let _ = si.fetch_supervised(None);
            clock.advance(Duration::from_secs(3));
        }
        // Re-arm the cool-down from the current time (the failed probe
        // re-opens the breaker with a doubled cool-down).
        let _ = si.fetch_supervised(None);
        assert_eq!(si.breaker_state(), crate::supervisor::BreakerState::Open);
        let tripped_calls = calls.load(Ordering::SeqCst);
        s.watch(si, None).unwrap();
        clock.advance(Duration::from_millis(1));
        let r = s.tick();
        assert_eq!(r.parked, 1);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            tripped_calls,
            "a parked keyword never executes the provider"
        );
        // The park deadline is strictly in the future — no busy loop.
        assert!(s.next_deadline().unwrap() > clock.now());
        assert!(metrics.counter_value("sched.parked") >= 1);
    }

    #[test]
    fn batch_cap_defers_cheapest_and_refreshes_costliest() {
        let clock = ManualClock::new();
        let config = SchedConfig {
            max_batch: 2,
            ..SchedConfig::default()
        };
        let metrics = MetricSet::new();
        let s = RefreshScheduler::new(clock.clone(), config, metrics.clone());
        let calls = Arc::new(AtomicU64::new(0));
        for kw in ["A", "B", "C", "D"] {
            s.watch(entry(clock.clone(), kw, TTL, Arc::clone(&calls)), None)
                .unwrap();
        }
        // All four are due immediately; only two may dispatch.
        let r = s.tick();
        assert_eq!(r.refreshed, 2);
        assert_eq!(r.deferred, 2);
        assert_eq!(metrics.counter_value("sched.deferred"), 2);
        // The spilled pair is still pending, one storm-guard out.
        clock.advance(SchedConfig::default().min_interval);
        let r = s.tick();
        assert_eq!(r.refreshed, 2);
        assert_eq!(calls.load(Ordering::SeqCst), 4, "nobody was lost");
    }

    #[test]
    fn rewatch_supersedes_and_keeps_one_pending_entry() {
        let clock = ManualClock::new();
        let s = sched(clock.clone());
        let calls = Arc::new(AtomicU64::new(0));
        let si = entry(clock.clone(), "Date", TTL, Arc::clone(&calls));
        s.watch(Arc::clone(&si), None).unwrap();
        s.watch(Arc::clone(&si), None).unwrap();
        assert_eq!(s.watched(), 1);
        let r = s.tick();
        assert_eq!(r.refreshed, 1, "exactly one pending entry per keyword");
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert!(s.unwatch("date"), "lookup is case-insensitive");
        assert!(!s.unwatch("Date"));
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn staleness_gauge_tracks_demand_times_latency() {
        let clock = ManualClock::new();
        let metrics = MetricSet::new();
        let s = RefreshScheduler::new(clock.clone(), SchedConfig::default(), metrics.clone());
        let km = KeywordMetrics::intern(&metrics, "CPU");
        let c2 = clock.clone();
        let si = SystemInformation::new(
            Box::new(FnProvider::new("CPU", move || {
                c2.advance(Duration::from_millis(10)); // 10 ms provider
                Ok(vec![("v".to_string(), "1".to_string())])
            })),
            clock.clone(),
            TTL,
            DegradationFn::default(),
        );
        s.watch(si, Some(km.clone())).unwrap();
        s.tick(); // seed; provider latency now known
                  // 50 queries over the next period.
        for _ in 0..50 {
            km.hits.incr();
        }
        clock.set(s.next_deadline().unwrap());
        s.tick();
        let cost = metrics.gauge_value("sched.staleness.CPU");
        // demand ≈ 50 / (period secs); expected latency 0.010 s.
        assert!(cost > 0.0, "hot keyword has positive staleness cost");
    }
}
