//! Information providers.
//!
//! §6.2: "The system information service returns relevant information
//! about the system resources, through either (a) calls to a system
//! command via the Java runtime exec (b) a query to a function exposing
//! Java runtime information such as load, memory, or disk space (c) or a
//! read function from a file that is used by an information provider."
//!
//! * case (a) → [`CommandProvider`] over the simulated host's command
//!   registry;
//! * case (b) → [`RuntimeProvider`] querying the host models directly;
//! * case (c) → [`FileProvider`] reading the host's `/proc`-style files;
//! * plus [`FnProvider`] wrapping a closure, for tests and custom
//!   integrations ("the integration of new information providers can be
//!   performed through the implementation of interfaces").

use infogram_host::commands::{parse_kv_output, CommandRegistry};
use infogram_host::machine::SimulatedHost;
use infogram_host::procfs;
use infogram_sim::metrics::MetricSet;
use std::sync::Arc;

/// Why a provider could not produce its information.
///
/// The taxonomy matters to the fault supervisor: *transient* errors
/// (nonzero exits, custom failures) are retried and counted toward the
/// circuit breaker, while *configuration* errors (unknown executable,
/// missing file) are permanent — retrying them is pointless, so they are
/// surfaced immediately and never open the breaker. See
/// [`ProviderError::is_transient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProviderError {
    /// The backing command ran but exited nonzero — transient: the
    /// backend may recover, so the supervisor retries and breaker-counts
    /// these.
    CommandFailed {
        /// What ran.
        command: String,
        /// Why it failed, e.g. `exit code 1`.
        detail: String,
    },
    /// The executable is not registered at all — a configuration error,
    /// never retried: no number of attempts will make it appear.
    UnknownCommand {
        /// The command line that could not be resolved.
        command: String,
        /// The resolver's message, e.g. `unknown command: probe`.
        detail: String,
    },
    /// The backing file does not exist (configuration error).
    FileMissing {
        /// The missing path.
        path: String,
    },
    /// Custom provider failure (treated as transient).
    Other(String),
}

impl ProviderError {
    /// Whether retrying could plausibly succeed. Transient errors are
    /// retried in-fetch and counted toward the circuit breaker;
    /// configuration errors fail fast and leave the breaker untouched.
    pub fn is_transient(&self) -> bool {
        match self {
            ProviderError::CommandFailed { .. } | ProviderError::Other(_) => true,
            ProviderError::UnknownCommand { .. } | ProviderError::FileMissing { .. } => false,
        }
    }
}

impl std::fmt::Display for ProviderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProviderError::CommandFailed { command, detail } => {
                write!(f, "command '{command}' failed: {detail}")
            }
            ProviderError::UnknownCommand { command, detail } => {
                write!(
                    f,
                    "command '{command}' failed: {detail} (configuration error)"
                )
            }
            ProviderError::FileMissing { path } => write!(f, "file missing: {path}"),
            ProviderError::Other(s) => write!(f, "provider error: {s}"),
        }
    }
}

impl std::error::Error for ProviderError {}

/// Source of one keyword's attributes. `produce` is the expensive,
/// blocking call — the thing the TTL cache exists to avoid.
pub trait InfoProvider: Send + Sync {
    /// The keyword this provider serves (e.g. `Memory`).
    fn keyword(&self) -> &str;
    /// Produce fresh `(attribute, value)` pairs.
    fn produce(&self) -> Result<Vec<(String, String)>, ProviderError>;
    /// A human-readable description of the source (command line, path, …)
    /// reported by the schema reflection.
    fn source(&self) -> String;
}

/// Case (a): run a command through the host's registry and parse its
/// `key: value` output.
pub struct CommandProvider {
    keyword: String,
    command_line: String,
    registry: Arc<CommandRegistry>,
}

impl CommandProvider {
    /// A provider executing `command_line` for `keyword`.
    pub fn new(keyword: &str, command_line: &str, registry: Arc<CommandRegistry>) -> Self {
        CommandProvider {
            keyword: keyword.to_string(),
            command_line: command_line.to_string(),
            registry,
        }
    }
}

impl InfoProvider for CommandProvider {
    fn keyword(&self) -> &str {
        &self.keyword
    }

    fn produce(&self) -> Result<Vec<(String, String)>, ProviderError> {
        // A command the registry cannot resolve is a configuration
        // error, not a transient failure: classify it so the supervisor
        // never wastes retries on it.
        let out = self.registry.execute(&self.command_line).map_err(|e| {
            ProviderError::UnknownCommand {
                command: self.command_line.clone(),
                detail: e.to_string(),
            }
        })?;
        if out.exit_code != 0 {
            return Err(ProviderError::CommandFailed {
                command: self.command_line.clone(),
                detail: format!("exit code {}", out.exit_code),
            });
        }
        Ok(parse_kv_output(&out.stdout))
    }

    fn source(&self) -> String {
        self.command_line.clone()
    }
}

/// Case (b): query the host models directly, no exec cost — the analogue
/// of asking the JVM for `freeMemory()`.
pub struct RuntimeProvider {
    keyword: String,
    host: Arc<SimulatedHost>,
    facet: RuntimeFacet,
}

/// Which runtime quantity a [`RuntimeProvider`] exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeFacet {
    /// CPU load (instantaneous + 1/5/15-minute averages).
    Load,
    /// Memory totals.
    Memory,
    /// Disk totals.
    Disk,
    /// Uptime and host identity.
    Host,
}

impl RuntimeProvider {
    /// A runtime provider for one facet.
    pub fn new(keyword: &str, host: Arc<SimulatedHost>, facet: RuntimeFacet) -> Self {
        RuntimeProvider {
            keyword: keyword.to_string(),
            host,
            facet,
        }
    }
}

impl InfoProvider for RuntimeProvider {
    fn keyword(&self) -> &str {
        &self.keyword
    }

    fn produce(&self) -> Result<Vec<(String, String)>, ProviderError> {
        let h = &self.host;
        Ok(match self.facet {
            RuntimeFacet::Load => {
                let (l1, l5, l15) = h.cpu.load_averages();
                vec![
                    ("load".to_string(), format!("{:.4}", h.cpu.current())),
                    ("load1".to_string(), format!("{l1:.4}")),
                    ("load5".to_string(), format!("{l5:.4}")),
                    ("load15".to_string(), format!("{l15:.4}")),
                ]
            }
            RuntimeFacet::Memory => vec![
                ("total".to_string(), h.memory.total().to_string()),
                ("used".to_string(), h.memory.used().to_string()),
                ("free".to_string(), h.memory.free().to_string()),
            ],
            RuntimeFacet::Disk => vec![
                ("total".to_string(), h.disk.total().to_string()),
                ("used".to_string(), h.disk.used().to_string()),
                ("free".to_string(), h.disk.free().to_string()),
            ],
            RuntimeFacet::Host => vec![
                ("hostname".to_string(), h.hostname().to_string()),
                ("os".to_string(), h.config().os_name.clone()),
                ("cpus".to_string(), h.config().cpus.to_string()),
                ("uptime".to_string(), format!("{:.1}", h.uptime_secs())),
            ],
        })
    }

    fn source(&self) -> String {
        format!("runtime:{:?}", self.facet)
    }
}

/// Case (c): read a file from the host filesystem. `/proc` paths are
/// refreshed from the live models before reading, like the real procfs.
pub struct FileProvider {
    keyword: String,
    path: String,
    host: Arc<SimulatedHost>,
}

impl FileProvider {
    /// A provider reading `path` for `keyword`.
    pub fn new(keyword: &str, path: &str, host: Arc<SimulatedHost>) -> Self {
        FileProvider {
            keyword: keyword.to_string(),
            path: path.to_string(),
            host,
        }
    }
}

impl InfoProvider for FileProvider {
    fn keyword(&self) -> &str {
        &self.keyword
    }

    fn produce(&self) -> Result<Vec<(String, String)>, ProviderError> {
        if self.path.starts_with("/proc/") {
            procfs::sync_procfs(&self.host);
        }
        let text =
            self.host
                .fs
                .read_text(&self.path)
                .ok_or_else(|| ProviderError::FileMissing {
                    path: self.path.clone(),
                })?;
        // `key: value` lines if the file has them, else the whole content.
        let kvs = parse_kv_output(&text);
        if kvs.is_empty() {
            Ok(vec![("content".to_string(), text.trim_end().to_string())])
        } else {
            Ok(kvs)
        }
    }

    fn source(&self) -> String {
        format!("file:{}", self.path)
    }
}

/// The built-in `Metrics:` keyword — the service describing itself.
///
/// Flattens the shared telemetry handle's snapshot (counters, gauges,
/// histogram quantiles, recorder means, recent events) into plain
/// `(attribute, value)` pairs, so `(info=metrics)` travels through
/// exactly the same caching, filtering, quality, and rendering machinery
/// as every Table 1 keyword. Registered with a TTL of zero, it reads a
/// live snapshot on every query.
pub struct TelemetryProvider {
    telemetry: MetricSet,
}

impl TelemetryProvider {
    /// Canonical keyword of the self-describing telemetry entry.
    pub const KEYWORD: &'static str = "Metrics";

    /// A provider reading snapshots of the given telemetry handle.
    pub fn new(telemetry: MetricSet) -> Self {
        TelemetryProvider { telemetry }
    }
}

impl InfoProvider for TelemetryProvider {
    fn keyword(&self) -> &str {
        Self::KEYWORD
    }

    fn produce(&self) -> Result<Vec<(String, String)>, ProviderError> {
        Ok(self.telemetry.snapshot_attrs())
    }

    fn source(&self) -> String {
        "telemetry snapshot".to_string()
    }
}

/// A provider wrapping a closure.
pub struct FnProvider<F> {
    keyword: String,
    f: F,
}

impl<F> FnProvider<F>
where
    F: Fn() -> Result<Vec<(String, String)>, ProviderError> + Send + Sync,
{
    /// Wrap a closure as a provider.
    pub fn new(keyword: &str, f: F) -> Self {
        FnProvider {
            keyword: keyword.to_string(),
            f,
        }
    }
}

impl<F> InfoProvider for FnProvider<F>
where
    F: Fn() -> Result<Vec<(String, String)>, ProviderError> + Send + Sync,
{
    fn keyword(&self) -> &str {
        &self.keyword
    }

    fn produce(&self) -> Result<Vec<(String, String)>, ProviderError> {
        (self.f)()
    }

    fn source(&self) -> String {
        "fn".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_host::commands::ChargeMode;
    use infogram_sim::ManualClock;
    use std::time::Duration;

    fn world() -> (Arc<ManualClock>, Arc<SimulatedHost>, Arc<CommandRegistry>) {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        let reg = CommandRegistry::new(Arc::clone(&host), ChargeMode::Advance(clock.clone()));
        (clock, host, reg)
    }

    #[test]
    fn command_provider_memory() {
        let (_c, host, reg) = world();
        let p = CommandProvider::new("Memory", "/sbin/sysinfo.exe -mem", reg);
        let attrs = p.produce().unwrap();
        let total: u64 = attrs
            .iter()
            .find(|(k, _)| k == "total")
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert_eq!(total, host.memory.total());
        assert_eq!(p.keyword(), "Memory");
        assert_eq!(p.source(), "/sbin/sysinfo.exe -mem");
    }

    #[test]
    fn command_provider_failure_modes() {
        let (_c, _host, reg) = world();
        // Unresolvable executable → configuration error, never retried.
        let unknown = CommandProvider::new("X", "/bin/nonexistent", Arc::clone(&reg));
        match unknown.produce() {
            Err(e @ ProviderError::UnknownCommand { .. }) => {
                assert!(!e.is_transient());
                assert!(e.to_string().contains("unknown command"));
            }
            other => panic!("{other:?}"),
        }
        // Nonzero exit → transient, retried and breaker-counted.
        let failing = CommandProvider::new("X", "false", reg);
        match failing.produce() {
            Err(e @ ProviderError::CommandFailed { .. }) => {
                assert!(e.is_transient());
                assert!(e.to_string().contains("exit code 1"));
            }
            other => panic!("{other:?}"),
        }
        assert!(!ProviderError::FileMissing {
            path: "/x".to_string()
        }
        .is_transient());
        assert!(ProviderError::Other("boom".to_string()).is_transient());
    }

    #[test]
    fn runtime_provider_load_tracks_model() {
        let (clock, host, _reg) = world();
        clock.advance(Duration::from_secs(45));
        let p = RuntimeProvider::new("CPULoad", Arc::clone(&host), RuntimeFacet::Load);
        let attrs = p.produce().unwrap();
        let load: f64 = attrs
            .iter()
            .find(|(k, _)| k == "load")
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert!((load - host.cpu.current()).abs() < 1e-3);
    }

    #[test]
    fn runtime_provider_host_facet() {
        let (_c, host, _reg) = world();
        let p = RuntimeProvider::new("Host", host, RuntimeFacet::Host);
        let attrs = p.produce().unwrap();
        assert!(attrs
            .iter()
            .any(|(k, v)| k == "hostname" && v == "node00.grid.example.org"));
        assert!(attrs.iter().any(|(k, _)| k == "cpus"));
    }

    #[test]
    fn file_provider_proc_loadavg() {
        let (clock, host, _reg) = world();
        clock.advance(Duration::from_secs(10));
        let p = FileProvider::new("LoadAvg", "/proc/loadavg", host);
        let attrs = p.produce().unwrap();
        // loadavg has no colon-separated pairs; whole content captured.
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].0, "content");
        assert!(attrs[0].1.split_whitespace().count() >= 4);
    }

    #[test]
    fn file_provider_meminfo_parses_pairs() {
        let (_c, host, _reg) = world();
        let p = FileProvider::new("MemInfo", "/proc/meminfo", host);
        let attrs = p.produce().unwrap();
        assert!(attrs.iter().any(|(k, _)| k == "MemTotal"));
    }

    #[test]
    fn file_provider_missing() {
        let (_c, host, _reg) = world();
        let p = FileProvider::new("X", "/no/such/file", host);
        assert!(matches!(
            p.produce(),
            Err(ProviderError::FileMissing { .. })
        ));
    }

    #[test]
    fn fn_provider() {
        let p = FnProvider::new("Custom", || {
            Ok(vec![("answer".to_string(), "42".to_string())])
        });
        assert_eq!(p.produce().unwrap()[0].1, "42");
        let failing = FnProvider::new("Bad", || Err(ProviderError::Other("boom".to_string())));
        assert!(failing.produce().is_err());
    }
}
