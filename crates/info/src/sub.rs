//! The persistent-query subscription index.
//!
//! `(action=subscribe)` registers a query that *stays open*: instead of
//! polling, the client receives an incremental
//! [`RecordDelta`] whenever one of
//! its keywords refreshes or a job changes state (the condense_db
//! persistent-query shape — results stream in for as long as the query
//! is registered). The [`SubscriptionHub`] is the index that makes the
//! fan-out O(subscribers-of-this-keyword) instead of
//! O(subscriptions × keywords): each keyword owns a channel holding its
//! last pushed snapshot, a monotonically increasing version, and the
//! ids subscribed to it, so a refresh diffs once, encodes once, and
//! stamps per-subscriber frames.
//!
//! Delivery discipline (model-checked in `tests/model_sub.rs`):
//!
//! * the hub's *state* lock is **never** held across a sink delivery —
//!   fan-out collects `(id, sink)` pairs under the lock and delivers
//!   outside it, so a slow sink cannot deadlock the refresh scheduler;
//!   a per-channel *delivery* lock serializes version assignment and
//!   fan-out instead, so concurrent notifiers (and a subscriber's
//!   initial snapshot) always reach a sink in version order;
//! * a failed delivery evicts the subscription immediately (bounded
//!   outboxes turn slow consumers into
//!   [`codes::SLOW_CONSUMER`](infogram_proto::message::codes) errors,
//!   not unbounded buffers);
//! * every refresh bumps the keyword version by exactly one and every
//!   live subscriber observes it — empty deltas (refresh produced an
//!   identical record) are still delivered so the version stream stays
//!   contiguous and a client can *prove* it missed nothing.
//!
//! Job-state transitions push through the same machinery under the
//! virtual keyword [`JOBS_KEYWORD`]: each transition becomes a tiny
//! record (`jobs:handle`, `jobs:state`), diffed and versioned like any
//! other keyword.

use crate::entry::{Snapshot, SystemInformation};
use infogram_proto::delta::{encode_deltas, RecordDelta};
use infogram_proto::message::{codes, update_frame, JobStateCode, Reply};
use infogram_proto::record::InfoRecord;
use infogram_proto::{JobHandle, Outbox, OutboxError};
use infogram_sim::clock::SharedClock;
use infogram_sim::metrics::{Counter, Gauge, MetricSet};
use parking_lot::{lock_class, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

/// The virtual keyword job-state transitions publish under; subscribe
/// with `(action=subscribe)(info=jobs)`.
pub const JOBS_KEYWORD: &str = "jobs";

/// A sink refused a frame: the subscription behind it must be evicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkClosed {
    /// A [`codes`] value explaining the eviction
    /// ([`codes::SLOW_CONSUMER`] for outbox overflow).
    pub code: u32,
    /// Human-readable explanation, forwarded in the final frame.
    pub message: String,
}

/// Where a subscription's frames go. The gatekeeper wraps each
/// connection's bounded [`Outbox`] in
/// one of these; tests and the bench substitute counting sinks.
pub trait SubSink: Send + Sync {
    /// Deliver one encoded frame. An `Err` evicts the subscription:
    /// implementations must not block — a bounded outbox fails fast on
    /// overflow instead of waiting for the consumer.
    fn deliver(&self, frame: Vec<u8>) -> Result<(), SinkClosed>;
    /// Best-effort final frame (the `SubEnd` notice) after eviction;
    /// implementations may discard any undelivered backlog first.
    fn close(&self, frame: Vec<u8>);
}

/// The production [`SubSink`]: frames go into the connection's bounded
/// [`Outbox`]. A full outbox is a slow consumer — `deliver` fails with
/// [`codes::SLOW_CONSUMER`] and the hub evicts; it never blocks the
/// refresh scheduler behind a stuck peer.
pub struct OutboxSink {
    outbox: Arc<Outbox>,
}

impl OutboxSink {
    /// Wrap a connection's outbox.
    pub fn new(outbox: Arc<Outbox>) -> Arc<Self> {
        Arc::new(OutboxSink { outbox })
    }
}

impl SubSink for OutboxSink {
    fn deliver(&self, frame: Vec<u8>) -> Result<(), SinkClosed> {
        match self.outbox.push(frame) {
            Ok(()) => match self.outbox.drain() {
                Ok(_) => Ok(()),
                Err(_) => Err(SinkClosed {
                    code: codes::INTERNAL,
                    message: "connection closed".to_string(),
                }),
            },
            Err(OutboxError::Overflow { capacity }) => Err(SinkClosed {
                code: codes::SLOW_CONSUMER,
                message: format!(
                    "subscriber fell behind: outbox full at {capacity} frames; \
                     drain faster or subscribe to fewer keywords"
                ),
            }),
            Err(OutboxError::Closed) => Err(SinkClosed {
                code: codes::INTERNAL,
                message: "connection closed".to_string(),
            }),
        }
    }

    fn close(&self, frame: Vec<u8>) {
        self.outbox.close_with(frame);
    }
}

struct SubEntry {
    sink: Arc<dyn SubSink>,
    /// Lowercased channel keys this subscription joined.
    keywords: Vec<String>,
}

struct KeywordChannel {
    /// Bumped by exactly one per pushed update; subscribers prove
    /// no-missed-updates by version contiguity.
    version: u64,
    /// The last pushed record, the diffing baseline.
    last: Option<InfoRecord>,
    subscribers: Vec<u64>,
    /// Serializes version assignment *and* fan-out for this channel —
    /// held across delivery, while the hub's state lock is not.
    /// Concurrent notifiers (the refresh driver, job submit threads)
    /// would otherwise race their deliveries and a subscriber could
    /// observe v+1 before v; a joining subscriber likewise gets its
    /// initial snapshot onto the wire before any later version.
    delivery: Arc<Mutex<()>>,
}

impl KeywordChannel {
    fn new() -> Self {
        KeywordChannel {
            version: 0,
            last: None,
            subscribers: Vec::new(),
            // Every per-keyword delivery lock shares one lockdep class:
            // instances are never nested, and the class orders against
            // the hub state lock (delivery first — DESIGN §13).
            delivery: Arc::new(Mutex::with_class((), lock_class!("info.sub.delivery"))),
        }
    }
}

struct HubState {
    next_id: u64,
    subs: HashMap<u64, SubEntry>,
    channels: HashMap<String, KeywordChannel>,
}

struct HubTelemetry {
    active: Arc<Gauge>,
    delivered: Arc<Counter>,
    evicted: Arc<Counter>,
    updates: Arc<Counter>,
}

/// The subscription index. See the [module docs](self).
pub struct SubscriptionHub {
    clock: SharedClock,
    hostname: String,
    telemetry: HubTelemetry,
    state: Mutex<HubState>,
}

impl std::fmt::Debug for SubscriptionHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SubscriptionHub")
            .field("subscriptions", &st.subs.len())
            .field("channels", &st.channels.len())
            .finish_non_exhaustive()
    }
}

impl SubscriptionHub {
    /// An empty hub publishing under `hostname`. `metrics` receives the
    /// `sub.*` instruments.
    pub fn new(clock: SharedClock, hostname: &str, metrics: MetricSet) -> Arc<Self> {
        Arc::new(SubscriptionHub {
            clock,
            hostname: hostname.to_string(),
            telemetry: HubTelemetry {
                active: metrics.gauge("sub.active"),
                delivered: metrics.counter("sub.delivered"),
                evicted: metrics.counter("sub.evicted"),
                updates: metrics.counter("sub.updates"),
            },
            state: Mutex::with_class(
                HubState {
                    next_id: 1,
                    subs: HashMap::new(),
                    channels: HashMap::new(),
                },
                lock_class!("info.sub.hub_state"),
            ),
        })
    }

    /// Number of live subscriptions.
    pub fn active(&self) -> usize {
        self.state.lock().subs.len()
    }

    /// Whether any live subscription watches `keyword` — standing
    /// demand the refresh scheduler's cold-skip gate must honor: a
    /// subscriber is a client that *already asked* for every future
    /// value.
    pub fn has_subscribers(&self, keyword: &str) -> bool {
        let key = keyword.to_ascii_lowercase();
        self.state
            .lock()
            .channels
            .get(&key)
            .is_some_and(|c| !c.subscribers.is_empty())
    }

    /// The current version of a keyword's channel (0 before the first
    /// pushed update).
    pub fn channel_version(&self, keyword: &str) -> u64 {
        let key = keyword.to_ascii_lowercase();
        self.state
            .lock()
            .channels
            .get(&key)
            .map_or(0, |c| c.version)
    }

    /// Register a persistent query over `keywords`, delivering to
    /// `sink`. Returns the subscription id. Channels that already hold
    /// a snapshot deliver it immediately as a full-snapshot delta at
    /// the channel's current version — a resubscribing client restarts
    /// from ground truth, so a reconnect never shows a gap.
    pub fn subscribe(&self, keywords: &[String], sink: Arc<dyn SubSink>) -> u64 {
        let mut keys: Vec<String> = Vec::new();
        for kw in keywords {
            let key = kw.to_ascii_lowercase();
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        let id = {
            let mut st = self.state.lock();
            let id = st.next_id;
            st.next_id += 1;
            st.subs.insert(
                id,
                SubEntry {
                    sink: Arc::clone(&sink),
                    keywords: Vec::new(),
                },
            );
            self.telemetry.active.set(st.subs.len() as f64);
            id
        };
        // Join one channel at a time under its delivery lock: once the
        // id is on a subscriber list, the next notify on that channel
        // waits until the initial snapshot (if any) is on the wire, so
        // a joiner can never see version v+1 before its snapshot at v.
        for key in keys {
            let delivery = {
                let mut st = self.state.lock();
                Arc::clone(
                    &st.channels
                        .entry(key.clone())
                        .or_insert_with(KeywordChannel::new)
                        .delivery,
                )
            };
            let _order = delivery.lock();
            let initial = {
                let mut st = self.state.lock();
                let st = &mut *st;
                let Some(entry) = st.subs.get_mut(&id) else {
                    return id; // unsubscribed/evicted mid-join
                };
                entry.keywords.push(key.clone());
                // lint:allow(unwrap) — the channel was created above and
                // channels are never removed
                let ch = st.channels.get_mut(&key).expect("channel exists");
                ch.subscribers.push(id);
                ch.last
                    .as_ref()
                    .map(|last| RecordDelta::diff(None, last, ch.version))
            };
            if let Some(delta) = initial {
                let frame = update_frame(id, &encode_deltas(std::slice::from_ref(&delta)));
                if let Err(closed) = sink.deliver(frame) {
                    self.evict(id, closed.code, &closed.message);
                    return id;
                }
                self.telemetry.delivered.incr();
            }
        }
        id
    }

    /// End a subscription cleanly. Returns whether it existed. The
    /// `SubEnd` acknowledgement travels as the *reply* to the
    /// unsubscribe request, not through the sink.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut st = self.state.lock();
        let existed = Self::remove_locked(&mut st, id).is_some();
        self.telemetry.active.set(st.subs.len() as f64);
        existed
    }

    /// Drop every subscription delivering to sinks the connection
    /// owned (connection teardown). `ids` comes from the connection's
    /// bookkeeping.
    pub fn drop_all(&self, ids: &[u64]) {
        let mut st = self.state.lock();
        for id in ids {
            Self::remove_locked(&mut st, *id);
        }
        self.telemetry.active.set(st.subs.len() as f64);
    }

    /// Evict a subscription (slow consumer, dead sink): remove it and
    /// push a best-effort final `SubEnd` frame through the sink's
    /// close path.
    pub fn evict(&self, id: u64, code: u32, message: &str) {
        let entry = {
            let mut st = self.state.lock();
            let e = Self::remove_locked(&mut st, id);
            self.telemetry.active.set(st.subs.len() as f64);
            e
        };
        if let Some(entry) = entry {
            let frame = Reply::SubEnd {
                id,
                code,
                message: message.to_string(),
            }
            .encode();
            entry.sink.close(frame);
            self.telemetry.evicted.incr();
        }
    }

    fn remove_locked(st: &mut HubState, id: u64) -> Option<SubEntry> {
        let entry = st.subs.remove(&id)?;
        for key in &entry.keywords {
            if let Some(ch) = st.channels.get_mut(key) {
                ch.subscribers.retain(|s| *s != id);
            }
        }
        Some(entry)
    }

    /// Push one refreshed snapshot into its keyword channel. Called by
    /// the refresh scheduler *after* releasing its own state lock; the
    /// hub lock is released before any sink delivery.
    pub fn notify_refresh(&self, si: &SystemInformation, snap: &Snapshot) {
        self.notify_record(si.keyword(), self.snapshot_record(si.keyword(), snap));
    }

    /// Push a job-state transition under the [`JOBS_KEYWORD`] channel.
    pub fn notify_job(&self, handle: &JobHandle, state: JobStateCode) {
        let mut rec = InfoRecord::new(JOBS_KEYWORD, &self.hostname);
        rec.push("handle", &handle.to_string());
        rec.push("state", &state.to_string());
        self.notify_record(JOBS_KEYWORD, rec);
    }

    /// Core fan-out: version the channel, diff against its last
    /// record, encode once, deliver to every subscriber. O(N) in the
    /// channel's subscriber count; subscribers of other keywords are
    /// never touched.
    pub fn notify_record(&self, keyword: &str, record: InfoRecord) {
        let key = keyword.to_ascii_lowercase();
        let Some(delivery) = self
            .state
            .lock()
            .channels
            .get(&key)
            .map(|c| Arc::clone(&c.delivery))
        else {
            return; // nobody ever subscribed; nothing to version
        };
        // Held across the fan-out: concurrent notifiers of this channel
        // deliver strictly in version order (see `KeywordChannel`).
        let _order = delivery.lock();
        let (delta, targets) = {
            let mut st = self.state.lock();
            let st = &mut *st;
            let Some(ch) = st.channels.get_mut(&key) else {
                return; // unreachable: channels are never removed
            };
            ch.version += 1;
            let delta = RecordDelta::diff(ch.last.as_ref(), &record, ch.version);
            ch.last = Some(record);
            let subs = &st.subs;
            let targets: Vec<(u64, Arc<dyn SubSink>)> = ch
                .subscribers
                .iter()
                .filter_map(|id| subs.get(id).map(|e| (*id, Arc::clone(&e.sink))))
                .collect();
            (delta, targets)
        };
        self.telemetry.updates.incr();
        if targets.is_empty() {
            return;
        }
        // Encode the payload once; per subscriber the frame build is a
        // header + id stamp + memcpy.
        let payload = encode_deltas(std::slice::from_ref(&delta));
        let mut dead: Vec<(u64, SinkClosed)> = Vec::new();
        for (id, sink) in targets {
            match sink.deliver(update_frame(id, &payload)) {
                Ok(()) => self.telemetry.delivered.incr(),
                Err(closed) => dead.push((id, closed)),
            }
        }
        for (id, closed) in dead {
            self.evict(id, closed.code, &closed.message);
        }
    }

    /// Seeded lock-order regression for `tests/lockdep.rs`: acquire a
    /// channel's delivery lock *while holding* the hub state lock — the
    /// reverse of every real path (delivery first, then state; DESIGN
    /// §13). Single-threaded and contention-free, so nothing hangs; the
    /// point is that `sim::lockdep` must still report the inversion.
    /// Never called by service code.
    #[doc(hidden)]
    pub fn debug_acquire_in_reverse_order(&self, keyword: &str) {
        let key = keyword.to_ascii_lowercase();
        let st = self.state.lock();
        if let Some(ch) = st.channels.get(&key) {
            let delivery = Arc::clone(&ch.delivery);
            let _order = delivery.lock(); // hub state still held: inversion
        }
    }

    /// Convert a cache snapshot into the record pushed to subscribers.
    /// Values carry no per-attribute age/quality annotations (they are
    /// fresh as of the refresh; annotating with query-time age would
    /// make every unchanged value look changed), but a stale serve
    /// keeps its record-level degraded/stale-age marks — a degraded
    /// value is still degraded when pushed.
    fn snapshot_record(&self, keyword: &str, snap: &Snapshot) -> InfoRecord {
        let mut rec = InfoRecord::new(keyword, &self.hostname);
        if snap.stale {
            rec.degraded = true;
            rec.stale_age_secs = Some(self.clock.now().since(snap.produced_at).as_secs_f64());
        }
        for (name, value) in snap.attributes.iter() {
            rec.push(name, value);
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_proto::message::codes;
    use infogram_sim::ManualClock;

    struct CollectingSink {
        frames: Mutex<Vec<Vec<u8>>>,
        fail_after: Option<usize>,
        closed_with: Mutex<Option<Vec<u8>>>,
    }

    impl CollectingSink {
        fn new() -> Arc<Self> {
            Arc::new(CollectingSink {
                frames: Mutex::new(Vec::new()),
                fail_after: None,
                closed_with: Mutex::new(None),
            })
        }

        fn failing_after(n: usize) -> Arc<Self> {
            Arc::new(CollectingSink {
                frames: Mutex::new(Vec::new()),
                fail_after: Some(n),
                closed_with: Mutex::new(None),
            })
        }

        fn replies(&self) -> Vec<Reply> {
            self.frames
                .lock()
                .iter()
                .map(|f| Reply::decode(f).expect("valid frame"))
                .collect()
        }
    }

    impl SubSink for CollectingSink {
        fn deliver(&self, frame: Vec<u8>) -> Result<(), SinkClosed> {
            let mut frames = self.frames.lock();
            if self.fail_after.is_some_and(|n| frames.len() >= n) {
                return Err(SinkClosed {
                    code: codes::SLOW_CONSUMER,
                    message: "scripted overflow".to_string(),
                });
            }
            frames.push(frame);
            Ok(())
        }

        fn close(&self, frame: Vec<u8>) {
            *self.closed_with.lock() = Some(frame);
        }
    }

    fn hub() -> Arc<SubscriptionHub> {
        SubscriptionHub::new(ManualClock::new(), "node0.grid", MetricSet::new())
    }

    fn record(kw: &str, val: &str) -> InfoRecord {
        let mut rec = InfoRecord::new(kw, "node0.grid");
        rec.push("value", val);
        rec
    }

    #[test]
    fn fan_out_reaches_every_subscriber_with_contiguous_versions() {
        let h = hub();
        let sinks: Vec<_> = (0..3).map(|_| CollectingSink::new()).collect();
        let ids: Vec<u64> = sinks
            .iter()
            .map(|s| h.subscribe(&["Memory".to_string()], s.clone() as Arc<dyn SubSink>))
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
        for round in 0..4 {
            h.notify_record("Memory", record("Memory", &round.to_string()));
        }
        for (sink, id) in sinks.iter().zip(&ids) {
            let replies = sink.replies();
            assert_eq!(replies.len(), 4);
            for (i, reply) in replies.iter().enumerate() {
                let Reply::Update { id: got, deltas } = reply else {
                    panic!("expected update, got {reply:?}");
                };
                assert_eq!(got, id, "frames carry the receiver's own id");
                assert_eq!(deltas.len(), 1);
                assert_eq!(deltas[0].version, i as u64 + 1, "versions are contiguous");
            }
        }
    }

    #[test]
    fn late_subscriber_starts_from_a_full_snapshot() {
        let h = hub();
        let early = CollectingSink::new();
        h.subscribe(&["Memory".to_string()], early.clone() as Arc<dyn SubSink>);
        h.notify_record("Memory", record("Memory", "1"));
        h.notify_record("Memory", record("Memory", "2"));

        let late = CollectingSink::new();
        h.subscribe(&["Memory".to_string()], late.clone() as Arc<dyn SubSink>);
        let replies = late.replies();
        assert_eq!(replies.len(), 1, "immediate initial delivery");
        let Reply::Update { deltas, .. } = &replies[0] else {
            panic!("expected update");
        };
        assert!(deltas[0].full, "a late joiner needs no server history");
        assert_eq!(
            deltas[0].version, 2,
            "initial snapshot carries the current version"
        );
        let rec = deltas[0].apply(None).expect("full snapshot applies bare");
        assert_eq!(rec.get("Memory:value").map(|a| a.value.as_str()), Some("2"));
    }

    #[test]
    fn failed_delivery_evicts_and_closes_with_subend() {
        let h = hub();
        let healthy = CollectingSink::new();
        let slow = CollectingSink::failing_after(1);
        h.subscribe(&["CPU".to_string()], healthy.clone() as Arc<dyn SubSink>);
        let slow_id = h.subscribe(&["CPU".to_string()], slow.clone() as Arc<dyn SubSink>);
        h.notify_record("CPU", record("CPU", "1"));
        assert_eq!(h.active(), 2);
        h.notify_record("CPU", record("CPU", "2"));
        assert_eq!(h.active(), 1, "the slow consumer was evicted");
        let closed = slow.closed_with.lock().clone().expect("close frame sent");
        let Reply::SubEnd { id, code, .. } = Reply::decode(&closed).expect("valid") else {
            panic!("expected SubEnd");
        };
        assert_eq!(id, slow_id);
        assert_eq!(code, codes::SLOW_CONSUMER);
        // The healthy subscriber keeps receiving.
        h.notify_record("CPU", record("CPU", "3"));
        assert_eq!(healthy.replies().len(), 3);
    }

    #[test]
    fn unsubscribe_stops_delivery_and_unversioned_keywords_stay_silent() {
        let h = hub();
        let sink = CollectingSink::new();
        let id = h.subscribe(&["Memory".to_string()], sink.clone() as Arc<dyn SubSink>);
        h.notify_record("Memory", record("Memory", "1"));
        assert!(h.unsubscribe(id));
        assert!(!h.unsubscribe(id), "second unsubscribe reports missing");
        h.notify_record("Memory", record("Memory", "2"));
        assert_eq!(sink.replies().len(), 1);
        assert!(!h.has_subscribers("Memory"));
        // A keyword nobody ever subscribed to is not even versioned.
        h.notify_record("Ghost", record("Ghost", "1"));
        assert_eq!(h.channel_version("Ghost"), 0);
    }

    #[test]
    fn job_transitions_push_under_the_jobs_channel() {
        let h = hub();
        let sink = CollectingSink::new();
        h.subscribe(
            &[JOBS_KEYWORD.to_string()],
            sink.clone() as Arc<dyn SubSink>,
        );
        let handle = JobHandle::new("node0.grid", 2119, 7, 1);
        h.notify_job(&handle, JobStateCode::Active);
        h.notify_job(&handle, JobStateCode::Done);
        let replies = sink.replies();
        assert_eq!(replies.len(), 2);
        let Reply::Update { deltas, .. } = &replies[1] else {
            panic!("expected update");
        };
        // Second transition: only the state attribute changed.
        assert!(!deltas[0].full);
        assert_eq!(deltas[0].changed.len(), 1);
        assert_eq!(deltas[0].changed[0].name, "jobs:state");
        assert_eq!(deltas[0].changed[0].value, "DONE");
    }

    #[test]
    fn empty_deltas_keep_the_version_stream_contiguous() {
        let h = hub();
        let sink = CollectingSink::new();
        h.subscribe(&["Memory".to_string()], sink.clone() as Arc<dyn SubSink>);
        h.notify_record("Memory", record("Memory", "same"));
        h.notify_record("Memory", record("Memory", "same"));
        let replies = sink.replies();
        assert_eq!(replies.len(), 2, "identical refreshes still deliver");
        let Reply::Update { deltas, .. } = &replies[1] else {
            panic!("expected update");
        };
        assert!(deltas[0].is_empty());
        assert_eq!(deltas[0].version, 2);
    }
}
