#![warn(missing_docs)]

//! The InfoGram information service.
//!
//! This crate implements the information half of the paper (§3, §5.1–5.2,
//! §6.2–6.5):
//!
//! * [`provider`] — information providers: "(a) calls to a system command
//!   via the Java runtime exec (b) a query to a function exposing Java
//!   runtime information such as load, memory, or disk space (c) or a
//!   read function from a file" (§6.2). All three cases exist here, over
//!   the simulated host.
//! * [`entry::SystemInformation`] — the paper's `SystemInformation`
//!   interface: non-blocking `query_state`, blocking coalesced
//!   `update_state` guarded by a monitor, a `delay` throttle, TTL
//!   bookkeeping, and the per-keyword performance catalog behind the
//!   xRSL `performance` tag.
//! * [`quality`] — degradation functions and quality-of-information
//!   (§5.2, §6.4).
//! * [`config`] — the Table 1 configuration file format mapping
//!   `(TTL, keyword, command)`.
//! * [`schema`] — service reflection: the `(info=schema)` response
//!   (§6.5).
//! * [`service`] — the assembled [`service::InformationService`]
//!   answering selector lists with response modes, quality thresholds and
//!   filters.
//! * [`aggregate`] — a GIIS-style aggregate index over several services
//!   (§3: "we can create information aggregates through reuse of
//!   information providers to improve scalability").
//! * [`sched`] — the adaptive refresh scheduler: a central
//!   [`sched::RefreshScheduler`] that prefetches hot keywords just
//!   before TTL expiry (lead time from the §6.6 performance catalog),
//!   skips cold keywords, batches co-expiring refreshes through one
//!   `sim::par` fan-out, parks breaker-open keywords, and evicts
//!   misconfigured ones.
//! * [`sub`] — the persistent-query subscription index behind
//!   `(action=subscribe)`: per-keyword channels fan refreshed values
//!   out to subscribers as versioned record deltas, with slow-consumer
//!   eviction instead of unbounded buffering.
//! * [`supervisor`] — the per-keyword fault-domain supervisor: a
//!   Closed → Open → HalfOpen circuit breaker with non-blocking jittered
//!   backoff, bounded in-fetch retries, and deadline budgets; failed or
//!   budget-breached fetches serve the last-known-good snapshot tagged
//!   with its true age so the degradation function reports honest,
//!   degraded quality instead of an error.

pub mod aggregate;
pub mod config;
pub mod entry;
pub mod provider;
pub mod quality;
pub mod sched;
pub mod schema;
pub mod service;
pub mod sub;
pub mod supervisor;

pub use config::{ConfigEntry, ConfigError, SchedConfig, ServiceConfig, TABLE1_TEXT};
pub use entry::{QueryError, Snapshot, SystemInformation};
pub use provider::{
    CommandProvider, FileProvider, FnProvider, InfoProvider, ProviderError, RuntimeProvider,
};
pub use quality::DegradationFn;
pub use sched::{RefreshScheduler, TickReport, WatchError};
pub use service::{InfoServiceError, InformationService};
pub use sub::{OutboxSink, SinkClosed, SubSink, SubscriptionHub, JOBS_KEYWORD};
pub use supervisor::{Admission, BreakerState, Supervisor, SupervisorConfig};
