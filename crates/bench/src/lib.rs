//! Shared harness for the experiment benchmarks.
//!
//! Every `benches/*.rs` target regenerates one of the paper's artifacts
//! (Table 1, Figures 1–4) or one claim-driven experiment (E5–E15); the
//! mapping is in DESIGN.md and the measured results in EXPERIMENTS.md.
//! Each prints a self-contained text table plus the paper's expected
//! shape, so `cargo bench` output can be compared row-by-row against
//! EXPERIMENTS.md.

pub mod mixed;

use infogram_host::commands::{ChargeMode, CommandRegistry};
use infogram_host::machine::{HostConfig, SimulatedHost};
use infogram_info::config::ServiceConfig;
use infogram_info::service::InformationService;
use infogram_obs::MetricSet;
use infogram_sim::ManualClock;
use std::sync::Arc;

/// Print an experiment banner.
pub fn banner(id: &str, title: &str, expectation: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("expected shape: {expectation}");
    println!("================================================================");
}

/// Print an aligned table: a header row then data rows. Column widths are
/// fitted to the content.
pub fn table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// A deterministic single-host world on a manual clock: the substrate of
/// the cache/degradation/monitor experiments.
pub struct ManualWorld {
    /// The virtual clock — advance it to make time pass.
    pub clock: Arc<ManualClock>,
    /// The simulated host.
    pub host: Arc<SimulatedHost>,
    /// Command registry whose costs advance the manual clock.
    pub registry: Arc<CommandRegistry>,
    /// Information service configured with Table 1.
    pub info: Arc<InformationService>,
}

/// Build a deterministic world. Command execution costs advance the
/// virtual clock, so "how long things take" is exact and replayable.
pub fn manual_world(seed: u64) -> ManualWorld {
    manual_world_with_config(seed, &ServiceConfig::table1())
}

/// Build a deterministic world with a custom keyword configuration.
pub fn manual_world_with_config(seed: u64, config: &ServiceConfig) -> ManualWorld {
    let clock = ManualClock::new();
    let host = SimulatedHost::new(
        HostConfig {
            seed,
            ..Default::default()
        },
        clock.clone(),
    );
    let registry = CommandRegistry::new(Arc::clone(&host), ChargeMode::Advance(clock.clone()));
    let info = InformationService::from_config(
        config,
        Arc::clone(&registry),
        clock.clone(),
        MetricSet::new(),
    );
    ManualWorld {
        clock,
        host,
        registry,
        info,
    }
}

/// Format seconds as adaptive human units.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Format a ratio as `x.yz×`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_world_builds() {
        let w = manual_world(1);
        assert_eq!(w.info.keywords().len(), 5);
        assert_eq!(w.host.hostname(), "node00.grid.example.org");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.500ms");
        assert_eq!(fmt_secs(0.0000025), "2.5µs");
        assert_eq!(fmt_ratio(1.23456), "1.23x");
    }
}
