//! The shared mixed-workload runner behind Figures 2–4.
//!
//! A closed-loop population of clients issues a stream of requests, each
//! an information query with probability `p_info` and a small job
//! submission otherwise — the traffic of §4's "simple production Grid".
//! The same workload runs against the two worlds:
//!
//! * **baseline** — separate GRAM + MDS: every client opens two
//!   connections and speaks two protocols;
//! * **unified** — one InfoGram service: one connection, one protocol.
//!
//! Connections, messages, and bytes come from the in-memory network's
//! accounting; latencies are wall-clock per request.

use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram_obs::Summary;
use infogram_sim::workload::MixedWorkload;
use infogram_sim::SplitMix64;
use std::time::{Duration, Instant};

/// What one run of the workload produced.
pub struct MixedOutcome {
    /// Connections opened.
    pub connections: u64,
    /// Wire messages exchanged.
    pub messages: u64,
    /// Wire bytes exchanged.
    pub bytes: u64,
    /// Per-request latency summary.
    pub latency: Summary,
    /// Total requests completed.
    pub requests: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
}

/// The job each "job" request submits: small, so protocol costs stay
/// visible next to execution time.
const JOB_RSL: &str = "(executable=simwork)(arguments=5)";

/// Run the workload against the baseline world (Figure 2).
pub fn run_baseline(
    clients: usize,
    requests_per_client: usize,
    p_info: f64,
    seed: u64,
) -> MixedOutcome {
    let sandbox = Sandbox::start_with(SandboxConfig {
        with_baseline: true,
        seed,
        ..Default::default()
    });
    // with_baseline is set four lines up, so both servers exist.
    #[allow(clippy::unwrap_used)]
    let gram_addr = sandbox.baseline_gram.as_ref().unwrap().addr().to_string();
    #[allow(clippy::unwrap_used)]
    let mds_addr = sandbox.baseline_mds.as_ref().unwrap().addr().to_string();

    let before_conns = sandbox.net.metrics().counter_value("net.connections");
    let before_msgs = sandbox.net.metrics().counter_value("net.messages");
    let before_bytes = sandbox.net.metrics().counter_value("net.bytes");
    let t0 = Instant::now();

    let mut threads = Vec::new();
    for c in 0..clients {
        let net = sandbox.net.clone();
        let user = sandbox.user.clone();
        let roots = sandbox.roots.clone();
        let clock = sandbox.clock.clone();
        let gram_addr = gram_addr.clone();
        let mds_addr = mds_addr.clone();
        threads.push(std::thread::spawn(move || {
            let mut dual = infogram_client::DualClient::connect(
                &net, &gram_addr, &mds_addr, &user, &roots, clock,
            )
            .expect("dual connect");
            let mut workload = MixedWorkload::new(p_info, seed ^ (c as u64 + 1));
            let mut rng = SplitMix64::new(seed ^ 0xc11e ^ c as u64);
            let mut latencies = Vec::with_capacity(requests_per_client);
            for _ in 0..requests_per_client {
                let t = Instant::now();
                match workload.next_kind() {
                    infogram_sim::workload::RequestKind::InfoQuery => {
                        let kw = *rng.pick(&["CPULoad", "Memory", "CPU"]);
                        dual.info(kw).expect("mds info");
                    }
                    infogram_sim::workload::RequestKind::JobSubmit => {
                        let h = dual.submit(JOB_RSL, false).expect("submit");
                        dual.wait_terminal(&h, Duration::from_millis(2), Duration::from_secs(10))
                            .expect("terminal");
                    }
                }
                latencies.push(t.elapsed());
            }
            latencies
        }));
    }
    let mut all: Vec<Duration> = Vec::new();
    for t in threads {
        all.extend(t.join().expect("client thread"));
    }
    let wall = t0.elapsed();
    let outcome = MixedOutcome {
        connections: sandbox.net.metrics().counter_value("net.connections") - before_conns,
        messages: sandbox.net.metrics().counter_value("net.messages") - before_msgs,
        bytes: sandbox.net.metrics().counter_value("net.bytes") - before_bytes,
        latency: Summary::from_durations(&all),
        requests: all.len() as u64,
        wall,
    };
    sandbox.shutdown();
    outcome
}

/// Run the workload against the unified world (Figure 3).
pub fn run_unified(
    clients: usize,
    requests_per_client: usize,
    p_info: f64,
    seed: u64,
) -> MixedOutcome {
    let sandbox = Sandbox::start_with(SandboxConfig {
        seed,
        ..Default::default()
    });
    let before_conns = sandbox.net.metrics().counter_value("net.connections");
    let before_msgs = sandbox.net.metrics().counter_value("net.messages");
    let before_bytes = sandbox.net.metrics().counter_value("net.bytes");
    let t0 = Instant::now();

    let mut threads = Vec::new();
    for c in 0..clients {
        let net = sandbox.net.clone();
        let addr = sandbox.addr().to_string();
        let user = sandbox.user.clone();
        let roots = sandbox.roots.clone();
        let clock = sandbox.clock.clone();
        threads.push(std::thread::spawn(move || {
            let mut client =
                infogram_client::InfoGramClient::connect(&net, &addr, &user, &roots, clock)
                    .expect("connect");
            let mut workload = MixedWorkload::new(p_info, seed ^ (c as u64 + 1));
            let mut rng = SplitMix64::new(seed ^ 0xc11e ^ c as u64);
            let mut latencies = Vec::with_capacity(requests_per_client);
            for _ in 0..requests_per_client {
                let t = Instant::now();
                match workload.next_kind() {
                    infogram_sim::workload::RequestKind::InfoQuery => {
                        let kw = *rng.pick(&["CPULoad", "Memory", "CPU"]);
                        client.info(kw).expect("info");
                    }
                    infogram_sim::workload::RequestKind::JobSubmit => {
                        let h = client.submit(JOB_RSL, false).expect("submit");
                        client
                            .wait_terminal(&h, Duration::from_millis(2), Duration::from_secs(10))
                            .expect("terminal");
                    }
                }
                latencies.push(t.elapsed());
            }
            latencies
        }));
    }
    let mut all: Vec<Duration> = Vec::new();
    for t in threads {
        all.extend(t.join().expect("client thread"));
    }
    let wall = t0.elapsed();
    let outcome = MixedOutcome {
        connections: sandbox.net.metrics().counter_value("net.connections") - before_conns,
        messages: sandbox.net.metrics().counter_value("net.messages") - before_msgs,
        bytes: sandbox.net.metrics().counter_value("net.bytes") - before_bytes,
        latency: Summary::from_durations(&all),
        requests: all.len() as u64,
        wall,
    };
    sandbox.shutdown();
    outcome
}

/// Rows describing one outcome, shared by the figure benches.
pub fn outcome_row(label: &str, o: &MixedOutcome) -> Vec<String> {
    vec![
        label.to_string(),
        o.connections.to_string(),
        o.messages.to_string(),
        o.bytes.to_string(),
        crate::fmt_secs(o.latency.mean()),
        crate::fmt_secs(o.latency.quantile(0.95)),
        format!("{:.0}", o.requests as f64 / o.wall.as_secs_f64()),
    ]
}

/// The header matching [`outcome_row`].
pub const OUTCOME_HEADER: [&str; 7] = [
    "world", "conns", "messages", "bytes", "mean-lat", "p95-lat", "req/s",
];
