//! E7 — the three xRSL response modes (§6.6): `immediate` / `cached` /
//! `last`.
//!
//! A fixed 1 s TTL, queries every 250 ms of virtual time for 60 s per
//! mode. The semantics the paper defines translate into measurable
//! positions on the latency/freshness plane: `last` is cheapest and
//! stalest, `immediate` freshest and dearest, `cached` in between.

// Bench/example/test harness: panic-on-failure is the error policy here.
#![allow(clippy::unwrap_used)]

use infogram_bench::{banner, fmt_secs, manual_world_with_config, table};
use infogram_info::config::ServiceConfig;
use infogram_info::service::QueryOptions;
use infogram_rsl::{InfoSelector, ResponseMode};
use infogram_sim::Clock;
use std::time::Duration;

fn run(mode: ResponseMode) -> (f64, u64, f64) {
    let config = ServiceConfig::parse("1000 CPULoad /usr/local/bin/cpuload.exe\n").expect("config");
    let w = manual_world_with_config(4242, &config);
    let sel = [InfoSelector::Keyword("CPULoad".to_string())];
    // `last` needs something cached first; prime all modes equally.
    w.info
        .answer(&sel, &QueryOptions::default())
        .expect("prime");
    let primed = w.info.lookup("CPULoad").unwrap().execution_count();

    let opts = QueryOptions {
        mode,
        ..Default::default()
    };
    let mut latency_sum = 0.0;
    let mut age_sum = 0.0;
    let queries = 240u64; // 60 s at 4 Hz
    for _ in 0..queries {
        let t0 = w.clock.now();
        let records = w.info.answer(&sel, &opts).expect("query");
        latency_sum += w.clock.now().since(t0).as_secs_f64();
        age_sum += records[0].attributes[0].age_secs.unwrap_or(0.0);
        w.clock.advance(Duration::from_millis(250));
    }
    let execs = w.info.lookup("CPULoad").unwrap().execution_count() - primed;
    (
        latency_sum / queries as f64,
        execs,
        age_sum / queries as f64,
    )
}

fn main() {
    banner(
        "E7",
        "response modes: immediate / cached / last (§6.6)",
        "latency: last < cached < immediate; freshness the reverse; cached \
         refreshes exactly once per TTL window",
    );

    let mut rows = Vec::new();
    for (label, mode) in [
        ("immediate", ResponseMode::Immediate),
        ("cached", ResponseMode::Cached),
        ("last", ResponseMode::Last),
    ] {
        let (latency, execs, age) = run(mode);
        rows.push(vec![
            label.to_string(),
            fmt_secs(latency),
            execs.to_string(),
            fmt_secs(age),
        ]);
    }
    table(
        &["response=", "mean-latency", "execs/240q", "mean-age"],
        &rows,
    );
    println!(
        "\nreading: `immediate` executes the provider on all 240 queries; `cached`\n\
         on ~60 (once per 1 s TTL at 4 Hz); `last` never — its served copy just ages.\n\
         That is precisely the §6.6 semantics, now with numbers attached."
    );
}
