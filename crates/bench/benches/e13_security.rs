//! E13 — security (§5.3): handshake cost vs delegation depth, and the
//! authorization decision matrix (gridmap + time-window contracts).

use infogram_bench::{banner, fmt_secs, table};
use infogram_gsi::{
    authenticate, Authorizer, CertificateAuthority, Contract, Credential, Dn, GridMap,
    SubjectMatch, Window,
};
use infogram_sim::{SimTime, SplitMix64};
use std::time::{Duration, Instant};

fn handshake_cost() {
    println!("\n-- mutual authentication cost vs proxy chain depth --");
    let mut rng = SplitMix64::new(5150);
    let ca = CertificateAuthority::new_root(
        &Dn::user("Grid", "CA", "Root"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(10 * 365 * 86_400),
    );
    let roots = [ca.certificate().clone()];
    let server = ca.issue(
        &Dn::user("Grid", "Hosts", "gk"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(86_400),
    );

    let mut rows = Vec::new();
    for depth in [0usize, 1, 2, 4, 8] {
        let mut cred: Credential = ca.issue(
            &Dn::user("Grid", "ANL", "DeepUser"),
            &mut rng,
            SimTime::ZERO,
            Duration::from_secs(86_400),
        );
        for _ in 0..depth {
            cred = cred
                .delegate(&mut rng, SimTime::ZERO, Duration::from_secs(43_200), 16)
                .expect("delegate");
        }
        const REPS: usize = 2_000;
        let t0 = Instant::now();
        for _ in 0..REPS {
            authenticate(&cred, &server, &roots, SimTime::from_secs(1), &mut rng)
                .expect("handshake");
        }
        let per = t0.elapsed().as_secs_f64() / REPS as f64;
        rows.push(vec![
            depth.to_string(),
            (cred.chain.len()).to_string(),
            fmt_secs(per),
        ]);
    }
    table(&["proxy-depth", "chain-len", "handshake-cpu"], &rows);
}

fn authorization_matrix() {
    println!("\n-- authorization decision matrix (gridmap + contracts) --");
    let mut rng = SplitMix64::new(6510);
    let ca = CertificateAuthority::new_root(
        &Dn::user("Grid", "CA", "Root"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(10 * 365 * 86_400),
    );
    let roots = [ca.certificate().clone()];
    let server = ca.issue(
        &Dn::user("Grid", "Hosts", "gk"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(365 * 86_400),
    );

    let alice = Dn::user("Grid", "ANL", "Alice");
    let mut gridmap = GridMap::new();
    gridmap.add(alice.clone(), &["alice"]);
    // The paper's example contract: 3–4 pm daily.
    let authorizer = Authorizer::with_contracts(
        gridmap,
        vec![Contract::new(
            SubjectMatch::Exact(alice.clone()),
            "cluster",
            vec![Window::daily_hours(15, 16)],
        )],
    );

    let alice_cred = ca.issue(
        &alice,
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(365 * 86_400),
    );
    let mallory_cred = ca.issue(
        &Dn::user("Grid", "ANL", "Mallory"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(365 * 86_400),
    );
    // A day-long proxy is alive at 3pm; a one-hour proxy issued at
    // midnight has long expired by then.
    let day_proxy = alice_cred
        .delegate(&mut rng, SimTime::ZERO, Duration::from_secs(86_400), 0)
        .expect("proxy");
    let short_proxy = alice_cred
        .delegate(&mut rng, SimTime::ZERO, Duration::from_secs(3600), 0)
        .expect("proxy");

    let three_pm = SimTime::from_secs(15 * 3600 + 600);
    let noon = SimTime::from_secs(12 * 3600);

    let cases: Vec<(&str, &Credential, SimTime)> = vec![
        ("alice @ 3pm (in window)", &alice_cred, three_pm),
        ("alice @ noon (outside window)", &alice_cred, noon),
        ("alice's 24h proxy @ 3pm", &day_proxy, three_pm),
        ("alice's 1h proxy @ 3pm (expired)", &short_proxy, three_pm),
        ("mallory (unmapped) @ 3pm", &mallory_cred, three_pm),
    ];
    let mut rows = Vec::new();
    for (label, cred, when) in cases {
        let auth = authenticate(cred, &server, &roots, when, &mut rng);
        let verdict = match auth {
            Err(e) => format!("DENY (authn: {e})"),
            Ok((_c, sctx)) => match authorizer.authorize(&sctx.peer, "cluster", when) {
                Ok(d) => format!("ALLOW as {}", d.local_account),
                Err(e) => format!("DENY (authz: {e})"),
            },
        };
        rows.push(vec![label.to_string(), verdict]);
    }
    table(&["case", "decision"], &rows);
}

fn main() {
    banner(
        "E13",
        "GSI handshake + contract authorization (§5.3)",
        "handshake cost grows linearly with chain length; the decision matrix \
         matches the paper's 'allow access from 3 to 4 pm to user X' semantics exactly",
    );
    handshake_cost();
    authorization_matrix();
    println!(
        "\nreading: chain verification is the dominant handshake cost and scales\n\
         with delegation depth; authorization composes gridmap mapping (who are\n\
         you locally) with contract windows (when may you use this resource)."
    );
}
