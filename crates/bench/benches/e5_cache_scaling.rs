//! E5 — the §5.1 claim: "Assume we have a large number of clients that
//! need to know the CPU load of a remote compute resource. It would be
//! wasteful to execute the command requesting the load every single time.
//! Instead, it can be more efficient to cache this value within the
//! information service."
//!
//! N clients poll CPULoad at 1 Hz each for a 30 s (virtual) window; we
//! sweep the TTL and report mean per-query latency, backend executions
//! per second, and the mean age (staleness) of served values. Virtual
//! time makes the run exact: a query's latency is precisely the clock
//! time its answer consumed.

// Bench/example/test harness: panic-on-failure is the error policy here.
#![allow(clippy::unwrap_used)]

use infogram_bench::{banner, fmt_ratio, fmt_secs, manual_world_with_config, table};
use infogram_info::config::ServiceConfig;
use infogram_info::service::QueryOptions;
use infogram_rsl::InfoSelector;
use infogram_sim::Clock;
use std::time::Duration;

fn run(clients: u64, ttl_ms: u64) -> (f64, f64, f64) {
    let config = ServiceConfig::parse(&format!("{ttl_ms} CPULoad /usr/local/bin/cpuload.exe\n"))
        .expect("config");
    let w = manual_world_with_config(7 + clients, &config);
    // N clients at 1 Hz each = N queries/s, evenly interleaved.
    let gap = Duration::from_nanos(1_000_000_000 / clients);
    let total_queries = clients * 30;
    let sel = [InfoSelector::Keyword("CPULoad".to_string())];
    let opts = QueryOptions::default();

    let mut latency_sum = 0.0;
    let mut age_sum = 0.0;
    let start = w.clock.now();
    for _ in 0..total_queries {
        let t0 = w.clock.now();
        let records = w.info.answer(&sel, &opts).expect("query");
        latency_sum += w.clock.now().since(t0).as_secs_f64();
        age_sum += records[0].attributes[0].age_secs.unwrap_or(0.0);
        w.clock.advance(gap);
    }
    let elapsed = w.clock.now().since(start).as_secs_f64().max(1e-9);
    let execs = w.info.lookup("CPULoad").unwrap().execution_count();
    (
        latency_sum / total_queries as f64,
        execs as f64 / elapsed,
        age_sum / total_queries as f64,
    )
}

fn main() {
    banner(
        "E5",
        "cache scaling — N clients polling CPULoad (§5.1)",
        "without the cache (TTL 0) backend load grows linearly with clients; \
         with a TTL it is capped at ~1/TTL regardless of N, at the price of staleness",
    );

    let mut rows = Vec::new();
    let mut baseline_latency = std::collections::HashMap::new();
    for clients in [1u64, 10, 100, 1000] {
        for ttl_ms in [0u64, 100, 1000, 10_000] {
            let (mean_latency, execs_per_sec, mean_age) = run(clients, ttl_ms);
            if ttl_ms == 0 {
                baseline_latency.insert(clients, mean_latency);
            }
            let speedup = baseline_latency
                .get(&clients)
                .map(|b| fmt_ratio(b / mean_latency.max(1e-12)))
                .unwrap_or_default();
            rows.push(vec![
                clients.to_string(),
                if ttl_ms == 0 {
                    "0 (no cache)".to_string()
                } else {
                    format!("{ttl_ms}")
                },
                fmt_secs(mean_latency),
                format!("{execs_per_sec:.1}"),
                fmt_secs(mean_age),
                speedup,
            ]);
        }
    }
    table(
        &[
            "clients",
            "TTL(ms)",
            "mean-latency",
            "backend-execs/s",
            "mean-staleness",
            "latency-win",
        ],
        &rows,
    );
    println!(
        "\nreading: the §5.1 claim holds — with many clients, a cached value serves\n\
         queries orders of magnitude faster while the backend runs the command once\n\
         per TTL window instead of once per request."
    );
}
