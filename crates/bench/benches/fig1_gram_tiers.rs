//! Figure 1 — the GRAM three-tier architecture, measured.
//!
//! The paper's Figure 1 is a diagram (client tier → gatekeeper/job
//! manager middle tier → local-execution backend tier). We regenerate it
//! as numbers: where a job's wall time goes as it crosses the tiers —
//! gatekeeper (connect: GSI handshake + gridmap authorization), job
//! manager (submit: RSL parse, WAL, backend dispatch), and backend
//! (run: the job's own execution), plus status-poll cost.

// Bench/example/test harness: panic-on-failure is the error policy here.
#![allow(clippy::unwrap_used)]

use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram_bench::{banner, fmt_secs, table};
use infogram_client::GramClient;
use infogram_obs::Summary;
use std::time::{Duration, Instant};

fn main() {
    banner(
        "F1",
        "GRAM tier latency breakdown (Figure 1)",
        "the backend tier (job runtime) dominates; gatekeeper cost is per-connection \
         (handshake), job-manager cost per-request — the same shape as C-GRAM",
    );

    let sandbox = Sandbox::start_with(SandboxConfig {
        with_baseline: true,
        ..Default::default()
    });
    let gram_addr = sandbox.baseline_gram.as_ref().unwrap().addr().to_string();

    const JOBS: usize = 40;
    let mut t_connect = Vec::new();
    let mut t_submit = Vec::new();
    let mut t_status = Vec::new();
    let mut t_run = Vec::new();

    for _ in 0..JOBS {
        // Client tier → gatekeeper: connection + mutual auth + gridmap.
        let t0 = Instant::now();
        let mut client = GramClient::connect(
            &sandbox.net,
            &gram_addr,
            &sandbox.user,
            &sandbox.roots,
            sandbox.clock.clone(),
        )
        .expect("connect");
        t_connect.push(t0.elapsed());

        // Middle tier: job manager startup (submit → handle).
        let t1 = Instant::now();
        let handle = client
            .submit("(executable=simwork)(arguments=20)", false)
            .expect("submit");
        t_submit.push(t1.elapsed());

        // One status poll (middle tier request handling).
        let t2 = Instant::now();
        client.status(&handle).expect("status");
        t_status.push(t2.elapsed());

        // Backend tier: the job's own run time.
        let t3 = Instant::now();
        let (state, _, _) = client
            .wait_terminal(&handle, Duration::from_millis(2), Duration::from_secs(10))
            .expect("terminal");
        assert_eq!(state.to_string(), "DONE");
        t_run.push(t3.elapsed());
    }

    let mut rows = Vec::new();
    for (tier, what, samples) in [
        (
            "gatekeeper",
            "connect + GSI handshake + gridmap",
            &t_connect,
        ),
        ("job manager", "submit (parse, WAL, dispatch)", &t_submit),
        ("job manager", "status poll", &t_status),
        ("backend", "job execution (20 ms simwork)", &t_run),
    ] {
        let s = Summary::from_durations(samples);
        rows.push(vec![
            tier.to_string(),
            what.to_string(),
            fmt_secs(s.mean()),
            fmt_secs(s.median()),
            fmt_secs(s.quantile(0.95)),
        ]);
    }
    table(&["tier", "operation", "mean", "p50", "p95"], &rows);
    println!(
        "\nreading: per-job overhead (gatekeeper + job manager) is small against the\n\
         backend runtime, and the gatekeeper's share is paid once per *connection* —\n\
         which is why the one-connection InfoGram saves exactly that column (Fig 4)."
    );
    sandbox.shutdown();
}
