//! Figure 4 — "The new InfoGram service reduces the number of protocols
//! and components in a Grid": the head-to-head comparison.
//!
//! The same closed-loop mixed workload runs against both worlds while we
//! sweep the information fraction `p_info` from all-jobs to all-info.
//! The paper's claim is architectural; the table shows where it becomes
//! quantitative — connection count, handshake work, and bytes on the
//! wire — and that it costs nothing in latency or throughput.

use infogram_bench::mixed::{run_baseline, run_unified};
use infogram_bench::{banner, fmt_ratio, fmt_secs, table};

fn main() {
    banner(
        "F4",
        "unified InfoGram vs separate GRAM+MDS (Figure 4 vs Figure 2)",
        "unified halves connections and handshakes at every mix; latency and \
         throughput are at parity or better; the win is flat across p_info",
    );

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 40;

    println!("\n-- workload sweep: {CLIENTS} clients × {REQUESTS} requests each --");
    let mut rows = Vec::new();
    for p_info in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let seed = 9000 + (p_info * 100.0) as u64;
        let base = run_baseline(CLIENTS, REQUESTS, p_info, seed);
        let uni = run_unified(CLIENTS, REQUESTS, p_info, seed);
        rows.push(vec![
            format!("{:.0}%", p_info * 100.0),
            base.connections.to_string(),
            uni.connections.to_string(),
            base.messages.to_string(),
            uni.messages.to_string(),
            fmt_secs(base.latency.mean()),
            fmt_secs(uni.latency.mean()),
            fmt_ratio(base.connections as f64 / uni.connections as f64),
            fmt_ratio(base.bytes as f64 / uni.bytes as f64),
        ]);
    }
    table(
        &[
            "p_info",
            "conns(base)",
            "conns(uni)",
            "msgs(base)",
            "msgs(uni)",
            "lat(base)",
            "lat(uni)",
            "conn-win",
            "bytes-win",
        ],
        &rows,
    );

    println!("\n-- structural comparison (the figures themselves) --");
    table(
        &["property", "Figure 2 (separate)", "Figure 4 (InfoGram)"],
        &[
            vec![
                "services per resource".into(),
                "2 (GRAM, GRIS)".into(),
                "1".into(),
            ],
            vec![
                "wire protocols".into(),
                "2 (GRAMP, LDAP)".into(),
                "1 (xRSL/GRAMP)".into(),
            ],
            vec!["listening ports".into(), "2".into(), "1".into()],
            vec!["connections per client".into(), "2".into(), "1".into()],
            vec!["GSI handshakes per client".into(), "2".into(), "1".into()],
            vec![
                "client code paths".into(),
                "2 (RSL + LDAP filters)".into(),
                "1 (xRSL)".into(),
            ],
        ],
    );
    println!(
        "\nreading: the paper's thesis, quantified — the unified service does the\n\
         same work with half the connections and handshakes at every job/info mix,\n\
         and the structural table is Figure 2 vs Figure 4 in rows instead of boxes."
    );
}
