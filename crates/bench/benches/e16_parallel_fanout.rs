//! E16 — the scatter-gather query engine: `(info=all)` over K slow
//! keywords should cost roughly one provider execution, not K of them,
//! because blocking fetches fan out across the scoped pool
//! (`infogram_sim::par`). The cache-hit path is the other half of the
//! bargain: with pre-interned per-keyword metric handles and
//! `Arc`-shared snapshots it does no name formatting and no attribute
//! deep-copies per query.
//!
//! Part 1 (real threads, real clock): K sleeping providers, TTL 0, one
//! `(info=all)` per round. Sequential cost would be K × 25 ms; the
//! fan-out pool should keep it near 1 × 25 ms for K ≤ 8.
//!
//! Part 2 (virtual clock): warm Table 1 service, pure cache hits —
//! ns/query throughput of the allocation-free hot path.
//!
//! Env knobs: `E16_QUICK=1` shrinks the round counts for smoke runs;
//! `E16_JSON=<path>` writes a machine-readable result with a `pass`
//! flag (used by `scripts/bench_smoke.sh`).

use infogram_bench::{banner, fmt_ratio, fmt_secs, manual_world, table};
use infogram_info::provider::FnProvider;
use infogram_info::quality::DegradationFn;
use infogram_info::service::{InformationService, QueryOptions};
use infogram_info::SystemInformation;
use infogram_obs::MetricSet;
use infogram_rsl::InfoSelector;
use infogram_sim::SystemClock;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Provider sleep per execution in Part 1.
const PROVIDER_MS: u64 = 25;

/// A service with `k` slow keywords (each provider sleeps, TTL 0 so
/// every `(info=all)` re-executes all of them).
fn slow_service(k: usize) -> Arc<InformationService> {
    let clock = SystemClock::shared();
    let service = InformationService::new("e16.grid", clock.clone(), MetricSet::new());
    for i in 0..k {
        service.register(SystemInformation::new(
            Box::new(FnProvider::new(&format!("Slow{i:02}"), move || {
                std::thread::sleep(Duration::from_millis(PROVIDER_MS));
                Ok(vec![("v".to_string(), i.to_string())])
            })),
            clock.clone(),
            Duration::ZERO,
            DegradationFn::default(),
        ));
    }
    service
}

/// Mean wall-clock seconds of one `(info=all)` against `k` slow
/// keywords, over `rounds` rounds.
fn fan_out_cost(k: usize, rounds: usize) -> f64 {
    let service = slow_service(k);
    let opts = QueryOptions::default();
    // One warm-up round so thread-spawn jitter is off the books.
    service.answer(&[InfoSelector::All], &opts).expect("warmup");
    let start = Instant::now();
    for _ in 0..rounds {
        let records = service.answer(&[InfoSelector::All], &opts).expect("all");
        assert_eq!(records.len(), k);
    }
    start.elapsed().as_secs_f64() / rounds as f64
}

/// Cache-hit throughput: queries per second against a warm Table 1
/// service on a virtual clock (time never advances, so every query is a
/// pure hit through the interned-handle hot path).
fn hit_path_ns(iters: u64) -> f64 {
    let world = manual_world(16);
    let opts = QueryOptions::default();
    world
        .info
        .answer(&[InfoSelector::All], &opts)
        .expect("warm");
    let selectors = [InfoSelector::Keyword("Memory".to_string())];
    let start = Instant::now();
    for _ in 0..iters {
        let records = world.info.answer(&selectors, &opts).expect("hit");
        assert_eq!(records.len(), 1);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let quick = std::env::var("E16_QUICK").is_ok_and(|v| v == "1");
    let (rounds, hit_iters) = if quick { (3, 20_000) } else { (10, 200_000) };

    banner(
        "E16",
        "scatter-gather fan-out + allocation-free hit path",
        "(info=all) over K slow keywords costs ~1 provider execution for \
         K<=8 (sequential would cost K); warm cache hits run at \
         sub-microsecond-ish rates with zero per-query metric-name \
         formatting",
    );

    println!(
        "\n-- fan-out: (info=all), K keywords x {PROVIDER_MS} ms provider, \
         TTL 0, {rounds} rounds --"
    );
    let single = fan_out_cost(1, rounds);
    let mut rows = vec![vec![
        "1".to_string(),
        fmt_secs(single),
        fmt_secs(single),
        fmt_ratio(1.0),
    ]];
    let mut k4_ratio = f64::NAN;
    let mut k8_ratio = f64::NAN;
    for k in [2usize, 4, 8] {
        let cost = fan_out_cost(k, rounds);
        let ratio = cost / single;
        if k == 4 {
            k4_ratio = ratio;
        }
        if k == 8 {
            k8_ratio = ratio;
        }
        rows.push(vec![
            k.to_string(),
            fmt_secs(cost),
            fmt_secs(single * k as f64),
            fmt_ratio(ratio),
        ]);
    }
    table(
        &["K", "(info=all) cost", "sequential cost", "vs one provider"],
        &rows,
    );

    println!("\n-- hot path: warm Table 1 hits, virtual clock, {hit_iters} queries --");
    let ns = hit_path_ns(hit_iters);
    table(
        &["ns/query", "queries/s"],
        &[vec![format!("{ns:.0}"), format!("{:.0}", 1e9 / ns)]],
    );

    // Acceptance: K=4 within 1.5x of one provider's cost (the pool holds
    // 8 slots, so K=8 should also stay close; allow scheduler slack).
    let pass = k4_ratio <= 1.5 && k8_ratio <= 2.0;
    println!(
        "\nreading: fan-out keeps (info=all) near one provider's cost \
         (K=4 at {}, K=8 at {}); pass={pass}",
        fmt_ratio(k4_ratio),
        fmt_ratio(k8_ratio),
    );

    if let Ok(path) = std::env::var("E16_JSON") {
        let json = format!(
            "{{\n  \"experiment\": \"e16_parallel_fanout\",\n  \
             \"provider_ms\": {PROVIDER_MS},\n  \
             \"rounds\": {rounds},\n  \
             \"single_keyword_secs\": {single:.6},\n  \
             \"k4_vs_single\": {k4_ratio:.3},\n  \
             \"k8_vs_single\": {k8_ratio:.3},\n  \
             \"hit_path_ns_per_query\": {ns:.1},\n  \
             \"pass\": {pass}\n}}\n"
        );
        std::fs::write(&path, json).expect("write E16_JSON");
        println!("wrote {path}");
    }
    assert!(
        pass,
        "fan-out acceptance failed: K=4 {k4_ratio:.2}x, K=8 {k8_ratio:.2}x"
    );
}
