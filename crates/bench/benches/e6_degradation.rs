//! E6 — information degradation and the quality threshold (§5.2, §6.4,
//! §6.6).
//!
//! The CPULoad value drifts (AR(1) process), so a cached copy loses
//! accuracy with age. We attach degradation functions, sweep the xRSL
//! `quality` threshold, and measure the trade-off the paper predicts:
//! higher thresholds buy lower true-value error at the cost of more
//! refreshes. A second table compares degradation *shapes* at one
//! threshold.

use infogram_bench::{banner, fmt_secs, manual_world_with_config, table};
use infogram_info::config::ServiceConfig;
use infogram_info::entry::SystemInformation;
use infogram_info::provider::{RuntimeFacet, RuntimeProvider};
use infogram_info::quality::DegradationFn;
use infogram_info::service::QueryOptions;
use infogram_rsl::InfoSelector;
use std::sync::Arc;
use std::time::Duration;

struct Outcome {
    refreshes: u64,
    mean_quality: f64,
    mean_abs_error: f64,
}

/// Query the drifting load once per second for 120 s (virtual) under a
/// degradation function and quality threshold.
fn run(degradation: DegradationFn, threshold: Option<f64>) -> Outcome {
    // A long TTL so the *quality* machinery, not TTL expiry, drives
    // refreshes.
    let config = ServiceConfig::parse("600000 Unused true\n").expect("config");
    let w = manual_world_with_config(99, &config);
    let si = SystemInformation::new(
        Box::new(RuntimeProvider::new(
            "CPULoad",
            Arc::clone(&w.host),
            RuntimeFacet::Load,
        )),
        w.clock.clone(),
        Duration::from_secs(600),
        degradation,
    );
    w.info.register(Arc::clone(&si));

    let sel = [InfoSelector::Keyword("CPULoad".to_string())];
    let opts = QueryOptions {
        quality_threshold: threshold,
        ..Default::default()
    };
    let mut quality_sum = 0.0;
    let mut err_sum = 0.0;
    let queries = 120u64;
    for _ in 0..queries {
        let records = w.info.answer(&sel, &opts).expect("query");
        let served: f64 = records[0]
            .get("load")
            .expect("load attr")
            .value
            .parse()
            .expect("parses");
        let truth = w.host.cpu.current();
        quality_sum += records[0].attributes[0].quality.unwrap_or(0.0);
        err_sum += (served - truth).abs();
        w.clock.advance(Duration::from_secs(1));
    }
    Outcome {
        refreshes: si.execution_count(),
        mean_quality: quality_sum / queries as f64,
        mean_abs_error: err_sum / queries as f64,
    }
}

fn main() {
    banner(
        "E6",
        "information degradation + quality threshold (§5.2/§6.4/§6.6)",
        "refresh rate and accuracy both rise monotonically with the quality \
         threshold; binary degradation is all-or-nothing, linear/exponential trade smoothly",
    );

    println!("\n-- threshold sweep (linear degradation, 60 s lifetime) --");
    let mut rows = Vec::new();
    for threshold in [
        None,
        Some(10.0),
        Some(25.0),
        Some(50.0),
        Some(75.0),
        Some(90.0),
    ] {
        let out = run(
            DegradationFn::Linear {
                lifetime: Duration::from_secs(60),
            },
            threshold,
        );
        rows.push(vec![
            threshold
                .map(|t| format!("{t:.0}%"))
                .unwrap_or_else(|| "(none)".to_string()),
            out.refreshes.to_string(),
            format!("{:.3}", out.mean_quality),
            format!("{:.4}", out.mean_abs_error),
        ]);
    }
    table(
        &[
            "quality-threshold",
            "refreshes/120q",
            "mean-served-quality",
            "mean-|error|",
        ],
        &rows,
    );

    println!("\n-- degradation shapes at threshold 50% --");
    let mut rows = Vec::new();
    for (name, d) in [
        (
            "binary(60s)",
            DegradationFn::Binary {
                lifetime: Duration::from_secs(60),
            },
        ),
        (
            "linear(60s)",
            DegradationFn::Linear {
                lifetime: Duration::from_secs(60),
            },
        ),
        (
            "exponential(30s)",
            DegradationFn::Exponential {
                half_life: Duration::from_secs(30),
            },
        ),
        (
            "step(20s:0.7,40s:0.3)",
            DegradationFn::Step {
                steps: vec![
                    (Duration::from_secs(20), 0.7),
                    (Duration::from_secs(40), 0.3),
                ],
            },
        ),
    ] {
        let out = run(d, Some(50.0));
        rows.push(vec![
            name.to_string(),
            out.refreshes.to_string(),
            format!("{:.3}", out.mean_quality),
            format!("{:.4}", out.mean_abs_error),
        ]);
    }
    table(
        &[
            "degradation",
            "refreshes/120q",
            "mean-served-quality",
            "mean-|error|",
        ],
        &rows,
    );
    println!(
        "\nreading: with no threshold the 10-minute TTL alone serves a {}-old value at\n\
         the end of the window; quality-driven refresh keeps the served copy close to\n\
         the drifting truth, paying one provider execution per quality expiry.",
        fmt_secs(120.0)
    );
}
