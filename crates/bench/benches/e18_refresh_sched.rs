//! E18 — the adaptive refresh scheduler against TTL-expiry polling:
//! with demand concentrated on a few hot keywords, the scheduler must
//! deliver a near-perfect cache-hit rate at steady load (prefetching
//! just before expiry) while executing *strictly fewer* provider
//! invocations than the naive baseline that re-executes every keyword
//! each TTL regardless of demand.
//!
//! Both arms run the same seeded world on the virtual clock with the
//! same query schedule; only the refresh policy differs. The scheduler
//! arm replays itself from the seed to prove determinism.
//!
//! Env knobs: `E18_QUICK=1` shrinks the round count for smoke runs;
//! `E18_JSON=<path>` writes a machine-readable result with a `pass`
//! flag (used by `scripts/bench_smoke.sh`).

use infogram_bench::{banner, manual_world_with_config, table};
use infogram_info::config::{SchedConfig, ServiceConfig};
use infogram_info::sched::RefreshScheduler;
use infogram_info::service::QueryOptions;
use infogram_rsl::InfoSelector;
use infogram_sim::clock::Clock;
use std::time::{Duration, Instant};

const SEED: u64 = 0xe18_5ced;

/// Virtual time between query rounds.
const STEP: Duration = Duration::from_millis(10);

/// Two hot keywords (queried every round), one warm (every 5th round),
/// two cold (never queried). TTLs in milliseconds, Table 1 format.
const CONFIG: &str = "100 Hot1 date -u\n\
                      100 Hot2 date -u\n\
                      200 Warm date -u\n\
                      100 Cold1 date -u\n\
                      200 Cold2 date -u\n";

const QUERIED: [&str; 3] = ["Hot1", "Hot2", "Warm"];

#[derive(Debug, Default, PartialEq, Clone)]
struct Tally {
    queries: u64,
    hits: u64,
    misses: u64,
    executions: u64,
    prefetches: u64,
    skipped: u64,
}

fn selectors() -> Vec<InfoSelector> {
    QUERIED
        .iter()
        .map(|k| InfoSelector::Keyword(k.to_string()))
        .collect()
}

fn query_round(
    world: &infogram_bench::ManualWorld,
    sels: &[InfoSelector],
    round: usize,
    opts: &QueryOptions,
) -> u64 {
    let mut queries = 0;
    for (i, sel) in sels.iter().enumerate() {
        // Hot1/Hot2 every round, Warm every 5th.
        if i == 2 && !round.is_multiple_of(5) {
            continue;
        }
        world
            .info
            .answer(std::slice::from_ref(sel), opts)
            .expect("query");
        queries += 1;
    }
    queries
}

fn hits_and_misses(world: &infogram_bench::ManualWorld) -> (u64, u64) {
    QUERIED
        .iter()
        .filter_map(|k| world.info.keyword_metrics(k))
        .fold((0, 0), |(h, m), km| {
            (h + km.hits.get(), m + km.misses.get())
        })
}

fn total_executions(world: &infogram_bench::ManualWorld) -> u64 {
    world
        .info
        .entries()
        .iter()
        .map(|e| e.execution_count())
        .sum()
}

/// Scheduler arm: one central refresh plan, queries ride the cache.
fn run_scheduled(rounds: usize) -> (Tally, f64) {
    let config = ServiceConfig::parse(CONFIG).expect("config");
    let world = manual_world_with_config(SEED, &config);
    let metrics = world.info.metrics();
    let sched = RefreshScheduler::new(world.clock.clone(), SchedConfig::default(), metrics.clone());
    sched.watch_service(&world.info);
    sched.tick(); // seed every cache before traffic starts

    let opts = QueryOptions::default();
    let sels = selectors();
    let mut tally = Tally::default();
    let start = Instant::now();
    for round in 0..rounds {
        world.clock.advance(STEP);
        while sched
            .next_deadline()
            .is_some_and(|d| d <= world.clock.now())
        {
            sched.tick();
        }
        tally.queries += query_round(&world, &sels, round, &opts);
    }
    let wall = start.elapsed().as_secs_f64();
    (tally.hits, tally.misses) = hits_and_misses(&world);
    tally.executions = total_executions(&world);
    tally.prefetches = metrics.counter_value("sched.prefetches");
    tally.skipped = metrics.counter_value("sched.skipped");
    (tally, wall)
}

/// Polling arm: the naive alternative — re-execute every keyword each
/// TTL, demand or not. Same world, same query schedule.
fn run_polling(rounds: usize) -> Tally {
    let config = ServiceConfig::parse(CONFIG).expect("config");
    let world = manual_world_with_config(SEED, &config);
    let entries = world.info.entries();
    // Seed, then poll each keyword on its own TTL boundary.
    for e in &entries {
        e.fetch_supervised(None).expect("seed");
    }
    let mut last = vec![world.clock.now(); entries.len()];

    let opts = QueryOptions::default();
    let sels = selectors();
    let mut tally = Tally::default();
    for round in 0..rounds {
        world.clock.advance(STEP);
        for (i, e) in entries.iter().enumerate() {
            if world.clock.now().since(last[i]) >= e.ttl() {
                e.fetch_supervised(None).expect("poll refresh");
                last[i] = world.clock.now();
            }
        }
        tally.queries += query_round(&world, &sels, round, &opts);
    }
    (tally.hits, tally.misses) = hits_and_misses(&world);
    tally.executions = total_executions(&world);
    tally
}

fn main() {
    let quick = std::env::var("E18_QUICK").is_ok_and(|v| v == "1");
    let rounds = if quick { 600 } else { 3000 };

    banner(
        "E18",
        "adaptive refresh scheduling vs TTL-expiry polling",
        "steady traffic on prefetched keywords hits >=99.9% of the time, \
         with strictly fewer provider executions than polling every \
         keyword each TTL; cold keywords are skipped, not refreshed; \
         the run replays byte-identically from its seed",
    );

    let (sched, wall) = run_scheduled(rounds);
    let polling = run_polling(rounds);
    let hit_rate = sched.hits as f64 / (sched.hits + sched.misses).max(1) as f64;
    let polling_hit_rate = polling.hits as f64 / (polling.hits + polling.misses).max(1) as f64;
    let qps = sched.queries as f64 / wall;

    println!(
        "\n-- {} rounds x {:?} virtual step, 2 hot + 1 warm + 2 cold keywords, seed {SEED:#x} --",
        rounds, STEP
    );
    table(
        &[
            "arm",
            "queries",
            "hits",
            "misses",
            "hit rate",
            "provider execs",
        ],
        &[
            vec![
                "scheduler".to_string(),
                sched.queries.to_string(),
                sched.hits.to_string(),
                sched.misses.to_string(),
                format!("{hit_rate:.4}"),
                sched.executions.to_string(),
            ],
            vec![
                "ttl-polling".to_string(),
                polling.queries.to_string(),
                polling.hits.to_string(),
                polling.misses.to_string(),
                format!("{polling_hit_rate:.4}"),
                polling.executions.to_string(),
            ],
        ],
    );
    table(
        &["prefetches", "cold skips", "execs saved", "queries/s"],
        &[vec![
            sched.prefetches.to_string(),
            sched.skipped.to_string(),
            (polling.executions.saturating_sub(sched.executions)).to_string(),
            format!("{qps:.0}"),
        ]],
    );

    // Replay: the same seed must reproduce the exact same tallies.
    let (replay, _) = run_scheduled(rounds);
    let deterministic = replay == sched;

    let pass = hit_rate >= 0.999
        && sched.executions < polling.executions
        && sched.skipped > 0
        && deterministic;
    println!(
        "\nreading: {:.2}% hit rate with {} provider executions vs {} under \
         TTL polling ({} cold skips, {} prefetches); \
         deterministic replay={deterministic}; pass={pass}",
        hit_rate * 100.0,
        sched.executions,
        polling.executions,
        sched.skipped,
        sched.prefetches,
    );

    if let Ok(path) = std::env::var("E18_JSON") {
        let json = format!(
            "{{\n  \"experiment\": \"e18_refresh_sched\",\n  \
             \"seed\": {SEED},\n  \
             \"rounds\": {rounds},\n  \
             \"queries\": {},\n  \
             \"hits\": {},\n  \
             \"misses\": {},\n  \
             \"hit_rate\": {hit_rate:.4},\n  \
             \"executions\": {},\n  \
             \"polling_executions\": {},\n  \
             \"prefetches\": {},\n  \
             \"cold_skips\": {},\n  \
             \"queries_per_sec\": {qps:.0},\n  \
             \"deterministic_replay\": {deterministic},\n  \
             \"pass\": {pass}\n}}\n",
            sched.queries,
            sched.hits,
            sched.misses,
            sched.executions,
            polling.executions,
            sched.prefetches,
            sched.skipped,
        );
        std::fs::write(&path, json).expect("write E18_JSON");
        println!("wrote {path}");
    }
    assert!(
        pass,
        "refresh-sched acceptance failed: hit rate {hit_rate:.4}, \
         executions {} vs polling {}, skips {}, deterministic {deterministic}",
        sched.executions, polling.executions, sched.skipped
    );
}
