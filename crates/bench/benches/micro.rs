//! Criterion micro-benchmarks for the hot paths: RSL parsing/printing,
//! xRSL extraction, record rendering, wire encoding, and certificate
//! chain verification.

// Bench/example/test harness: panic-on-failure is the error policy here.
// (criterion_group! expands to undocumented pub fns, hence missing_docs.)
#![allow(clippy::unwrap_used, missing_docs)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use infogram_gsi::{verify_chain, CertificateAuthority, Dn};
use infogram_proto::message::{Reply, Request};
use infogram_proto::record::InfoRecord;
use infogram_proto::render;
use infogram_rsl::{parse, OutputFormat, XrslRequest};
use infogram_sim::{SimTime, SplitMix64};
use std::hint::black_box;
use std::time::Duration;

const JOB_RSL: &str = "&(executable=/bin/simwork)(arguments=100 0)(count=4)(maxtime=5)\
     (environment=(HOME /home/gregor)(LANG C))(jobtype=batch)(queue=pbs)\
     (requirements=(os linux)(arch x86))";
const INFO_RSL: &str =
    "(info=memory)(info=cpu)(response=cached)(quality=75)(performance=true)(format=xml)";

fn bench_rsl(c: &mut Criterion) {
    c.bench_function("rsl/parse_job", |b| {
        b.iter(|| parse(black_box(JOB_RSL)).unwrap())
    });
    c.bench_function("rsl/parse_info", |b| {
        b.iter(|| parse(black_box(INFO_RSL)).unwrap())
    });
    let spec = parse(JOB_RSL).unwrap();
    c.bench_function("rsl/print", |b| b.iter(|| black_box(&spec).to_string()));
    c.bench_function("rsl/xrsl_extract", |b| {
        b.iter(|| XrslRequest::from_text(black_box(JOB_RSL)).unwrap())
    });
}

fn sample_records(n: usize) -> Vec<InfoRecord> {
    (0..n)
        .map(|i| {
            let mut r = InfoRecord::new("Memory", &format!("node{i:03}.grid"));
            r.push("total", "4294967296").quality = Some(0.9);
            r.push("used", "858993459").quality = Some(0.9);
            r.push("free", "3435973837").quality = Some(0.9);
            r
        })
        .collect()
}

fn bench_render(c: &mut Criterion) {
    let records = sample_records(100);
    c.bench_function("render/ldif_100", |b| {
        b.iter(|| render::render(black_box(&records), OutputFormat::Ldif))
    });
    c.bench_function("render/xml_100", |b| {
        b.iter(|| render::render(black_box(&records), OutputFormat::Xml))
    });
    let ldif = render::render(&records, OutputFormat::Ldif);
    c.bench_function("render/ldif_parse_100", |b| {
        b.iter(|| render::ldif::parse(black_box(&ldif)))
    });
}

fn bench_wire(c: &mut Criterion) {
    let req = Request::Submit {
        rsl: JOB_RSL.to_string(),
        callback: true,
    };
    let encoded = req.encode();
    c.bench_function("wire/request_encode", |b| {
        b.iter(|| black_box(&req).encode())
    });
    c.bench_function("wire/request_decode", |b| {
        b.iter(|| Request::decode(black_box(&encoded)).unwrap())
    });
    let reply = Reply::InfoResult {
        body: render::render(&sample_records(10), OutputFormat::Ldif),
        record_count: 10,
    };
    let reply_enc = reply.encode();
    c.bench_function("wire/reply_decode", |b| {
        b.iter(|| Reply::decode(black_box(&reply_enc)).unwrap())
    });
}

fn bench_gsi(c: &mut Criterion) {
    let mut rng = SplitMix64::new(11);
    let ca = CertificateAuthority::new_root(
        &Dn::user("Grid", "CA", "Root"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(365 * 86_400),
    );
    let user = ca.issue(
        &Dn::user("Grid", "ANL", "Bench"),
        &mut rng,
        SimTime::ZERO,
        Duration::from_secs(86_400),
    );
    let proxy = user
        .delegate(&mut rng, SimTime::ZERO, Duration::from_secs(3600), 4)
        .unwrap()
        .delegate(&mut rng, SimTime::ZERO, Duration::from_secs(3600), 4)
        .unwrap();
    let roots = [ca.certificate().clone()];
    c.bench_function("gsi/verify_chain_depth2", |b| {
        b.iter(|| {
            verify_chain(
                black_box(&proxy.chain),
                black_box(&roots),
                SimTime::from_secs(1),
            )
            .unwrap()
        })
    });
    c.bench_function("gsi/delegate", |b| {
        b.iter_batched(
            || SplitMix64::new(12),
            |mut r| {
                user.delegate(&mut r, SimTime::ZERO, Duration::from_secs(3600), 4)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_rsl, bench_render, bench_wire, bench_gsi);
criterion_main!(benches);
