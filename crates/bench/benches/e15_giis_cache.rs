//! E15 (ablation) — the aggregate's caching function (§3): "To increase
//! the scalability of a distributed information service, the MDS provides
//! an information caching function that allows viewing and querying the
//! information about a resource from a cache."
//!
//! A GIIS over M member GRISes, searched once per second of virtual time
//! for two minutes; we sweep the aggregate's member cache TTL and report
//! the pulls it performs versus the worst-case staleness it serves. The
//! TTL=0 row is the ablation: no aggregate caching at all.

use infogram_bench::{banner, fmt_secs, table};
use infogram_mds::filter::Filter;
use infogram_mds::giis::Giis;
use infogram_mds::gris::Gris;
use std::time::Duration;

fn run(members: usize, cache_ttl: Duration) -> (u64, f64) {
    use infogram_host::commands::{ChargeMode, CommandRegistry};
    use infogram_host::machine::{HostConfig, SimulatedHost};
    use infogram_info::config::ServiceConfig;
    use infogram_info::service::InformationService;
    use infogram_obs::MetricSet;
    use infogram_sim::ManualClock;

    // All members share one manual clock so the sweep is deterministic;
    // each gets a distinct hostname so their GIIS subtrees are disjoint.
    let clock = ManualClock::new();
    let giis = Giis::new(clock.clone(), cache_ttl);
    for i in 0..members {
        let host = SimulatedHost::new(
            HostConfig {
                hostname: format!("member{i:02}.grid"),
                seed: 300 + i as u64,
                ..Default::default()
            },
            clock.clone(),
        );
        let registry = CommandRegistry::new(host, ChargeMode::None);
        let info = InformationService::from_config(
            &ServiceConfig::table1(),
            registry,
            clock.clone(),
            MetricSet::new(),
        );
        giis.register(Gris::new(info));
    }

    let filter = Filter::parse("(kw=Memory)").expect("filter");
    let queries = 120u64;
    for _ in 0..queries {
        let found = giis.search_all(&filter);
        assert_eq!(found.len(), members);
        clock.advance(Duration::from_secs(1));
    }
    let worst_staleness = cache_ttl.as_secs_f64();
    (giis.pull_count(), worst_staleness)
}

fn main() {
    banner(
        "E15",
        "GIIS aggregate caching ablation (§3)",
        "pulls drop from one-per-member-per-query (no cache) to \
         one-per-member-per-TTL; the price is up to TTL seconds of staleness",
    );
    let mut rows = Vec::new();
    for members in [2usize, 8] {
        for ttl_s in [0u64, 1, 10, 60] {
            let (pulls, staleness) = run(members, Duration::from_secs(ttl_s));
            let no_cache_pulls = members as u64 * 120;
            rows.push(vec![
                members.to_string(),
                if ttl_s == 0 {
                    "0 (no cache)".to_string()
                } else {
                    format!("{ttl_s}s")
                },
                pulls.to_string(),
                no_cache_pulls.to_string(),
                format!("{:.1}%", 100.0 * pulls as f64 / no_cache_pulls as f64),
                fmt_secs(staleness),
            ]);
        }
    }
    table(
        &[
            "members",
            "cache-TTL",
            "pulls/120q",
            "no-cache pulls",
            "pull-ratio",
            "max-staleness",
        ],
        &rows,
    );
    println!(
        "\nreading: this is the scalability mechanism §3 credits MDS with, isolated:\n\
         a 10 s aggregate cache cuts member traffic by ~10x at one query per second,\n\
         and the cost is bounded staleness — the same freshness/load dial as E5, one\n\
         level up the hierarchy."
    );
}
