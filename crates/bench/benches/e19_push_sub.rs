//! E19 — push-subscription fan-out at scale: 100 000 standing
//! subscriptions spread across 64 keywords, driven through rounds of
//! record updates. The hub must deliver every version to every
//! subscriber exactly once, in order, with no gaps (the "missed
//! update" ledger), and the p99 per-subscriber fan-out cost must stay
//! bounded — O(subscribers-of-keyword), not O(all subscriptions).
//!
//! Every frame is decoded off the real wire encoding, so the measured
//! path includes delta encode + frame build + decode, exactly what a
//! connection outbox would carry.
//!
//! Env knobs: `E19_QUICK=1` shrinks the population for smoke runs;
//! `E19_JSON=<path>` writes a machine-readable result with a `pass`
//! flag (used by `scripts/bench_smoke.sh`).

use infogram_bench::{banner, table};
use infogram_info::sub::{SinkClosed, SubSink, SubscriptionHub};
use infogram_proto::message::Reply;
use infogram_proto::record::InfoRecord;
use infogram_sim::metrics::MetricSet;
use infogram_sim::ManualClock;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

const KEYWORDS: usize = 64;
const ROUNDS: u64 = 20;
const HOST: &str = "bench.grid.example.org";

/// A subscriber endpoint that decodes every frame it is handed and
/// records the delta versions, exactly as a client applying the stream
/// would. Never blocks, never fails — the bench measures the hub, not
/// a slow consumer.
struct CountingSink {
    versions: Mutex<Vec<u64>>,
}

impl CountingSink {
    fn new() -> Arc<Self> {
        Arc::new(CountingSink {
            versions: Mutex::new(Vec::new()),
        })
    }
}

impl SubSink for CountingSink {
    fn deliver(&self, frame: Vec<u8>) -> Result<(), SinkClosed> {
        let reply = Reply::decode(&frame).expect("wire frame decodes");
        if let Reply::Update { deltas, .. } = reply {
            let mut seen = self.versions.lock();
            for d in &deltas {
                seen.push(d.version);
            }
        }
        Ok(())
    }

    fn close(&self, _frame: Vec<u8>) {}
}

fn keyword(i: usize) -> String {
    format!("kw{i:02}")
}

fn record(kw: &str, round: u64) -> InfoRecord {
    let mut rec = InfoRecord::new(kw, HOST);
    rec.push("value", &format!("round-{round}"));
    rec
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let quick = std::env::var("E19_QUICK").is_ok_and(|v| v == "1");
    let population: usize = if quick { 10_000 } else { 100_000 };

    banner(
        "E19",
        "push-subscription fan-out at scale",
        "100k standing subscriptions over 64 keywords: every subscriber \
         receives every version of its keyword exactly once, in order, \
         with zero missed updates; fan-out touches only the keyword's \
         own subscribers, keeping p99 per-subscriber delivery under 100us",
    );

    let clock = ManualClock::new();
    let hub = SubscriptionHub::new(clock, HOST, MetricSet::new());

    // --- enrolment: `population` sinks, round-robin across keywords ---
    let mut sinks: Vec<Arc<CountingSink>> = Vec::with_capacity(population);
    let setup = Instant::now();
    for i in 0..population {
        let sink = CountingSink::new();
        hub.subscribe(
            std::slice::from_ref(&keyword(i % KEYWORDS)),
            Arc::clone(&sink) as Arc<dyn SubSink>,
        );
        sinks.push(sink);
    }
    let setup_secs = setup.elapsed().as_secs_f64();
    assert_eq!(hub.active(), population);
    let per_keyword = population / KEYWORDS;

    // --- fan-out: ROUNDS updates on every keyword, timed per notify ---
    let mut notify_us: Vec<f64> = Vec::with_capacity(KEYWORDS * ROUNDS as usize);
    let drive = Instant::now();
    for round in 1..=ROUNDS {
        for k in 0..KEYWORDS {
            let kw = keyword(k);
            let t = Instant::now();
            hub.notify_record(&kw, record(&kw, round));
            notify_us.push(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    let drive_secs = drive.elapsed().as_secs_f64();

    // --- the missed-update ledger: exactly-once, in-order, no gaps ---
    let mut gaps = 0usize;
    let mut short = 0usize;
    let mut delivered = 0u64;
    for sink in &sinks {
        let seen = sink.versions.lock();
        delivered += seen.len() as u64;
        if seen.len() as u64 != ROUNDS {
            short += 1;
            continue;
        }
        if seen.iter().enumerate().any(|(i, v)| *v != i as u64 + 1) {
            gaps += 1;
        }
    }
    let expected = population as u64 * ROUNDS;

    notify_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p50 = percentile(&notify_us, 0.50);
    let p99 = percentile(&notify_us, 0.99);
    let p99_per_sub = p99 / per_keyword as f64;
    let throughput = delivered as f64 / drive_secs;

    println!(
        "\n-- {population} subscriptions, {KEYWORDS} keywords ({per_keyword}/keyword), \
         {ROUNDS} rounds --"
    );
    table(
        &[
            "deliveries",
            "expected",
            "gapped sinks",
            "short sinks",
            "deliveries/s",
        ],
        &[vec![
            delivered.to_string(),
            expected.to_string(),
            gaps.to_string(),
            short.to_string(),
            format!("{throughput:.0}"),
        ]],
    );
    table(
        &[
            "subscribe total (s)",
            "notify p50 (us)",
            "notify p99 (us)",
            "p99 per subscriber (us)",
        ],
        &[vec![
            format!("{setup_secs:.2}"),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
            format!("{p99_per_sub:.2}"),
        ]],
    );

    let pass = delivered == expected && gaps == 0 && short == 0 && p99_per_sub < 100.0;
    println!(
        "\nreading: {delivered}/{expected} deliveries, {gaps} gapped and {short} short \
         subscribers (zero missed updates), p99 fan-out {p99:.0}us for {per_keyword} \
         subscribers ({p99_per_sub:.2}us each); pass={pass}"
    );

    if let Ok(path) = std::env::var("E19_JSON") {
        let json = format!(
            "{{\n  \"experiment\": \"e19_push_sub\",\n  \
             \"population\": {population},\n  \
             \"keywords\": {KEYWORDS},\n  \
             \"rounds\": {ROUNDS},\n  \
             \"deliveries\": {delivered},\n  \
             \"expected\": {expected},\n  \
             \"gapped_sinks\": {gaps},\n  \
             \"short_sinks\": {short},\n  \
             \"deliveries_per_sec\": {throughput:.0},\n  \
             \"notify_p50_us\": {p50:.1},\n  \
             \"notify_p99_us\": {p99:.1},\n  \
             \"p99_per_subscriber_us\": {p99_per_sub:.3},\n  \
             \"pass\": {pass}\n}}\n"
        );
        std::fs::write(&path, json).expect("write E19_JSON");
        println!("wrote {path}");
    }
    assert!(
        pass,
        "push-sub acceptance failed: {delivered}/{expected} deliveries, \
         {gaps} gapped, {short} short, p99/subscriber {p99_per_sub:.2}us"
    );
}
