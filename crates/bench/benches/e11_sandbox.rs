//! E11 — untrusted jobs in a trusted environment (§5.5, §7).
//!
//! Two tables:
//! 1. **Enforcement matrix** — hostile jarlets under the restrictive
//!    policy, in both execution modes: everything must be blocked; only
//!    in-process violations contaminate the host.
//! 2. **Isolation overhead** — the cost of the "separate JVM" mode as a
//!    function of program length (per-op crossing cost), the trade-off an
//!    administrator weighs when "the Grid administrator must decide which
//!    mode should be run".

use infogram_bench::{banner, fmt_ratio, fmt_secs, table};
use infogram_exec::sandbox::{run_jarlet, ExecMode, Jarlet, Policy};
use infogram_host::machine::SimulatedHost;
use infogram_sim::ManualClock;
use std::sync::Arc;

fn host() -> Arc<SimulatedHost> {
    let h = SimulatedHost::default_on(ManualClock::new());
    h.fs.write("/data/input.dat", "specimen");
    h
}

fn main() {
    banner(
        "E11",
        "sandboxed execution of untrusted jobs (§5.5/§7)",
        "all hostile operations blocked in both modes; isolation adds a fixed \
         per-op overhead but contains violations that in-process mode lets touch the host",
    );

    println!("\n-- enforcement matrix (restrictive policy) --");
    let programs: [(&str, &str); 6] = [
        (
            "well-behaved",
            "read /data/input.dat; compute 5; write /tmp/out x; print ok",
        ),
        ("fs-read-escape", "read /etc/grid-security/hostcert.pem"),
        ("fs-write-escape", "write /etc/passwd pwned"),
        ("net-exfiltration", "net evil.example.org:31337"),
        ("fork-bomb", "spawn; spawn; spawn; spawn"),
        ("compute-bomb", "compute 999999999"),
    ];
    let mut rows = Vec::new();
    for (name, src) in programs {
        let jarlet = Jarlet::parse(src).expect("parse");
        let h = host();
        let iso = run_jarlet(&jarlet, &Policy::restrictive(), ExecMode::Isolated, &h);
        let h = host();
        let inp = run_jarlet(&jarlet, &Policy::restrictive(), ExecMode::InProcess, &h);
        rows.push(vec![
            name.to_string(),
            if iso.violations.is_empty() {
                "allowed"
            } else {
                "BLOCKED"
            }
            .to_string(),
            if inp.violations.is_empty() {
                "allowed"
            } else {
                "BLOCKED"
            }
            .to_string(),
            if iso.host_contaminated { "yes" } else { "no" }.to_string(),
            if inp.host_contaminated { "yes" } else { "no" }.to_string(),
        ]);
    }
    table(
        &[
            "program",
            "isolated",
            "in-process",
            "host-hit (iso)",
            "host-hit (inproc)",
        ],
        &rows,
    );

    println!("\n-- isolation overhead vs program length (permissive policy) --");
    let mut rows = Vec::new();
    for ops in [10usize, 100, 1000, 10_000] {
        let src = vec!["compute 1"; ops].join("; ");
        let jarlet = Jarlet::parse(&src).expect("parse");
        let h = host();
        let fast = run_jarlet(&jarlet, &Policy::permissive(), ExecMode::InProcess, &h);
        let slow = run_jarlet(&jarlet, &Policy::permissive(), ExecMode::Isolated, &h);
        let f = fast.runtime.as_secs_f64();
        let s = slow.runtime.as_secs_f64();
        rows.push(vec![
            ops.to_string(),
            fmt_secs(f),
            fmt_secs(s),
            fmt_secs(s - f),
            fmt_ratio(s / f.max(1e-12)),
        ]);
    }
    table(
        &["ops", "in-process", "isolated", "overhead", "slowdown"],
        &rows,
    );
    println!(
        "\nreading: policy enforcement is identical in both modes (everything hostile\n\
         blocked). The difference is the failure domain — an in-process violation\n\
         reaches the host service — versus a constant ~50µs/op crossing cost, the\n\
         same trade the paper describes for same-JVM vs separate-JVM execution."
    );
}
