//! E12 — multi-format output and MDS integration (§3, §5.5, §6.6).
//!
//! 1. **Equivalence**: the same provider queried through the native
//!    InfoGram path and through the MDS bridge must agree
//!    attribute-for-attribute (the "gradual transition" guarantee).
//! 2. **Render cost**: LDIF vs XML vs plain — time and bytes per record
//!    at several record-set sizes.

use infogram::core::mds_bridge;
use infogram::mds::filter::Filter;
use infogram::quickstart::Sandbox;
use infogram_bench::{banner, fmt_secs, table};
use infogram_proto::record::InfoRecord;
use infogram_proto::render;
use infogram_rsl::{InfoSelector, OutputFormat};
use std::time::Instant;

fn equivalence() {
    println!("\n-- native vs MDS-bridge equivalence --");
    let sandbox = Sandbox::start();
    let gris = mds_bridge::as_gris(&sandbox.service);
    let mut rows = Vec::new();
    for keyword in ["Date", "Memory", "CPU", "CPULoad", "list"] {
        let native = sandbox
            .service
            .info_service()
            .answer(
                &[InfoSelector::Keyword(keyword.to_string())],
                &Default::default(),
            )
            .expect("native");
        let mds = gris.search_all(&Filter::parse(&format!("(kw={keyword})")).expect("filter"));
        let mut matched = 0usize;
        let total = native[0].attributes.len();
        for attr in &native[0].attributes {
            let ldap_name = attr.name.replacen(':', "-", 1);
            if mds[0].first(&ldap_name).as_deref() == Some(attr.value.as_str()) {
                matched += 1;
            }
        }
        rows.push(vec![
            keyword.to_string(),
            total.to_string(),
            matched.to_string(),
            if matched == total { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table(&["keyword", "attrs", "matched via MDS", "equal"], &rows);
    sandbox.shutdown();
}

fn render_cost() {
    println!("\n-- render cost per format --");
    let mut rows = Vec::new();
    for n_records in [1usize, 10, 100, 1000] {
        let records: Vec<InfoRecord> = (0..n_records)
            .map(|i| {
                let mut r = InfoRecord::new("Memory", &format!("node{i:03}.grid"));
                r.push("total", "4294967296").quality = Some(0.95);
                r.push("used", "858993459").quality = Some(0.95);
                r.push("free", "3435973837").quality = Some(0.95);
                r
            })
            .collect();
        for fmt in [OutputFormat::Ldif, OutputFormat::Xml, OutputFormat::Plain] {
            const REPS: usize = 200;
            let t0 = Instant::now();
            let mut bytes = 0usize;
            for _ in 0..REPS {
                bytes = render::render(&records, fmt).len();
            }
            let per_record = t0.elapsed().as_secs_f64() / (REPS * n_records.max(1)) as f64;
            rows.push(vec![
                n_records.to_string(),
                fmt.to_string(),
                fmt_secs(per_record),
                format!("{}", bytes / n_records.max(1)),
            ]);
        }
    }
    table(&["records", "format", "time/record", "bytes/record"], &rows);
}

fn main() {
    banner(
        "E12",
        "LDIF/XML formats + MDS integration (§3/§5.5/§6.6)",
        "the MDS view is attribute-identical to the native view; XML is \
         moderately larger than LDIF, both render in microseconds per record",
    );
    equivalence();
    render_cost();
    println!(
        "\nreading: the backwards-compatibility claim holds — a legacy LDAP client\n\
         sees exactly the attributes the unified protocol serves, and the format tag\n\
         costs little either way."
    );
}
