//! E14 — the §8 application: sporadic grids at a photon source.
//!
//! "Such a Grid is created just for a short period of time during
//! sophisticated experiments." What matters operationally is how fast the
//! grid becomes useful: time-to-up, time-to-first-job, and the makespan
//! of a scan→acquire→analyze pipeline, as the node count grows.

// Bench/example/test harness: panic-on-failure is the error policy here.
#![allow(clippy::unwrap_used)]

use infogram::core::mds_bridge;
use infogram::mds::filter::Filter;
use infogram::mds::giis::Giis;
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram::sim::SystemClock;
use infogram_bench::{banner, fmt_secs, table};
use std::time::{Duration, Instant};

fn run(nodes: usize) -> Vec<String> {
    // ---- bring-up ----
    let t0 = Instant::now();
    let grid: Vec<Sandbox> = (0..nodes)
        .map(|i| {
            Sandbox::start_with(SandboxConfig {
                hostname: format!("beam{i:02}.aps.anl.gov"),
                seed: 7000 + i as u64,
                ..Default::default()
            })
        })
        .collect();
    let giis = Giis::new(SystemClock::shared(), Duration::from_secs(10));
    for n in &grid {
        mds_bridge::register_into(&n.service, &giis);
    }
    let t_up = t0.elapsed();

    // ---- schedule: least loaded node via the aggregate ----
    let entries = giis.search_all(&Filter::parse("(kw=CPULoad)").expect("filter"));
    assert_eq!(entries.len(), nodes);
    let target_host = entries
        .iter()
        .min_by(|a, b| {
            let la: f64 = a.first("CPULoad-load").unwrap().parse().unwrap();
            let lb: f64 = b.first("CPULoad-load").unwrap().parse().unwrap();
            la.partial_cmp(&lb).unwrap()
        })
        .unwrap()
        .first("hn")
        .unwrap();
    let target = grid
        .iter()
        .find(|n| n.host.hostname() == target_host)
        .unwrap();

    // ---- pipeline ----
    target.host.fs.write("/data/specimen.dat", "fov");
    for (stage, prog) in [
        (
            "scan",
            "read /data/specimen.dat; compute 20; write /tmp/points p; print ok",
        ),
        (
            "acquire",
            "read /data/specimen.dat; compute 30; write /tmp/patterns d; print ok",
        ),
        ("analyze", "compute 40; write /tmp/result r; print ok"),
    ] {
        target
            .host
            .fs
            .write(&format!("/home/gregor/{stage}.jar"), prog);
    }
    let mut client = target.connect_client();
    let t1 = Instant::now();
    let mut first_job = Duration::ZERO;
    for (i, stage) in ["scan", "acquire", "analyze"].iter().enumerate() {
        let h = client
            .submit(&format!("(executable=/home/gregor/{stage}.jar)"), false)
            .expect("submit");
        let (state, _, _) = client
            .wait_terminal(&h, Duration::from_millis(2), Duration::from_secs(20))
            .expect("finish");
        assert_eq!(state.to_string(), "DONE");
        if i == 0 {
            first_job = t1.elapsed();
        }
    }
    let makespan = t1.elapsed();

    // ---- teardown ----
    let t2 = Instant::now();
    for n in &grid {
        n.shutdown();
    }
    let t_down = t2.elapsed();

    vec![
        nodes.to_string(),
        fmt_secs(t_up.as_secs_f64()),
        fmt_secs(first_job.as_secs_f64()),
        fmt_secs(makespan.as_secs_f64()),
        fmt_secs(t_down.as_secs_f64()),
    ]
}

fn main() {
    banner(
        "E14",
        "sporadic grid bring-up and pipeline (§8)",
        "bring-up grows roughly linearly with node count but stays far below the \
         pipeline's own runtime; the grid is usable milliseconds after creation",
    );
    let rows: Vec<Vec<String>> = [2usize, 4, 8, 16].iter().map(|&n| run(n)).collect();
    table(
        &[
            "nodes",
            "bring-up",
            "time-to-first-job",
            "pipeline-makespan",
            "teardown",
        ],
        &rows,
    );
    println!(
        "\nreading: the §8 scenario is practical — a pure-software service that\n\
         deploys per-experiment ('easy to install it on a number of machines') and\n\
         is answering queries and running sandboxed analysis jobs immediately."
    );
}
