//! E10 — logging, checkpointing, restart (§6, §6.1, §10).
//!
//! Part 1: kill a service with W jobs in flight, restart over the same
//! file-backed log, and measure how many jobs came back and how long
//! recovery took.
//!
//! Part 2: the §6.1 per-job fault tolerance — jobs that fail are
//! restarted automatically up to their retry budget.

use infogram::exec::wal::FileWal;
use infogram::proto::message::JobStateCode;
use infogram::quickstart::{Sandbox, SandboxConfig};
use infogram_bench::{banner, fmt_secs, table};
use std::time::{Duration, Instant};

fn service_restart_row(in_flight: usize) -> Vec<String> {
    let path = std::env::temp_dir().join(format!(
        "infogram-bench-e10-{}-{in_flight}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let first = Sandbox::start_with(SandboxConfig {
        wal_sink: Some(Box::new(FileWal::open(&path).expect("wal"))),
        ..Default::default()
    });
    let mut client = first.connect_client();
    // Some jobs finish before the crash, `in_flight` stay running.
    for _ in 0..3 {
        let h = client
            .submit("(executable=simwork)(arguments=1)", false)
            .expect("submit");
        client
            .wait_terminal(&h, Duration::from_millis(2), Duration::from_secs(10))
            .expect("finish");
    }
    for _ in 0..in_flight {
        client
            .submit("(executable=simwork)(arguments=600000)", false)
            .expect("submit");
    }
    first.shutdown();
    drop(client);

    // Restart and measure recovery.
    let t0 = Instant::now();
    let second = Sandbox::start_with(SandboxConfig {
        wal_sink: Some(Box::new(FileWal::open(&path).expect("wal"))),
        ..Default::default()
    });
    let recovery = t0.elapsed();
    let recovered = second
        .service
        .engine()
        .metrics()
        .counter_value("jobs.recovered");
    let terminal_kept = second
        .service
        .engine()
        .job_ids()
        .iter()
        .filter(|id| {
            second
                .service
                .engine()
                .status(**id)
                .map(|v| v.state == JobStateCode::Done)
                .unwrap_or(false)
        })
        .count();
    second.shutdown();
    let _ = std::fs::remove_file(&path);
    vec![
        in_flight.to_string(),
        recovered.to_string(),
        format!("{terminal_kept}/3"),
        fmt_secs(recovery.as_secs_f64()),
    ]
}

fn auto_restart_row(retries: u32) -> Vec<String> {
    let sandbox = Sandbox::start();
    let mut client = sandbox.connect_client();
    // A job that always fails; it burns its retry budget then fails.
    let h = client
        .submit(
            &format!("&(executable=simwork)(arguments=5 7)(restartonfail={retries})"),
            false,
        )
        .expect("submit");
    let (state, exit, _) = client
        .wait_terminal(&h, Duration::from_millis(2), Duration::from_secs(20))
        .expect("terminal");
    let restarts = sandbox
        .service
        .engine()
        .metrics()
        .counter_value("jobs.restarts");
    sandbox.shutdown();
    vec![
        retries.to_string(),
        restarts.to_string(),
        state.to_string(),
        exit.map(|e| e.to_string()).unwrap_or_default(),
    ]
}

fn main() {
    banner(
        "E10",
        "restart from the logging service (§6/§6.1/§10)",
        "every in-flight job is resubmitted on restart; finished jobs keep their \
         outcomes; per-job auto-restart consumes exactly its retry budget",
    );

    println!("\n-- service crash + restart over a file-backed WAL --");
    let rows: Vec<Vec<String>> = [1usize, 5, 20, 50]
        .iter()
        .map(|&w| service_restart_row(w))
        .collect();
    table(
        &["in-flight", "recovered", "terminal-kept", "recovery-time"],
        &rows,
    );

    println!("\n-- §6.1 automatic job restart on failure --");
    let rows: Vec<Vec<String>> = [0u32, 1, 3, 5]
        .iter()
        .map(|&r| auto_restart_row(r))
        .collect();
    table(&["retry-budget", "restarts", "final-state", "exit"], &rows);
    println!(
        "\nreading: recovery is O(in-flight jobs) and every unfinished submission\n\
         restarts from its logged xRSL (\"the command used and arguments\"); a job\n\
         with budget N fails only after N automatic restarts."
    );
}
