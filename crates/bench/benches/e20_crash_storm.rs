//! E20 — crash storm: the crash-consistent WAL under a seeded disk
//! fault storm with a mid-storm power loss (DESIGN §14).
//!
//! A job engine runs on a virtual clock over an in-memory disk whose
//! appends and fsyncs draw faults from a seeded plan (2% failed
//! appends, 1% short writes, 2% failed fsyncs), with a scripted crash
//! mid-storm. The storm submits short jobs and polls them while the
//! disk misbehaves; the crash kills the service; a second incarnation
//! recovers over the surviving durable bytes and the storm resumes.
//!
//! Acceptance (the durability contract, end to end):
//!
//! * **zero acked-submission loss** — every submission the engine acked
//!   is present after recovery (an ack is only issued once the log
//!   record is fsynced);
//! * **zero resurrected finished jobs** — every job observed terminal
//!   before the crash recovers terminal with the same exit code;
//! * **checkpoint + tail replay** — recovery uses the newest checkpoint
//!   and replays a bounded tail, not the full history, in bounded time;
//! * **honest degradation, then healing** — mid-storm faults reject
//!   submissions (`WalUnavailable`) instead of silently acking, and the
//!   restarted service accepts work again;
//! * **deterministic replay** — the whole run (acks, rejections,
//!   outcomes, recovery stats) reproduces byte-identically from the
//!   seed, because every fault decision is keyed by operation count on
//!   a virtual clock.
//!
//! Env knobs: `E20_QUICK=1` shrinks the round count for smoke runs;
//! `E20_JSON=<path>` writes a machine-readable result with a `pass`
//! flag (used by `scripts/bench_smoke.sh` / `scripts/check_crash.sh`).

// Bench harness: panic-on-failure is the error policy here.
#![allow(clippy::unwrap_used)]

use infogram::exec::{
    EngineConfig, ForkBackend, FrameWal, JobEngine, MemStorage, SubmitError, Wal, WalConfig,
    WalStorage,
};
use infogram_bench::{banner, table};
use infogram_host::commands::{ChargeMode, CommandRegistry};
use infogram_host::machine::SimulatedHost;
use infogram_obs::MetricSet;
use infogram_rsl::XrslRequest;
use infogram_sim::fault::{DiskFaultPlan, DiskStormProfile};
use infogram_sim::ManualClock;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Storm seed: same seed, same faults, same tallies.
const SEED: u64 = 0xe20_0c4a;

/// Small segments + frequent checkpoints so even the quick run rotates
/// several times and recovery genuinely replays checkpoint + tail.
fn wal_cfg() -> WalConfig {
    WalConfig {
        segment_max_bytes: 2048,
        checkpoint_every_events: 24,
        retry_after: Duration::from_millis(40),
    }
}

fn engine_over(storage: &Arc<MemStorage>, clock: &Arc<ManualClock>) -> Arc<JobEngine> {
    let sink =
        FrameWal::open(Arc::clone(storage) as Arc<dyn WalStorage>, wal_cfg()).expect("open wal");
    let host = SimulatedHost::default_on(clock.clone());
    let registry = CommandRegistry::new(host, ChargeMode::None);
    JobEngine::new(
        EngineConfig::default(),
        clock.clone(),
        Wal::with_config(Box::new(sink), wal_cfg()),
        ForkBackend::new(registry),
        MetricSet::new(),
    )
}

fn submit(engine: &JobEngine, rsl: &str) -> Result<u64, SubmitError> {
    let req = XrslRequest::from_text(rsl).expect("rsl");
    engine
        .submit(rsl, req.job.unwrap(), "/O=Grid/CN=StormUser", "storm")
        .map(|h| h.job_id)
}

/// Everything the run observes — compared across replays bit for bit.
#[derive(Debug, Default, PartialEq, Eq, Clone)]
struct Tally {
    acked: Vec<u64>,
    rejected: u64,
    seen_done: BTreeMap<u64, Option<i32>>,
    crashed_mid_storm: bool,
    lost_acked: u64,
    resurrected: u64,
    restarted_in_flight: u64,
    checkpoint_used: bool,
    events_replayed: u64,
    events_since_checkpoint: u64,
    corrupt_frames: u64,
    truncated_tail_bytes: u64,
    post_acked: u64,
    post_rejected: u64,
}

/// One full storm: submit under faults, crash, recover, resume.
/// Returns the tallies plus the recovery wall-clock seconds.
fn run_storm(rounds: u64) -> (Tally, f64) {
    let mut t = Tally::default();
    let plan = DiskFaultPlan::storm(SEED, DiskStormProfile::default());
    // Power loss mid-storm: the disk dies at a scripted append index.
    plan.crash_after_appends(rounds);
    let storage = MemStorage::with_plan(Some(Arc::clone(&plan)));
    let clock = ManualClock::new();

    // --- first incarnation: storm until the disk dies under it ---
    let engine = engine_over(&storage, &clock);
    for _ in 0..rounds {
        match submit(&engine, "(executable=simwork)(arguments=30)") {
            Ok(job_id) => t.acked.push(job_id),
            Err(SubmitError::WalUnavailable { .. }) => t.rejected += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        clock.advance(Duration::from_millis(10));
        // Poll every acked job; a job only ever *shows* terminal once
        // its Finished record is fsynced, so this set is the
        // resurrection ground truth.
        for &job_id in &t.acked {
            if let Some(view) = engine.status(job_id) {
                if view.state.is_terminal() {
                    t.seen_done.insert(job_id, view.exit_code);
                }
            }
        }
    }
    t.crashed_mid_storm = plan.crashed();
    drop(engine); // kill -9: volatile bytes are already gone

    // --- second incarnation over the surviving durable bytes ---
    storage.restart();
    let t0 = Instant::now();
    let engine = engine_over(&storage, &clock);
    let restarted = engine.recover();
    let recovery_secs = t0.elapsed().as_secs_f64();
    t.restarted_in_flight = restarted.len() as u64;
    let stats = engine.wal_recovery_stats();
    t.checkpoint_used = stats.checkpoint_used;
    t.events_replayed = stats.events_replayed;
    t.events_since_checkpoint = stats.events_since_checkpoint;
    t.corrupt_frames = stats.corrupt_frames;
    t.truncated_tail_bytes = stats.truncated_tail_bytes;

    for &job_id in &t.acked {
        match engine.status(job_id) {
            None => t.lost_acked += 1,
            Some(view) => {
                if let Some(&exit) = t.seen_done.get(&job_id) {
                    // Observed terminal before the crash: must come back
                    // terminal with the same outcome, never live again.
                    if !view.state.is_terminal() || view.exit_code != exit {
                        t.resurrected += 1;
                    }
                }
            }
        }
    }

    // --- the storm resumes on the healed disk ---
    for _ in 0..rounds / 4 {
        match submit(&engine, "(executable=simwork)(arguments=30)") {
            Ok(_) => t.post_acked += 1,
            Err(SubmitError::WalUnavailable { .. }) => t.post_rejected += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        clock.advance(Duration::from_millis(10));
    }

    (t, recovery_secs)
}

fn main() {
    let quick = std::env::var("E20_QUICK").is_ok_and(|v| v == "1");
    let rounds: u64 = if quick { 80 } else { 400 };

    banner(
        "E20",
        "crash storm: WAL durability under disk faults + power loss (§6)",
        "every acked submission survives a mid-storm crash, every job seen \
         terminal stays terminal, recovery replays checkpoint + bounded \
         tail, and the run replays byte-identically from its seed",
    );

    let (tally, recovery_secs) = run_storm(rounds);
    println!("\n-- storm: {rounds} rounds, seed {SEED:#x}, crash after {rounds} appends --");
    table(
        &[
            "acked",
            "rejected",
            "seen-done",
            "lost-acked",
            "resurrected",
            "restarted",
            "post-acked",
        ],
        &[vec![
            tally.acked.len().to_string(),
            tally.rejected.to_string(),
            tally.seen_done.len().to_string(),
            tally.lost_acked.to_string(),
            tally.resurrected.to_string(),
            tally.restarted_in_flight.to_string(),
            tally.post_acked.to_string(),
        ]],
    );
    table(
        &[
            "checkpoint-used",
            "events-replayed",
            "tail-events",
            "corrupt-frames",
            "torn-bytes",
            "recovery-time",
        ],
        &[vec![
            tally.checkpoint_used.to_string(),
            tally.events_replayed.to_string(),
            tally.events_since_checkpoint.to_string(),
            tally.corrupt_frames.to_string(),
            tally.truncated_tail_bytes.to_string(),
            format!("{:.1} ms", recovery_secs * 1e3),
        ]],
    );

    // Replay: the same seed must reproduce the exact same run.
    let (replay, _) = run_storm(rounds);
    let deterministic = replay == tally;

    // Bounded tail: rotation can defer a checkpoint by one batch, so
    // allow a few batches of slack over the configured cadence.
    let bounded_tail = tally.events_since_checkpoint <= wal_cfg().checkpoint_every_events * 4;
    let pass = tally.crashed_mid_storm
        && tally.lost_acked == 0
        && tally.resurrected == 0
        && !tally.acked.is_empty()
        && !tally.seen_done.is_empty()
        && tally.checkpoint_used
        && bounded_tail
        && recovery_secs < 2.0
        && tally.post_acked > 0
        && deterministic;

    println!(
        "\nreading: {} acked submissions survived a mid-storm power loss with \
         0 losses and 0 resurrections ({} rejected honestly during faults); \
         recovery replayed a {}-event tail off a checkpoint in {:.1} ms; \
         deterministic replay={deterministic}; pass={pass}",
        tally.acked.len(),
        tally.rejected,
        tally.events_since_checkpoint,
        recovery_secs * 1e3,
    );

    if let Ok(path) = std::env::var("E20_JSON") {
        let json = format!(
            "{{\n  \"experiment\": \"e20_crash_storm\",\n  \
             \"seed\": {SEED},\n  \
             \"rounds\": {rounds},\n  \
             \"acked\": {},\n  \
             \"rejected\": {},\n  \
             \"seen_done\": {},\n  \
             \"lost_acked\": {},\n  \
             \"resurrected\": {},\n  \
             \"restarted_in_flight\": {},\n  \
             \"checkpoint_used\": {},\n  \
             \"events_replayed\": {},\n  \
             \"events_since_checkpoint\": {},\n  \
             \"corrupt_frames\": {},\n  \
             \"truncated_tail_bytes\": {},\n  \
             \"recovery_ms\": {:.1},\n  \
             \"post_acked\": {},\n  \
             \"post_rejected\": {},\n  \
             \"deterministic_replay\": {deterministic},\n  \
             \"pass\": {pass}\n}}\n",
            tally.acked.len(),
            tally.rejected,
            tally.seen_done.len(),
            tally.lost_acked,
            tally.resurrected,
            tally.restarted_in_flight,
            tally.checkpoint_used,
            tally.events_replayed,
            tally.events_since_checkpoint,
            tally.corrupt_frames,
            tally.truncated_tail_bytes,
            recovery_secs * 1e3,
            tally.post_acked,
            tally.post_rejected,
        );
        std::fs::write(&path, json).expect("write E20_JSON");
        println!("wrote {path}");
    }
    assert!(
        pass,
        "crash-storm acceptance failed: crashed={} lost={} resurrected={} \
         checkpoint_used={} tail={} recovery={recovery_secs:.3}s post_acked={} \
         deterministic={deterministic}",
        tally.crashed_mid_storm,
        tally.lost_acked,
        tally.resurrected,
        tally.checkpoint_used,
        tally.events_since_checkpoint,
        tally.post_acked,
    );
}
