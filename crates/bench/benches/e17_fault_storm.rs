//! E17 — the fault-domain supervisor under a provider-failure storm:
//! with 10% of provider executions failing (plus hangs and slowdowns),
//! the service should keep answering nearly every query — retried
//! in-fetch where the budget allows, served last-known-good (and
//! honestly tagged degraded) where it does not — instead of surfacing
//! INTERNAL errors at the storm's rate.
//!
//! The storm is scripted: `FaultPlan::storm(seed, profile)` draws every
//! injection from a seeded PRNG, the world runs on a virtual clock with
//! command costs (and injected stalls) charged to it, and queries are
//! issued one keyword at a time — so the whole run is deterministic and
//! the bench replays itself with the same seed to prove it.
//!
//! Env knobs: `E17_QUICK=1` shrinks the round count for smoke runs;
//! `E17_JSON=<path>` writes a machine-readable result with a `pass`
//! flag (used by `scripts/bench_smoke.sh`).

use infogram_bench::{banner, manual_world_with_config, table};
use infogram_info::config::{ServiceConfig, TABLE1_TEXT};
use infogram_info::service::QueryOptions;
use infogram_rsl::InfoSelector;
use infogram_sim::fault::{FaultPlan, StormProfile};
use std::time::{Duration, Instant};

/// World + storm seed: same seed, same storm, same tallies.
const SEED: u64 = 0xe17_fa11;

/// Virtual time between query rounds.
const ROUND_STEP: Duration = Duration::from_millis(30);

const KEYWORDS: [&str; 5] = ["Date", "Memory", "CPU", "CPULoad", "list"];

/// Table 1 with explicit linear degradation windows: the default binary
/// degradation (lifetime = TTL) floors a snapshot's quality to zero the
/// moment it needs a refresh, which makes stale-serve pointless. A 5 s
/// linear window is the "last-known-good is better than nothing" policy
/// a deployment under provider flap would pick.
fn storm_config() -> ServiceConfig {
    let mut text = TABLE1_TEXT.to_string();
    for kw in KEYWORDS {
        text.push_str(&format!("@degradation {kw} linear 5000\n"));
    }
    ServiceConfig::parse(&text).expect("config")
}

/// The storm: Table 1 defaults for fail/hang/slow probabilities, but
/// hangs long enough (300 ms) to blow the TTL-proportional deadline
/// budgets, so the breach path is exercised too.
fn storm_profile() -> StormProfile {
    StormProfile {
        hang_for: Duration::from_millis(300),
        ..StormProfile::default()
    }
}

#[derive(Debug, Default, PartialEq, Eq, Clone)]
struct Tally {
    queries: u64,
    fresh: u64,
    stale: u64,
    errors: u64,
    retries: u64,
    stale_serves: u64,
    deadline_breaches: u64,
}

/// Run `rounds` rounds of per-keyword queries under the seeded storm.
/// Returns the tallies plus the wall-clock seconds spent querying.
fn run_storm(rounds: usize) -> (Tally, f64) {
    let world = manual_world_with_config(SEED, &storm_config());
    let opts = QueryOptions::default();
    let selectors: Vec<InfoSelector> = KEYWORDS
        .iter()
        .map(|k| InfoSelector::Keyword(k.to_string()))
        .collect();
    // Warm start: one clean pass seeds every keyword's snapshot before
    // the weather turns (a storm hitting a cold cache can only error —
    // there is nothing last-known-good to serve yet).
    for sel in &selectors {
        world
            .info
            .answer(std::slice::from_ref(sel), &opts)
            .expect("warm-up");
    }
    world
        .registry
        .set_fault_plan(FaultPlan::storm(SEED, storm_profile()));

    let mut tally = Tally::default();
    let start = Instant::now();
    for _ in 0..rounds {
        world.clock.advance(ROUND_STEP);
        for sel in &selectors {
            tally.queries += 1;
            match world.info.answer(std::slice::from_ref(sel), &opts) {
                Ok(records) => {
                    if records.iter().any(|r| r.degraded) {
                        tally.stale += 1;
                    } else {
                        tally.fresh += 1;
                    }
                }
                Err(_) => tally.errors += 1,
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let m = world.info.metrics();
    tally.retries = m.counter_value("info.retries");
    tally.stale_serves = m.counter_value("info.stale_serves");
    tally.deadline_breaches = m.counter_value("info.deadline_breaches");
    (tally, wall)
}

fn main() {
    let quick = std::env::var("E17_QUICK").is_ok_and(|v| v == "1");
    let rounds = if quick { 400 } else { 2000 };

    banner(
        "E17",
        "fault storm: supervised fetches under 10% provider failure",
        "availability stays >=99% while the storm rages — failed fetches \
         are retried or served last-known-good (tagged degraded), never \
         surfaced as INTERNAL at the storm's rate; the run replays \
         byte-identically from its seed",
    );

    let (tally, wall) = run_storm(rounds);
    let answered = tally.fresh + tally.stale;
    let availability = answered as f64 / tally.queries as f64;
    let stale_ratio = tally.stale as f64 / tally.queries as f64;
    let qps = tally.queries as f64 / wall;

    println!(
        "\n-- storm: {} rounds x {} keywords, {:?} virtual step, seed {SEED:#x} --",
        rounds,
        KEYWORDS.len(),
        ROUND_STEP
    );
    table(
        &[
            "queries",
            "fresh",
            "served stale",
            "errors",
            "availability",
            "stale ratio",
            "queries/s",
        ],
        &[vec![
            tally.queries.to_string(),
            tally.fresh.to_string(),
            tally.stale.to_string(),
            tally.errors.to_string(),
            format!("{:.4}", availability),
            format!("{:.4}", stale_ratio),
            format!("{qps:.0}"),
        ]],
    );
    table(
        &["in-fetch retries", "stale serves", "deadline breaches"],
        &[vec![
            tally.retries.to_string(),
            tally.stale_serves.to_string(),
            tally.deadline_breaches.to_string(),
        ]],
    );

    // Replay: the same seed must reproduce the exact same tallies —
    // that is the whole point of scripted fault injection.
    let (replay, _) = run_storm(rounds);
    let deterministic = replay == tally;

    // Acceptance: the storm actually hit (retries happened), the
    // supervisor absorbed it (>=99% of queries answered), and the run
    // is reproducible from its seed.
    let pass = availability >= 0.99 && tally.retries > 0 && deterministic;
    println!(
        "\nreading: {:.2}% of queries answered under the storm \
         ({} retried executions, {} stale serves, {} deadline breaches); \
         deterministic replay={deterministic}; pass={pass}",
        availability * 100.0,
        tally.retries,
        tally.stale_serves,
        tally.deadline_breaches,
    );

    if let Ok(path) = std::env::var("E17_JSON") {
        let json = format!(
            "{{\n  \"experiment\": \"e17_fault_storm\",\n  \
             \"seed\": {SEED},\n  \
             \"rounds\": {rounds},\n  \
             \"queries\": {},\n  \
             \"fresh\": {},\n  \
             \"served_stale\": {},\n  \
             \"errors\": {},\n  \
             \"availability\": {availability:.4},\n  \
             \"served_stale_ratio\": {stale_ratio:.4},\n  \
             \"retries\": {},\n  \
             \"stale_serves\": {},\n  \
             \"deadline_breaches\": {},\n  \
             \"queries_per_sec\": {qps:.0},\n  \
             \"deterministic_replay\": {deterministic},\n  \
             \"pass\": {pass}\n}}\n",
            tally.queries,
            tally.fresh,
            tally.stale,
            tally.errors,
            tally.retries,
            tally.stale_serves,
            tally.deadline_breaches,
        );
        std::fs::write(&path, json).expect("write E17_JSON");
        println!("wrote {path}");
    }
    assert!(
        pass,
        "fault-storm acceptance failed: availability {availability:.4}, \
         retries {}, deterministic {deterministic}",
        tally.retries
    );
}
