//! Figure 3 — the InfoGram architecture, measured.
//!
//! The identical mixed workload of the Figure 2 bench, now against the
//! unified service: one gatekeeper, one port, one protocol. Information
//! queries travel as xRSL submits on the same authenticated connection
//! the jobs use.

use infogram_bench::mixed::{outcome_row, run_unified, OUTCOME_HEADER};
use infogram_bench::{banner, table};

fn main() {
    banner(
        "F3",
        "the unified InfoGram service under a mixed workload (Figure 3)",
        "connections = 1 × clients; one protocol; the same work as Figure 2 \
         with half the connection/handshake overhead",
    );
    let mut rows = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let o = run_unified(clients, 40, 0.5, 1000 + clients as u64);
        rows.push(outcome_row(&format!("unified, {clients} clients"), &o));
    }
    table(&OUTCOME_HEADER, &rows);
    println!(
        "\nstructural inventory of this world (the boxes of Figure 3):\n\
         services per resource: 1 (InfoGram)   protocols: 1 (xRSL over GRAMP)\n\
         ports: 1   connections per client: 1   GSI handshakes per client: 1\n\
         \nreading: compare row-for-row with fig2_separate_services; the head-to-head\n\
         sweep with ratios is fig4_unified_vs_separate."
    );
}
