//! Table 1 reproduction: the configuration file maps keywords to
//! commands with per-keyword TTLs. We load the *literal* Table 1 rows,
//! fire a fixed query schedule at every keyword, and report how the TTL
//! governs the cache behaviour — including the special `0` row
//! ("0 specifies execution of the keyword every time it is requested").

use infogram_bench::{banner, fmt_secs, manual_world, table};
use infogram_info::service::QueryOptions;
use infogram_rsl::InfoSelector;
use std::time::Duration;

fn main() {
    banner(
        "T1",
        "Table 1 — keyword ↔ provider mapping under a fixed query schedule",
        "hit ratio grows with TTL; the TTL=0 CPULoad row never serves from cache",
    );

    // 200 queries, one every 10 ms of virtual time.
    const QUERIES: u64 = 200;
    const GAP_MS: u64 = 10;

    let mut rows = Vec::new();
    for (ttl_ms, keyword, command) in [
        (60u64, "Date", "date -u"),
        (80, "Memory", "/sbin/sysinfo.exe -mem"),
        (100, "CPU", "/sbin/sysinfo.exe -cpu"),
        (0, "CPULoad", "/usr/local/bin/cpuload.exe"),
        (1000, "list", "/bin/ls /home/gregor"),
    ] {
        // Fresh world per keyword so command costs do not interact.
        let w = manual_world(42);
        let si = w.info.lookup(keyword).expect("table1 keyword");
        assert_eq!(si.ttl(), Duration::from_millis(ttl_ms));
        let opts = QueryOptions::default();
        for _ in 0..QUERIES {
            w.info
                .answer(&[InfoSelector::Keyword(keyword.to_string())], &opts)
                .expect("query");
            w.clock.advance(Duration::from_millis(GAP_MS));
        }
        let executions = si.execution_count();
        let hits = QUERIES - executions;
        let (mean, _std, _n) = si.average_update_time();
        rows.push(vec![
            ttl_ms.to_string(),
            keyword.to_string(),
            command.to_string(),
            QUERIES.to_string(),
            executions.to_string(),
            format!("{:.1}%", 100.0 * hits as f64 / QUERIES as f64),
            fmt_secs(mean),
        ]);
    }

    table(
        &[
            "TTL(ms)",
            "Keyword",
            "Command",
            "queries",
            "execs",
            "hit-ratio",
            "mean-cost",
        ],
        &rows,
    );
    println!(
        "\nreading: at one query per {GAP_MS}ms, a keyword with TTL T ms needs ~1 execution\n\
         per T/{GAP_MS} queries; CPULoad (TTL 0) executes on every single query, exactly\n\
         as Table 1 of the paper specifies."
    );
}
