//! E8 — the xRSL `performance` tag (§6.6): "The performance tag returns
//! the number of seconds and the standard deviation about how long it
//! takes to obtain a particular information value. The performance of a
//! command and its attributed values is measured and catalogued during
//! runtime."
//!
//! We give commands known cost distributions, drive many refreshes, and
//! compare the catalog's reported (mean, σ) against the configured
//! ground truth.

// Bench/example/test harness: panic-on-failure is the error policy here.
#![allow(clippy::unwrap_used)]

use infogram_bench::{banner, fmt_secs, manual_world_with_config, table};
use infogram_host::commands::CostModel;
use infogram_info::config::ServiceConfig;
use infogram_info::service::QueryOptions;
use infogram_rsl::{InfoSelector, ResponseMode};
use std::time::Duration;

fn main() {
    banner(
        "E8",
        "performance tag accuracy (§6.6)",
        "the catalogued mean and stddev converge to the command's true cost \
         distribution as samples accumulate",
    );

    const SAMPLES: u64 = 300;
    let cases: [(&str, CostModel, f64, f64); 4] = [
        (
            "fixed 50ms",
            CostModel::Fixed(Duration::from_millis(50)),
            0.050,
            0.0,
        ),
        (
            "normal 50±10ms",
            CostModel::Normal {
                mean: Duration::from_millis(50),
                std_dev: Duration::from_millis(10),
            },
            0.050,
            0.010,
        ),
        (
            "normal 200±40ms",
            CostModel::Normal {
                mean: Duration::from_millis(200),
                std_dev: Duration::from_millis(40),
            },
            0.200,
            0.040,
        ),
        (
            "normal 5±1ms",
            CostModel::Normal {
                mean: Duration::from_millis(5),
                std_dev: Duration::from_millis(1),
            },
            0.005,
            0.001,
        ),
    ];

    let mut rows = Vec::new();
    for (label, cost, true_mean, true_std) in cases {
        let config = ServiceConfig::parse("0 Probe cpuload\n").expect("config");
        let w = manual_world_with_config(8, &config);
        w.registry.set_cost("cpuload", cost);
        let sel = [InfoSelector::Keyword("Probe".to_string())];
        let opts = QueryOptions {
            mode: ResponseMode::Immediate,
            performance: true,
            ..Default::default()
        };
        let mut last_reported = (0.0, 0.0);
        for _ in 0..SAMPLES {
            let records = w.info.answer(&sel, &opts).expect("query");
            let mean: f64 = records[0]
                .get("perf.mean_seconds")
                .unwrap()
                .value
                .parse()
                .unwrap();
            let std: f64 = records[0]
                .get("perf.std_seconds")
                .unwrap()
                .value
                .parse()
                .unwrap();
            last_reported = (mean, std);
        }
        let (mean, std) = last_reported;
        rows.push(vec![
            label.to_string(),
            fmt_secs(true_mean),
            fmt_secs(mean),
            format!("{:+.1}%", 100.0 * (mean - true_mean) / true_mean),
            fmt_secs(true_std),
            fmt_secs(std),
        ]);
    }
    table(
        &[
            "cost model",
            "true-mean",
            "reported-mean",
            "mean-err",
            "true-sd",
            "reported-sd",
        ],
        &rows,
    );
    println!(
        "\nreading: after {SAMPLES} catalogued executions the reported mean is within\n\
         ~1% of truth and the stddev tracks the configured dispersion — the tag gives\n\
         schedulers the \"quality of the information\" signal §5.2 asks for."
    );
}
