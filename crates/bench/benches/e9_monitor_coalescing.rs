//! E9 — the update monitor and the delay throttle (§6.2): "If multiple
//! updateState methods are invoked, monitors are used to perform only one
//! such update at a time. Additionally, we provide a delay that controls
//! how many milliseconds must pass between consecutive calls of
//! updateState before the actual information is obtained."
//!
//! Part 1 (real threads, real clock): C concurrent updaters against a
//! slow provider — the monitor must collapse each storm to one provider
//! execution; without the monitor every caller would execute (C per
//! storm, the analytic ablation baseline).
//!
//! Part 2 (virtual clock): back-to-back `updateState` calls under a
//! `delay` throttle.

use infogram_bench::{banner, fmt_ratio, table};
use infogram_info::entry::SystemInformation;
use infogram_info::provider::FnProvider;
use infogram_info::quality::DegradationFn;
use infogram_sim::{ManualClock, SystemClock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn storm(concurrency: usize) -> (u64, u64) {
    const ROUNDS: usize = 5;
    let clock = SystemClock::shared();
    let produces = Arc::new(AtomicU64::new(0));
    let p2 = Arc::clone(&produces);
    let si = SystemInformation::new(
        Box::new(FnProvider::new("Slow", move || {
            p2.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            Ok(vec![("v".to_string(), "1".to_string())])
        })),
        clock,
        Duration::ZERO, // force a real update per storm
        DegradationFn::default(),
    );
    for _ in 0..ROUNDS {
        let threads: Vec<_> = (0..concurrency)
            .map(|_| {
                let si = Arc::clone(&si);
                std::thread::spawn(move || si.update_state().expect("update"))
            })
            .collect();
        for t in threads {
            t.join().expect("join");
        }
    }
    (
        produces.load(Ordering::SeqCst),
        (concurrency * ROUNDS) as u64,
    )
}

fn delay_throttle(delay_ms: u64) -> u64 {
    let clock = ManualClock::new();
    let si = SystemInformation::new(
        Box::new(FnProvider::new("Throttled", || {
            Ok(vec![("v".to_string(), "1".to_string())])
        })),
        clock.clone(),
        Duration::ZERO,
        DegradationFn::default(),
    );
    si.set_delay(Duration::from_millis(delay_ms));
    // 100 updateState calls at 10 ms spacing = a 1 s window.
    for _ in 0..100 {
        si.update_state().expect("update");
        clock.advance(Duration::from_millis(10));
    }
    si.execution_count()
}

fn main() {
    banner(
        "E9",
        "update-monitor coalescing + delay throttle (§6.2)",
        "the monitor keeps provider executions at 1 per storm regardless of \
         concurrency; the delay caps execution rate at 1 per delay window",
    );

    println!("\n-- monitor coalescing: C threads × 5 storms, 30 ms provider --");
    let mut rows = Vec::new();
    for c in [1usize, 2, 4, 8, 16, 32] {
        let (execs, naive) = storm(c);
        rows.push(vec![
            c.to_string(),
            execs.to_string(),
            naive.to_string(),
            fmt_ratio(naive as f64 / execs as f64),
        ]);
    }
    table(
        &["threads", "execs (monitor)", "execs (no monitor)", "saving"],
        &rows,
    );

    println!("\n-- delay throttle: 100 updateState calls at 10 ms spacing --");
    let mut rows = Vec::new();
    for delay_ms in [0u64, 20, 50, 100, 500] {
        let execs = delay_throttle(delay_ms);
        let expected = match 1000u64.checked_div(delay_ms) {
            None => 100, // delay 0: every call executes
            Some(per_window) => per_window.min(100) + 1,
        };
        rows.push(vec![
            delay_ms.to_string(),
            execs.to_string(),
            format!("~{expected}"),
        ]);
    }
    table(&["delay(ms)", "real execs/100 calls", "expected"], &rows);
    println!(
        "\nreading: both §6.2 mechanisms behave as specified — concurrent storms\n\
         collapse to one execution (waiters reuse the in-flight result) and the\n\
         delay gate serves the cached copy for callers arriving inside the window."
    );
}
