//! Figure 2 — "A sample interaction between a client, GRAM, and MDS":
//! the baseline world, measured.
//!
//! A closed-loop client population runs a half-info/half-jobs workload
//! against the *separate* GRAM and MDS services. Every client must open
//! two connections (two GSI handshakes) and speak two protocols; the
//! table quantifies what that costs.

use infogram_bench::mixed::{outcome_row, run_baseline, OUTCOME_HEADER};
use infogram_bench::{banner, table};

fn main() {
    banner(
        "F2",
        "separate GRAM + MDS under a mixed workload (Figure 2)",
        "connections = 2 × clients; two wire protocols in play; handshake and \
         connection overhead paid twice per client",
    );
    let mut rows = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let o = run_baseline(clients, 40, 0.5, 1000 + clients as u64);
        rows.push(outcome_row(&format!("baseline, {clients} clients"), &o));
    }
    table(&OUTCOME_HEADER, &rows);
    println!(
        "\nstructural inventory of this world (the boxes of Figure 2):\n\
         services per resource: 2 (GRAM + GRIS)   protocols: 2 (GRAMP + LDAP)\n\
         ports: 2   connections per client: 2   GSI handshakes per client: 2\n\
         \nreading: every column here is the price of the split architecture; \n\
         fig4_unified_vs_separate runs the identical workload against InfoGram."
    );
}
