//! RSL variable substitution.
//!
//! RSL specifications may define variables with the classic
//! `rslsubstitution` attribute and reference them as `$(NAME)`:
//!
//! ```text
//! &(rslsubstitution=(HOME /home/gregor))
//!  (directory=$(HOME) # /data)
//! ```
//!
//! [`substitute`] resolves every variable reference against an ambient
//! environment plus any `rslsubstitution` definitions (which take effect
//! for the remainder of the specification, in source order), flattens
//! fully-literal concatenations, and drops the definitional relations from
//! the output.

use crate::ast::{Relation, Spec, Value};
use std::collections::HashMap;
use std::fmt;

/// A substitution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstError {
    /// A `$(NAME)` had no binding.
    Undefined {
        /// The unbound variable name.
        name: String,
    },
    /// An `rslsubstitution` definition was not a `(NAME value)` pair.
    MalformedDefinition {
        /// Rendering of the malformed definition.
        found: String,
    },
}

impl fmt::Display for SubstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstError::Undefined { name } => write!(f, "undefined RSL variable $({name})"),
            SubstError::MalformedDefinition { found } => {
                write!(f, "malformed rslsubstitution definition: {found}")
            }
        }
    }
}

impl std::error::Error for SubstError {}

/// Substitute variables throughout a specification.
///
/// `env` provides the ambient bindings (e.g. `HOME`, `GLOBUSRUN_GASS_URL`
/// in real Globus); `rslsubstitution` relations add to the scope as they
/// are encountered and are removed from the result.
pub fn substitute(spec: &Spec, env: &HashMap<String, String>) -> Result<Spec, SubstError> {
    let mut scope: HashMap<String, String> = env.clone();
    subst_spec(spec, &mut scope)
}

fn subst_spec(spec: &Spec, scope: &mut HashMap<String, String>) -> Result<Spec, SubstError> {
    match spec {
        Spec::Relation(r) => {
            if r.attribute == "rslsubstitution" {
                define(r, scope)?;
                // Definitional relation: replaced by an empty conjunction
                // marker; the caller strips it.
                Ok(Spec::Boolean {
                    op: crate::ast::BoolOp::And,
                    specs: vec![],
                })
            } else {
                Ok(Spec::Relation(Relation {
                    attribute: r.attribute.clone(),
                    op: r.op,
                    values: r
                        .values
                        .iter()
                        .map(|v| subst_value(v, scope))
                        .collect::<Result<_, _>>()?,
                }))
            }
        }
        Spec::Boolean { op, specs } => {
            let mut out = Vec::with_capacity(specs.len());
            for s in specs {
                let replaced = subst_spec(s, scope)?;
                // Strip empty conjunctions left by consumed definitions.
                if let Spec::Boolean { specs: inner, .. } = &replaced {
                    if inner.is_empty() {
                        continue;
                    }
                }
                out.push(replaced);
            }
            Ok(Spec::Boolean {
                op: *op,
                specs: out,
            })
        }
        Spec::Multi(specs) => {
            // Each multi-request branch gets its own child scope, so
            // definitions in one branch do not leak into siblings.
            let mut out = Vec::with_capacity(specs.len());
            for s in specs {
                let mut child = scope.clone();
                out.push(subst_spec(s, &mut child)?);
            }
            Ok(Spec::Multi(out))
        }
    }
}

fn define(r: &Relation, scope: &mut HashMap<String, String>) -> Result<(), SubstError> {
    for v in &r.values {
        match v {
            Value::Sequence(kv) => {
                let name = kv.first().and_then(Value::as_literal);
                let value = kv.get(1);
                match (name, value, kv.len()) {
                    (Some(name), Some(value), 2) => {
                        let resolved = resolve_to_string(value, scope)?;
                        scope.insert(name.to_string(), resolved);
                    }
                    _ => {
                        return Err(SubstError::MalformedDefinition {
                            found: v.to_string(),
                        })
                    }
                }
            }
            other => {
                return Err(SubstError::MalformedDefinition {
                    found: other.to_string(),
                })
            }
        }
    }
    Ok(())
}

fn subst_value(v: &Value, scope: &HashMap<String, String>) -> Result<Value, SubstError> {
    match v {
        Value::Literal(s) => Ok(Value::Literal(s.clone())),
        Value::Variable(name) => scope
            .get(name)
            .map(|s| Value::Literal(s.clone()))
            .ok_or_else(|| SubstError::Undefined { name: name.clone() }),
        Value::Sequence(items) => Ok(Value::Sequence(
            items
                .iter()
                .map(|i| subst_value(i, scope))
                .collect::<Result<_, _>>()?,
        )),
        Value::Concat(parts) => {
            let resolved: Vec<Value> = parts
                .iter()
                .map(|p| subst_value(p, scope))
                .collect::<Result<_, _>>()?;
            // With variables resolved every part is normally a literal;
            // flatten the chain into one. A sequence inside a concat has
            // no string form, so such chains are kept structural.
            if resolved.iter().all(|p| matches!(p, Value::Literal(_))) {
                let mut s = String::new();
                for p in &resolved {
                    if let Value::Literal(l) = p {
                        s.push_str(l);
                    }
                }
                Ok(Value::Literal(s))
            } else {
                Ok(Value::Concat(resolved))
            }
        }
    }
}

fn resolve_to_string(v: &Value, scope: &HashMap<String, String>) -> Result<String, SubstError> {
    match subst_value(v, scope)? {
        Value::Literal(s) => Ok(s),
        other => Err(SubstError::MalformedDefinition {
            found: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn env(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn ambient_variable() {
        let spec = parse("(directory=$(HOME))").unwrap();
        let out = substitute(&spec, &env(&[("HOME", "/home/gregor")])).unwrap();
        assert_eq!(out.get_literal("directory"), Some("/home/gregor"));
    }

    #[test]
    fn concat_flattens() {
        let spec = parse("(directory=$(HOME) # /data # /sub)").unwrap();
        let out = substitute(&spec, &env(&[("HOME", "/h")])).unwrap();
        assert_eq!(out.get_literal("directory"), Some("/h/data/sub"));
    }

    #[test]
    fn rslsubstitution_defines_and_disappears() {
        let spec =
            parse("&(rslsubstitution=(BASE /opt/grid))(executable=$(BASE) # /bin/run)").unwrap();
        let out = substitute(&spec, &HashMap::new()).unwrap();
        assert_eq!(out.get_literal("executable"), Some("/opt/grid/bin/run"));
        assert!(out.get("rslsubstitution").is_none());
    }

    #[test]
    fn definition_may_reference_earlier_definitions() {
        let spec =
            parse("&(rslsubstitution=(A /a))(rslsubstitution=(B $(A) # /b))(directory=$(B))")
                .unwrap();
        let out = substitute(&spec, &HashMap::new()).unwrap();
        assert_eq!(out.get_literal("directory"), Some("/a/b"));
    }

    #[test]
    fn undefined_variable_errors() {
        let spec = parse("(directory=$(NOPE))").unwrap();
        match substitute(&spec, &HashMap::new()) {
            Err(SubstError::Undefined { name }) => assert_eq!(name, "NOPE"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_definition_errors() {
        for bad in [
            "(rslsubstitution=plain)",
            "(rslsubstitution=(ONLYNAME))",
            "(rslsubstitution=(A b c))",
        ] {
            let spec = parse(bad).unwrap();
            assert!(
                matches!(
                    substitute(&spec, &HashMap::new()),
                    Err(SubstError::MalformedDefinition { .. })
                ),
                "{bad} should be malformed"
            );
        }
    }

    #[test]
    fn multiple_definitions_in_one_relation() {
        let spec = parse("&(rslsubstitution=(A 1)(B 2))(x=$(A))(y=$(B))").unwrap();
        let out = substitute(&spec, &HashMap::new()).unwrap();
        assert_eq!(out.get_literal("x"), Some("1"));
        assert_eq!(out.get_literal("y"), Some("2"));
    }

    #[test]
    fn multi_request_scopes_isolated() {
        let spec =
            parse("+(&(rslsubstitution=(V one))(a=$(V)))(&(rslsubstitution=(V two))(a=$(V)))")
                .unwrap();
        let out = substitute(&spec, &HashMap::new()).unwrap();
        match out {
            Spec::Multi(parts) => {
                assert_eq!(parts[0].get_literal("a"), Some("one"));
                assert_eq!(parts[1].get_literal("a"), Some("two"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn variables_inside_sequences() {
        let spec = parse("(environment=(HOME $(H)))").unwrap();
        let out = substitute(&spec, &env(&[("H", "/home/x")])).unwrap();
        let rel = out.get("environment").unwrap();
        match &rel.values[0] {
            Value::Sequence(kv) => assert_eq!(kv[1].as_literal(), Some("/home/x")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn untouched_spec_passes_through() {
        let spec = parse("&(executable=/bin/ls)(count=3)").unwrap();
        let out = substitute(&spec, &HashMap::new()).unwrap();
        assert_eq!(out.get_literal("executable"), Some("/bin/ls"));
        assert_eq!(out.get_literal("count"), Some("3"));
    }
}
