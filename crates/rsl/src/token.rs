//! RSL lexer.

use std::fmt;

/// One lexical token of an RSL specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `+`
    Plus,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `#` — string concatenation.
    Hash,
    /// `$` — introduces a variable reference `$(NAME)`.
    Dollar,
    /// A bare or quoted string. The `quoted` flag is preserved so the
    /// printer can round-trip strings that *look* like operators.
    Str {
        /// Decoded contents.
        text: String,
        /// Whether the source was quoted.
        quoted: bool,
    },
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Plus => write!(f, "+"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Hash => write!(f, "#"),
            Token::Dollar => write!(f, "$"),
            Token::Str { text, .. } => write!(f, "{text}"),
        }
    }
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the failure.
    pub position: usize,
    /// Description.
    pub reason: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.reason)
    }
}

impl std::error::Error for LexError {}

/// Characters that terminate an unquoted string.
fn is_special(c: char) -> bool {
    matches!(
        c,
        '(' | ')' | '&' | '|' | '+' | '=' | '<' | '>' | '!' | '#' | '$' | '"' | '\''
    ) || c.is_whitespace()
}

/// Tokenize an RSL source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = src.char_indices().peekable();
    while let Some(&(pos, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '&' => {
                chars.next();
                tokens.push(Token::Amp);
            }
            '|' => {
                chars.next();
                tokens.push(Token::Pipe);
            }
            '+' => {
                chars.next();
                tokens.push(Token::Plus);
            }
            '#' => {
                chars.next();
                tokens.push(Token::Hash);
            }
            '$' => {
                chars.next();
                tokens.push(Token::Dollar);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Eq);
            }
            '!' => {
                chars.next();
                match chars.peek() {
                    Some(&(_, '=')) => {
                        chars.next();
                        tokens.push(Token::Ne);
                    }
                    _ => {
                        return Err(LexError {
                            position: pos,
                            reason: "'!' must be followed by '='".to_string(),
                        })
                    }
                }
            }
            '<' => {
                chars.next();
                if let Some(&(_, '=')) = chars.peek() {
                    chars.next();
                    tokens.push(Token::Le);
                } else {
                    tokens.push(Token::Lt);
                }
            }
            '>' => {
                chars.next();
                if let Some(&(_, '=')) = chars.peek() {
                    chars.next();
                    tokens.push(Token::Ge);
                } else {
                    tokens.push(Token::Gt);
                }
            }
            quote @ ('"' | '\'') => {
                chars.next();
                let mut text = String::new();
                loop {
                    match chars.next() {
                        Some((_, ch)) if ch == quote => {
                            // Doubled quote is an escaped quote.
                            if let Some(&(_, next)) = chars.peek() {
                                if next == quote {
                                    chars.next();
                                    text.push(quote);
                                    continue;
                                }
                            }
                            break;
                        }
                        Some((_, ch)) => text.push(ch),
                        None => {
                            return Err(LexError {
                                position: pos,
                                reason: "unterminated quoted string".to_string(),
                            })
                        }
                    }
                }
                tokens.push(Token::Str { text, quoted: true });
            }
            _ => {
                let mut text = String::new();
                while let Some(&(_, ch)) = chars.peek() {
                    if is_special(ch) {
                        break;
                    }
                    text.push(ch);
                    chars.next();
                }
                tokens.push(Token::Str {
                    text,
                    quoted: false,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare(s: &str) -> Token {
        Token::Str {
            text: s.to_string(),
            quoted: false,
        }
    }

    #[test]
    fn lex_simple_relation() {
        let toks = lex("(executable=/bin/date)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                bare("executable"),
                Token::Eq,
                bare("/bin/date"),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lex_boolean_ops() {
        let toks = lex("&(a=1)(b=2)").unwrap();
        assert_eq!(toks[0], Token::Amp);
        let toks = lex("|(a=1)").unwrap();
        assert_eq!(toks[0], Token::Pipe);
        let toks = lex("+(&(a=1))").unwrap();
        assert_eq!(toks[0], Token::Plus);
    }

    #[test]
    fn lex_comparison_ops() {
        let toks = lex("(memory>=64)(x<5)(y<=9)(z>1)(w!=0)").unwrap();
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Ne));
    }

    #[test]
    fn lex_quoted_strings() {
        let toks = lex(r#"(name="hello world")"#).unwrap();
        assert_eq!(
            toks[3],
            Token::Str {
                text: "hello world".to_string(),
                quoted: true
            }
        );
        // Single quotes and doubled-quote escapes.
        let toks = lex("(a='it''s')").unwrap();
        assert_eq!(
            toks[3],
            Token::Str {
                text: "it's".to_string(),
                quoted: true
            }
        );
        let toks = lex(r#"(a="say ""hi""")"#).unwrap();
        assert_eq!(
            toks[3],
            Token::Str {
                text: "say \"hi\"".to_string(),
                quoted: true
            }
        );
    }

    #[test]
    fn lex_variable_and_concat() {
        let toks = lex("(dir=$(HOME)#/data)").unwrap();
        assert!(toks.contains(&Token::Dollar));
        assert!(toks.contains(&Token::Hash));
    }

    #[test]
    fn lex_errors() {
        assert!(lex("(a=\"unterminated").is_err());
        assert!(lex("(a!b)").is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let a = lex("( a = b )").unwrap();
        let b = lex("(a=b)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quoted_operator_lookalikes_stay_strings() {
        let toks = lex(r#"(a="(=)&")"#).unwrap();
        assert_eq!(
            toks[3],
            Token::Str {
                text: "(=)&".to_string(),
                quoted: true
            }
        );
    }
}
