//! Recursive-descent RSL parser.

use crate::ast::{BoolOp, RelOp, Relation, Spec, Value};
use crate::token::{lex, LexError, Token};
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the failure.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RSL parse error: {}", self.reason)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            reason: e.to_string(),
        }
    }
}

/// Parse an RSL specification.
///
/// Top-level forms:
/// * `&(...)(...)` / `|(...)(...)` — explicit boolean;
/// * `+(...)(...)` — multi-request;
/// * `(...)(...)` — bare relation list, an implicit conjunction
///   (a single bare relation parses to [`Spec::Relation`]).
pub fn parse(src: &str) -> Result<Spec, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let spec = p.parse_top()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            reason: format!("trailing tokens starting at '{}'", p.tokens[p.pos]),
        });
    }
    Ok(spec)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(ParseError {
                reason: format!("expected '{want}', found '{t}'"),
            }),
            None => Err(ParseError {
                reason: format!("expected '{want}', found end of input"),
            }),
        }
    }

    fn parse_top(&mut self) -> Result<Spec, ParseError> {
        match self.peek() {
            Some(Token::Amp) => {
                self.next();
                Ok(Spec::Boolean {
                    op: BoolOp::And,
                    specs: self.parse_groups()?,
                })
            }
            Some(Token::Pipe) => {
                self.next();
                Ok(Spec::Boolean {
                    op: BoolOp::Or,
                    specs: self.parse_groups()?,
                })
            }
            Some(Token::Plus) => {
                self.next();
                Ok(Spec::Multi(self.parse_groups()?))
            }
            Some(Token::LParen) => {
                let groups = self.parse_groups()?;
                let mut iter = groups.into_iter();
                match (iter.next(), iter.next()) {
                    (Some(only), None) => Ok(only),
                    // Bare relation list: implicit conjunction.
                    (first, second) => Ok(Spec::Boolean {
                        op: BoolOp::And,
                        specs: first.into_iter().chain(second).chain(iter).collect(),
                    }),
                }
            }
            Some(t) => Err(ParseError {
                reason: format!("specification cannot start with '{t}'"),
            }),
            None => Err(ParseError {
                reason: "empty specification".to_string(),
            }),
        }
    }

    /// One or more `'(' inner ')'` groups.
    fn parse_groups(&mut self) -> Result<Vec<Spec>, ParseError> {
        let mut out = Vec::new();
        while matches!(self.peek(), Some(Token::LParen)) {
            self.next();
            let spec = self.parse_inner()?;
            self.expect(&Token::RParen)?;
            out.push(spec);
        }
        if out.is_empty() {
            return Err(ParseError {
                reason: "expected at least one '(...)' group".to_string(),
            });
        }
        Ok(out)
    }

    /// The contents of a group: a nested boolean/multi, or a relation.
    fn parse_inner(&mut self) -> Result<Spec, ParseError> {
        match self.peek() {
            Some(Token::Amp) => {
                self.next();
                Ok(Spec::Boolean {
                    op: BoolOp::And,
                    specs: self.parse_groups()?,
                })
            }
            Some(Token::Pipe) => {
                self.next();
                Ok(Spec::Boolean {
                    op: BoolOp::Or,
                    specs: self.parse_groups()?,
                })
            }
            Some(Token::Plus) => {
                self.next();
                Ok(Spec::Multi(self.parse_groups()?))
            }
            // A nested parenthesized spec: `((a=1)(b=2))`.
            Some(Token::LParen) => {
                let groups = self.parse_groups()?;
                let mut iter = groups.into_iter();
                match (iter.next(), iter.next()) {
                    (Some(only), None) => Ok(only),
                    (first, second) => Ok(Spec::Boolean {
                        op: BoolOp::And,
                        specs: first.into_iter().chain(second).chain(iter).collect(),
                    }),
                }
            }
            _ => self.parse_relation().map(Spec::Relation),
        }
    }

    fn parse_relation(&mut self) -> Result<Relation, ParseError> {
        let attribute = match self.next() {
            Some(Token::Str { text, .. }) => text.to_ascii_lowercase(),
            other => {
                return Err(ParseError {
                    reason: format!("expected attribute name, found {other:?}"),
                })
            }
        };
        let op = match self.next() {
            Some(Token::Eq) => RelOp::Eq,
            Some(Token::Ne) => RelOp::Ne,
            Some(Token::Lt) => RelOp::Lt,
            Some(Token::Le) => RelOp::Le,
            Some(Token::Gt) => RelOp::Gt,
            Some(Token::Ge) => RelOp::Ge,
            other => {
                return Err(ParseError {
                    reason: format!(
                        "expected relational operator after '{attribute}', found {other:?}"
                    ),
                })
            }
        };
        let mut values = Vec::new();
        while !matches!(self.peek(), Some(Token::RParen) | None) {
            values.push(self.parse_value()?);
        }
        if values.is_empty() {
            return Err(ParseError {
                reason: format!("relation '{attribute}' has no value"),
            });
        }
        Ok(Relation {
            attribute,
            op,
            values,
        })
    }

    /// `primary ('#' primary)*` — a concat chain.
    fn parse_value(&mut self) -> Result<Value, ParseError> {
        let first = self.parse_primary()?;
        if !matches!(self.peek(), Some(Token::Hash)) {
            return Ok(first);
        }
        let mut parts = vec![first];
        while matches!(self.peek(), Some(Token::Hash)) {
            self.next();
            parts.push(self.parse_primary()?);
        }
        Ok(Value::Concat(parts))
    }

    fn parse_primary(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token::Str { text, .. }) => Ok(Value::Literal(text)),
            Some(Token::Dollar) => {
                self.expect(&Token::LParen)?;
                let name = match self.next() {
                    Some(Token::Str { text, .. }) => text,
                    other => {
                        return Err(ParseError {
                            reason: format!("expected variable name, found {other:?}"),
                        })
                    }
                };
                self.expect(&Token::RParen)?;
                Ok(Value::Variable(name))
            }
            Some(Token::LParen) => {
                let mut items = Vec::new();
                while !matches!(self.peek(), Some(Token::RParen) | None) {
                    items.push(self.parse_value()?);
                }
                self.expect(&Token::RParen)?;
                Ok(Value::Sequence(items))
            }
            other => Err(ParseError {
                reason: format!("expected a value, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Spec {
        let spec = parse(src).unwrap();
        let printed = spec.to_string();
        let reparsed =
            parse(&printed).unwrap_or_else(|e| panic!("reparse of '{printed}' failed: {e}"));
        assert_eq!(
            reparsed, spec,
            "roundtrip mismatch for '{src}' → '{printed}'"
        );
        spec
    }

    #[test]
    fn parse_classic_job() {
        let spec = roundtrip("&(executable=/bin/date)(arguments=-u)(count=2)");
        assert_eq!(spec.get_literal("executable"), Some("/bin/date"));
        assert_eq!(spec.get_literal("arguments"), Some("-u"));
        assert_eq!(spec.get_literal("count"), Some("2"));
    }

    #[test]
    fn parse_bare_relation_list() {
        let spec = roundtrip("(info=memory)(info=cpu)");
        assert_eq!(spec.get_all("info").len(), 2);
    }

    #[test]
    fn parse_single_bare_relation() {
        let spec = roundtrip("(info=all)");
        assert!(matches!(spec, Spec::Relation(_)));
    }

    #[test]
    fn parse_paper_jar_submission() {
        // From §7: (executable=myJavaApplication.jar)
        let spec = roundtrip("(executable=myJavaApplication.jar)");
        assert_eq!(
            spec.get_literal("executable"),
            Some("myJavaApplication.jar")
        );
    }

    #[test]
    fn parse_paper_timeout_action() {
        // From §6.6: (executable=command)(timeout=1000)(action=cancel)
        let spec = roundtrip("(executable=command)(timeout=1000)(action=cancel)");
        assert_eq!(spec.get_literal("timeout"), Some("1000"));
        assert_eq!(spec.get_literal("action"), Some("cancel"));
    }

    #[test]
    fn parse_multi_request() {
        let spec = roundtrip("+(&(executable=a.out))(&(executable=b.out))");
        match spec {
            Spec::Multi(parts) => {
                assert_eq!(parts.len(), 2);
                assert_eq!(parts[0].get_literal("executable"), Some("a.out"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_disjunction() {
        let spec = roundtrip("|(count=1)(count=2)");
        match &spec {
            Spec::Boolean {
                op: BoolOp::Or,
                specs,
            } => assert_eq!(specs.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_nested_boolean() {
        let spec = roundtrip("&(executable=x)(|(arch=x86)(arch=sparc))");
        assert_eq!(spec.get_literal("executable"), Some("x"));
        // The disjunction is one operand of the And.
        match &spec {
            Spec::Boolean { specs, .. } => {
                assert!(matches!(specs[1], Spec::Boolean { op: BoolOp::Or, .. }))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_multiple_values() {
        let spec = roundtrip("(arguments=-l -a /tmp)");
        match &spec {
            Spec::Relation(r) => assert_eq!(r.values.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_environment_sequences() {
        let spec = roundtrip("&(executable=x)(environment=(HOME /home/g)(LANG C))");
        let env = spec.get("environment").unwrap();
        assert_eq!(env.values.len(), 2);
        match &env.values[0] {
            Value::Sequence(kv) => {
                assert_eq!(kv[0].as_literal(), Some("HOME"));
                assert_eq!(kv[1].as_literal(), Some("/home/g"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_variable_and_concat() {
        let spec = roundtrip("(directory=$(HOME) # /data)");
        match &spec {
            Spec::Relation(r) => match &r.values[0] {
                Value::Concat(parts) => {
                    assert_eq!(parts[0], Value::Variable("HOME".to_string()));
                    assert_eq!(parts[1].as_literal(), Some("/data"));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_comparison_operators() {
        let spec = roundtrip("&(memory>=64)(disk>1000)(priority<=5)");
        assert_eq!(spec.get("memory").unwrap().op, RelOp::Ge);
        assert_eq!(spec.get("disk").unwrap().op, RelOp::Gt);
        assert_eq!(spec.get("priority").unwrap().op, RelOp::Le);
    }

    #[test]
    fn parse_quoted_values() {
        let spec = roundtrip(r#"(arguments="hello world" "two  spaces")"#);
        match &spec {
            Spec::Relation(r) => {
                assert_eq!(r.values[0].as_literal(), Some("hello world"));
                assert_eq!(r.values[1].as_literal(), Some("two  spaces"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_names_lowercased() {
        let spec = parse("(EXECUTABLE=/bin/ls)").unwrap();
        assert_eq!(spec.get_literal("executable"), Some("/bin/ls"));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "()",
            "(a)",
            "(a=)",
            "(a=b",
            "a=b",
            "&",
            "&(a=b)x",
            "(=b)",
            "($(X)=y)",
            "(a=$(unclosed)",
        ] {
            assert!(parse(bad).is_err(), "'{bad}' should fail");
        }
    }

    #[test]
    fn empty_sequence_value() {
        let spec = roundtrip("(arguments=())");
        match &spec {
            Spec::Relation(r) => assert_eq!(r.values[0], Value::Sequence(vec![])),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deeply_nested() {
        roundtrip("&(a=1)(&(b=2)(&(c=3)(|(d=4)(e=(f (g h))))))");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A literal that may need quoting.
    fn arb_literal() -> impl Strategy<Value = String> {
        prop_oneof![
            "[a-z0-9/_.-]{1,12}",
            // Strings with specials that force quoting.
            "[ a-z=&|()#$\"']{0,10}",
        ]
    }

    fn arb_varname() -> impl Strategy<Value = String> {
        "[A-Z][A-Z0-9_]{0,8}".prop_map(|s| s)
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            arb_literal().prop_map(Value::Literal),
            arb_varname().prop_map(Value::Variable),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Sequence),
                // Concat chains: 2+ parts, no nested Concat (parser
                // normalizes chains to a flat Concat).
                prop::collection::vec(
                    prop_oneof![
                        arb_literal().prop_map(Value::Literal),
                        arb_varname().prop_map(Value::Variable),
                    ],
                    2..4
                )
                .prop_map(Value::Concat),
            ]
        })
    }

    fn arb_relation() -> impl Strategy<Value = Relation> {
        (
            "[a-z][a-z0-9_]{0,10}",
            prop_oneof![
                Just(RelOp::Eq),
                Just(RelOp::Ne),
                Just(RelOp::Lt),
                Just(RelOp::Le),
                Just(RelOp::Gt),
                Just(RelOp::Ge),
            ],
            prop::collection::vec(arb_value(), 1..4),
        )
            .prop_map(|(attribute, op, values)| Relation {
                attribute,
                op,
                values,
            })
    }

    fn arb_spec() -> impl Strategy<Value = Spec> {
        let leaf = arb_relation().prop_map(Spec::Relation);
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                (
                    prop_oneof![Just(BoolOp::And), Just(BoolOp::Or)],
                    prop::collection::vec(inner.clone(), 1..4)
                )
                    .prop_map(|(op, specs)| Spec::Boolean { op, specs }),
                prop::collection::vec(inner, 1..3).prop_map(Spec::Multi),
            ]
        })
    }

    proptest! {
        /// The fundamental parser property: printing then reparsing any
        /// AST yields the same AST.
        #[test]
        fn print_parse_roundtrip(spec in arb_spec()) {
            let printed = spec.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("reparse of '{printed}' failed: {e}"));
            prop_assert_eq!(reparsed, spec);
        }

        /// Lexing never panics on arbitrary input.
        #[test]
        fn lex_never_panics(s in "\\PC{0,64}") {
            let _ = crate::token::lex(&s);
        }

        /// Parsing never panics on arbitrary input.
        #[test]
        fn parse_never_panics(s in "\\PC{0,64}") {
            let _ = parse(&s);
        }
    }
}
