//! RSL abstract syntax tree and canonical printer.

use std::fmt;

/// A complete RSL specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Spec {
    /// `&(...)(...)` or `|(...)(...)` — also produced for a bare
    /// top-level relation list, which RSL treats as a conjunction.
    Boolean {
        /// `&` or `|`.
        op: BoolOp,
        /// The operands, each a relation or nested spec.
        specs: Vec<Spec>,
    },
    /// A single `(attribute op value...)` relation.
    Relation(Relation),
    /// `+(...)(...)` — a multi-request of independent specifications.
    Multi(Vec<Spec>),
}

/// Boolean combinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOp {
    /// Conjunction (`&`).
    And,
    /// Disjunction (`|`).
    Or,
}

/// Relational operator between an attribute and its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelOp::Eq => "=",
            RelOp::Ne => "!=",
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// One `attribute op value...` relation. Attribute names are
/// case-insensitive in RSL; they are lowercased at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Lowercased attribute name.
    pub attribute: String,
    /// Relational operator.
    pub op: RelOp,
    /// One or more values (RSL allows `(arguments=-l -a /tmp)`).
    pub values: Vec<Value>,
}

impl Relation {
    /// An equality relation with a single literal value.
    pub fn eq(attribute: &str, value: &str) -> Self {
        Relation {
            attribute: attribute.to_ascii_lowercase(),
            op: RelOp::Eq,
            values: vec![Value::literal(value)],
        }
    }

    /// The single literal value, if this relation has exactly one literal.
    pub fn single_literal(&self) -> Option<&str> {
        match self.values.as_slice() {
            [Value::Literal(s)] => Some(s),
            _ => None,
        }
    }
}

/// An RSL value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A string literal (quoted or bare in the source).
    Literal(String),
    /// A parenthesized sub-sequence: `(a b (c d))`.
    Sequence(Vec<Value>),
    /// A variable reference: `$(HOME)`.
    Variable(String),
    /// Concatenation with `#`: `$(HOME) # "/data"`.
    Concat(Vec<Value>),
}

impl Value {
    /// A literal value.
    pub fn literal(s: &str) -> Value {
        Value::Literal(s.to_string())
    }

    /// The literal text, if this is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Value::Literal(s) => Some(s),
            _ => None,
        }
    }
}

impl Spec {
    /// Iterate over all relations of a conjunctive specification in
    /// source order, descending through nested `&` specs. `|` and `+`
    /// branches are not descended into (their relations are alternatives,
    /// not facts).
    pub fn relations(&self) -> Vec<&Relation> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations<'a>(&'a self, out: &mut Vec<&'a Relation>) {
        match self {
            Spec::Relation(r) => out.push(r),
            Spec::Boolean {
                op: BoolOp::And,
                specs,
            } => {
                for s in specs {
                    s.collect_relations(out);
                }
            }
            _ => {}
        }
    }

    /// First relation with the given (case-insensitive) attribute.
    pub fn get(&self, attribute: &str) -> Option<&Relation> {
        let want = attribute.to_ascii_lowercase();
        self.relations().into_iter().find(|r| r.attribute == want)
    }

    /// All relations with the given attribute, in order — needed for the
    /// paper's concatenated queries `(info=memory)(info=cpu)`.
    pub fn get_all(&self, attribute: &str) -> Vec<&Relation> {
        let want = attribute.to_ascii_lowercase();
        self.relations()
            .into_iter()
            .filter(|r| r.attribute == want)
            .collect()
    }

    /// First single-literal value of the given attribute.
    pub fn get_literal(&self, attribute: &str) -> Option<&str> {
        self.get(attribute).and_then(|r| r.single_literal())
    }
}

// ---------------------------------------------------------------------
// Canonical printing. `parse(print(spec)) == spec` is property-tested.
// ---------------------------------------------------------------------

/// Whether a literal can be printed bare, without quotes.
fn needs_quoting(s: &str) -> bool {
    s.is_empty()
        || s.chars().any(|c| {
            matches!(
                c,
                '(' | ')' | '&' | '|' | '+' | '=' | '<' | '>' | '!' | '#' | '$' | '"' | '\''
            ) || c.is_whitespace()
        })
}

fn fmt_literal(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if needs_quoting(s) {
        write!(f, "\"{}\"", s.replace('"', "\"\""))
    } else {
        write!(f, "{s}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Literal(s) => fmt_literal(s, f),
            Value::Sequence(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Variable(name) => write!(f, "$({name})"),
            Value::Concat(vs) => {
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " # ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{}", self.attribute, self.op)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Spec::Relation(r) => write!(f, "{r}"),
            Spec::Boolean { op, specs } => {
                write!(f, "{}", if *op == BoolOp::And { "&" } else { "|" })?;
                for s in specs {
                    match s {
                        Spec::Relation(r) => write!(f, "{r}")?,
                        other => write!(f, "({other})")?,
                    }
                }
                Ok(())
            }
            Spec::Multi(specs) => {
                write!(f, "+")?;
                for s in specs {
                    match s {
                        Spec::Relation(r) => write!(f, "{r}")?,
                        other => write!(f, "({other})")?,
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_display() {
        let r = Relation::eq("executable", "/bin/date");
        assert_eq!(r.to_string(), "(executable=/bin/date)");
    }

    #[test]
    fn quoting_in_display() {
        let r = Relation::eq("arguments", "hello world");
        assert_eq!(r.to_string(), "(arguments=\"hello world\")");
        let r = Relation::eq("a", "has\"quote");
        assert_eq!(r.to_string(), "(a=\"has\"\"quote\")");
        let r = Relation::eq("a", "");
        assert_eq!(r.to_string(), "(a=\"\")");
    }

    #[test]
    fn spec_display_and() {
        let spec = Spec::Boolean {
            op: BoolOp::And,
            specs: vec![
                Spec::Relation(Relation::eq("executable", "/bin/ls")),
                Spec::Relation(Relation::eq("count", "2")),
            ],
        };
        assert_eq!(spec.to_string(), "&(executable=/bin/ls)(count=2)");
    }

    #[test]
    fn get_and_get_all() {
        let spec = Spec::Boolean {
            op: BoolOp::And,
            specs: vec![
                Spec::Relation(Relation::eq("info", "memory")),
                Spec::Relation(Relation::eq("info", "cpu")),
                Spec::Relation(Relation::eq("format", "xml")),
            ],
        };
        assert_eq!(spec.get_literal("format"), Some("xml"));
        assert_eq!(spec.get_all("info").len(), 2);
        assert_eq!(spec.get_literal("INFO"), Some("memory"));
        assert_eq!(spec.get("missing"), None);
    }

    #[test]
    fn or_branches_not_flattened() {
        let spec = Spec::Boolean {
            op: BoolOp::Or,
            specs: vec![
                Spec::Relation(Relation::eq("a", "1")),
                Spec::Relation(Relation::eq("b", "2")),
            ],
        };
        assert!(spec.relations().is_empty());
    }

    #[test]
    fn nested_and_flattened() {
        let inner = Spec::Boolean {
            op: BoolOp::And,
            specs: vec![Spec::Relation(Relation::eq("x", "1"))],
        };
        let spec = Spec::Boolean {
            op: BoolOp::And,
            specs: vec![inner, Spec::Relation(Relation::eq("y", "2"))],
        };
        assert_eq!(spec.relations().len(), 2);
    }

    #[test]
    fn variable_and_concat_display() {
        let v = Value::Concat(vec![
            Value::Variable("HOME".to_string()),
            Value::literal("/data"),
        ]);
        assert_eq!(v.to_string(), "$(HOME) # /data");
    }

    #[test]
    fn sequence_display() {
        let v = Value::Sequence(vec![
            Value::literal("a"),
            Value::Sequence(vec![Value::literal("b"), Value::literal("c")]),
        ]);
        assert_eq!(v.to_string(), "(a (b c))");
    }
}
