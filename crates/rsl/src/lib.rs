#![warn(missing_docs)]

//! The Globus Resource Specification Language (RSL) and the InfoGram
//! xRSL extensions.
//!
//! RSL "makes it possible to quickly and uniformly specify jobs to be run
//! as part of a Globus enabled Grid" (§2 of the paper). A specification is
//! a list of parenthesized `attribute op value` relations, optionally
//! combined with the boolean operators `&` (conjunction), `|`
//! (disjunction) and `+` (multi-request):
//!
//! ```text
//! &(executable=/bin/date)(arguments=-u)(count=2)
//! (info=memory)(info=cpu)
//! +(&(executable=a.out))(&(executable=b.out))
//! ```
//!
//! The InfoGram paper extends RSL with the tags `schema`, `info`,
//! `filter`, `response`, `performance`, `quality`, and `format` (§6.6),
//! plus the planned `timeout`/`action` pair — "we call the result xRSL".
//! The [`xrsl`] module gives a typed view over a parsed specification that
//! extracts those tags and classifies the request as a job submission, an
//! information query, or both.
//!
//! Values support quoting (`"..."`, `'...'`, with doubled-quote escapes),
//! implicit sequences (`(arguments=-l -a)`), explicit sub-sequences,
//! variable references (`$(HOME)`), string concatenation (`#`), and
//! variable definition via the classic `rslsubstitution` attribute.

pub mod ast;
pub mod parser;
pub mod subst;
pub mod token;
pub mod xrsl;

pub use ast::{BoolOp, RelOp, Relation, Spec, Value};
pub use parser::{parse, ParseError};
pub use subst::{substitute, SubstError};
pub use xrsl::{
    InfoSelector, JobRequest, JobType, OutputFormat, RequestAction, RequestKind, ResponseMode,
    TimeoutAction, XrslError, XrslRequest,
};
