//! xRSL: the typed view over a specification, including the InfoGram
//! extension tags.
//!
//! §6.6 of the paper adds to RSL the tags `schema`, `info`, `filter`,
//! `response`, `performance`, `quality`, and `format`, plus the planned
//! `timeout`/`action` extension. [`XrslRequest::from_spec`] extracts all of
//! them and the classic GRAM job attributes, and classifies the request.

use crate::ast::{Spec, Value};
use crate::parser::{parse, ParseError};
use std::fmt;
use std::time::Duration;

/// What a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Only a job submission (`executable` present).
    Job,
    /// Only an information query (`info` present).
    Info,
    /// Both in one specification. The paper treats "job submissions and
    /// information queries alike", but a single request must still be one
    /// or the other; the service rejects `Both` with a protocol error.
    Both,
    /// Neither — an empty or purely administrative specification.
    Empty,
}

/// One `(info=...)` selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InfoSelector {
    /// `(info=all)` — every configured keyword.
    All,
    /// `(info=schema)` — service reflection: return the schema.
    Schema,
    /// `(info=Keyword)` — one key information provider.
    Keyword(String),
}

/// `(response=...)` cache behaviour (§6.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponseMode {
    /// Execute the provider now, regardless of TTL; updates the cache.
    Immediate,
    /// Serve from cache if valid, else refresh first (the default).
    #[default]
    Cached,
    /// Serve whatever was stored last, without refreshing.
    Last,
}

/// `(format=...)` output rendering (§5.5, §6.6: "The supported formats are
/// LDIF and XML").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// LDAP Data Interchange Format — the MDS-compatible default.
    #[default]
    Ldif,
    /// XML elements.
    Xml,
    /// Directory Services Markup Language — "it is straightforward to
    /// support other formats such as DSML" (§6.6); here it is.
    Dsml,
    /// Plain `key: value` lines (our debugging addition).
    Plain,
}

impl fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputFormat::Ldif => write!(f, "ldif"),
            OutputFormat::Xml => write!(f, "xml"),
            OutputFormat::Dsml => write!(f, "dsml"),
            OutputFormat::Plain => write!(f, "plain"),
        }
    }
}

/// `(action=...)` on timeout (§6.6 extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeoutAction {
    /// Cancel the command when the timeout fires (the default).
    #[default]
    Cancel,
    /// Throw an exception to the client but let the command continue.
    Exception,
}

/// Request-level `(action=...)` verbs that change what the submit *is*,
/// rather than what happens at a timeout: a persistent push
/// subscription, or the release of one. (`cancel`/`exception` keep
/// their §6.6 timeout meaning and leave this at
/// [`RequestAction::None`].)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RequestAction {
    /// An ordinary one-shot request.
    #[default]
    None,
    /// `(action=subscribe)`: register the `(info=...)` selectors as a
    /// persistent query; the service streams incremental updates until
    /// unsubscribe, disconnect, or slow-consumer eviction.
    Subscribe,
    /// `(action=unsubscribe)(subscription=N)`: end persistent query N.
    Unsubscribe,
}

/// How the job should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobType {
    /// Plain forked process (the GRAM default).
    #[default]
    Fork,
    /// Batch queue submission.
    Batch,
    /// A Java-jar-style sandboxed job (§7: "execute pure Java code
    /// submitted as Java jar files"). Inferred when the executable ends
    /// in `.jar`.
    Jarlet,
}

/// The job-submission half of a request: classic GRAM attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Path of the executable.
    pub executable: String,
    /// Command-line arguments.
    pub arguments: Vec<String>,
    /// Environment variables.
    pub environment: Vec<(String, String)>,
    /// Working directory.
    pub directory: Option<String>,
    /// Number of instances (GRAM `count`), default 1.
    pub count: u32,
    /// Maximum wall time (GRAM `maxtime`, minutes).
    pub max_time: Option<Duration>,
    /// Where stdout goes (a path on the service side).
    pub stdout: Option<String>,
    /// Where stderr goes.
    pub stderr: Option<String>,
    /// Execution mode.
    pub job_type: JobType,
    /// Batch queue name (`queue=`), for batch jobs.
    pub queue: Option<String>,
    /// Matchmaking requirements (`requirements=(k v)(k v)`).
    pub requirements: Vec<(String, String)>,
    /// If true, restart the job automatically on failure (§6.1:
    /// "a fault tolerance mechanism that allows to restart a job upon
    /// failure"). `(restartonfail=N)` gives the retry budget.
    pub restart_on_fail: u32,
    /// The xRSL `(timeout=...)` deadline, copied from the request level
    /// because for a job submission it governs the job.
    pub timeout: Option<Duration>,
    /// What happens at the timeout (§6.6 extensions).
    pub timeout_action: TimeoutAction,
}

/// A fully extracted xRSL request.
#[derive(Debug, Clone, PartialEq)]
pub struct XrslRequest {
    /// Job half, if `executable` was present.
    pub job: Option<JobRequest>,
    /// Information selectors, in source order.
    pub info: Vec<InfoSelector>,
    /// Cache behaviour.
    pub response: ResponseMode,
    /// Quality threshold in percent (0–100): attributes whose degradation
    /// fell below it are refreshed (§6.6).
    pub quality: Option<f64>,
    /// Whether to attach per-keyword timing statistics.
    pub performance: bool,
    /// Output rendering.
    pub format: OutputFormat,
    /// Attribute filter (e.g. `Memory:free`); `None` returns everything.
    pub filter: Option<String>,
    /// Command/job timeout.
    pub timeout: Option<Duration>,
    /// What to do when the timeout fires.
    pub timeout_action: TimeoutAction,
    /// Request-level verb: one-shot (default), subscribe, or
    /// unsubscribe.
    pub action: RequestAction,
    /// The subscription id named by `(subscription=N)` (unsubscribe
    /// only).
    pub subscription: Option<u64>,
}

/// Every attribute name [`XrslRequest::from_spec`] understands: the
/// classic GRAM job attributes, the §6.6 extension tags, and
/// `rslsubstitution` (consumed by [`crate::subst`] before extraction, but
/// legal to leave in place).
pub const KNOWN_TAGS: &[&str] = &[
    // classic GRAM job attributes
    "executable",
    "arguments",
    "environment",
    "directory",
    "count",
    "maxtime",
    "stdout",
    "stderr",
    "jobtype",
    "queue",
    "requirements",
    "restartonfail",
    // variable definitions (crate::subst)
    "rslsubstitution",
    // §6.6 InfoGram extension tags
    "info",
    "response",
    "quality",
    "performance",
    "format",
    "filter",
    "timeout",
    "action",
    "subscription",
];

/// An xRSL-level validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XrslError {
    /// The underlying RSL failed to parse.
    Parse(ParseError),
    /// A tag had an unusable value.
    BadTag {
        /// Tag name.
        tag: String,
        /// Offending value.
        value: String,
        /// Expectation.
        expected: String,
    },
    /// A tag name outside the xRSL vocabulary ([`KNOWN_TAGS`]) — most
    /// likely a typo; attribute matching is already case-insensitive, so
    /// `(Info=…)` is fine but `(inof=…)` is not.
    UnknownTag {
        /// The unrecognized attribute name (lowercased by the parser).
        tag: String,
    },
    /// A required structural property failed.
    Structure(String),
}

impl fmt::Display for XrslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XrslError::Parse(e) => write!(f, "{e}"),
            XrslError::BadTag {
                tag,
                value,
                expected,
            } => write!(f, "bad ({tag}={value}): expected {expected}"),
            XrslError::UnknownTag { tag } => write!(
                f,
                "unknown xRSL tag ({tag}=…); known tags: {}",
                KNOWN_TAGS.join(", ")
            ),
            XrslError::Structure(s) => write!(f, "xRSL structure error: {s}"),
        }
    }
}

impl std::error::Error for XrslError {}

impl From<ParseError> for XrslError {
    fn from(e: ParseError) -> Self {
        XrslError::Parse(e)
    }
}

fn bad(tag: &str, value: &str, expected: &str) -> XrslError {
    XrslError::BadTag {
        tag: tag.to_string(),
        value: value.to_string(),
        expected: expected.to_string(),
    }
}

/// Flatten a relation's values to strings, descending one sequence level.
fn flat_strings(values: &[Value]) -> Vec<String> {
    let mut out = Vec::new();
    for v in values {
        match v {
            Value::Literal(s) => out.push(s.clone()),
            Value::Sequence(items) => {
                for i in items {
                    if let Some(s) = i.as_literal() {
                        out.push(s.to_string());
                    }
                }
            }
            other => out.push(other.to_string()),
        }
    }
    out
}

/// Extract `(k v)` pairs from a relation's sequence values.
fn kv_pairs(values: &[Value], tag: &str) -> Result<Vec<(String, String)>, XrslError> {
    let mut out = Vec::new();
    for v in values {
        match v {
            Value::Sequence(kv) if kv.len() == 2 => {
                match (kv[0].as_literal(), kv[1].as_literal()) {
                    (Some(k), Some(val)) => out.push((k.to_string(), val.to_string())),
                    _ => return Err(bad(tag, &v.to_string(), "(name value) pair")),
                }
            }
            other => return Err(bad(tag, &other.to_string(), "(name value) pair")),
        }
    }
    Ok(out)
}

impl XrslRequest {
    /// Parse xRSL source into one request. Multi-requests (`+`) are
    /// rejected here; use [`XrslRequest::parse_all`] to expand them.
    pub fn from_text(src: &str) -> Result<XrslRequest, XrslError> {
        let spec = parse(src)?;
        Self::from_spec(&spec)
    }

    /// Parse xRSL source, expanding a top-level multi-request into one
    /// request per branch.
    pub fn parse_all(src: &str) -> Result<Vec<XrslRequest>, XrslError> {
        let spec = parse(src)?;
        match spec {
            Spec::Multi(parts) => parts.iter().map(Self::from_spec).collect(),
            other => Ok(vec![Self::from_spec(&other)?]),
        }
    }

    /// Extract a typed request from a parsed specification.
    pub fn from_spec(spec: &Spec) -> Result<XrslRequest, XrslError> {
        if matches!(spec, Spec::Multi(_)) {
            return Err(XrslError::Structure(
                "multi-request (+) must be expanded with parse_all".to_string(),
            ));
        }

        // Reject tags outside the vocabulary up front: a typoed tag that
        // was silently ignored would change request semantics (the paper's
        // `(respones=last)` would quietly become `cached`).
        for rel in spec.relations() {
            if !KNOWN_TAGS.contains(&rel.attribute.as_str()) {
                return Err(XrslError::UnknownTag {
                    tag: rel.attribute.clone(),
                });
            }
        }

        // ---- info selectors ----
        let mut info = Vec::new();
        for rel in spec.get_all("info") {
            let values = flat_strings(&rel.values);
            if values.is_empty() {
                return Err(bad("info", "", "all, schema, or a keyword"));
            }
            for v in values {
                if v.is_empty() {
                    return Err(bad("info", &v, "all, schema, or a keyword"));
                }
                match v.to_ascii_lowercase().as_str() {
                    "all" => info.push(InfoSelector::All),
                    "schema" => info.push(InfoSelector::Schema),
                    _ => info.push(InfoSelector::Keyword(v)),
                }
            }
        }

        // ---- job half ----
        let job = match spec.get_literal("executable") {
            Some(executable) => {
                let executable = executable.to_string();
                let arguments = spec
                    .get("arguments")
                    .map(|r| flat_strings(&r.values))
                    .unwrap_or_default();
                let environment = match spec.get("environment") {
                    Some(r) => kv_pairs(&r.values, "environment")?,
                    None => Vec::new(),
                };
                let requirements = match spec.get("requirements") {
                    Some(r) => kv_pairs(&r.values, "requirements")?,
                    None => Vec::new(),
                };
                let count = match spec.get_literal("count") {
                    Some(c) => c
                        .parse::<u32>()
                        .ok()
                        .filter(|&c| c >= 1)
                        .ok_or_else(|| bad("count", c, "a positive integer"))?,
                    None => 1,
                };
                let max_time = match spec.get_literal("maxtime") {
                    Some(m) => Some(Duration::from_secs(
                        60 * m
                            .parse::<u64>()
                            .map_err(|_| bad("maxtime", m, "minutes as an integer"))?,
                    )),
                    None => None,
                };
                let explicit_type = match spec.get_literal("jobtype") {
                    Some("fork") => Some(JobType::Fork),
                    Some("batch") => Some(JobType::Batch),
                    Some("jarlet") | Some("jar") => Some(JobType::Jarlet),
                    Some(other) => return Err(bad("jobtype", other, "fork, batch, or jarlet")),
                    None => None,
                };
                let job_type = explicit_type.unwrap_or({
                    if executable.ends_with(".jar") {
                        JobType::Jarlet
                    } else {
                        JobType::Fork
                    }
                });
                let restart_on_fail = match spec.get_literal("restartonfail") {
                    Some(n) => n
                        .parse::<u32>()
                        .map_err(|_| bad("restartonfail", n, "a retry count"))?,
                    None => 0,
                };
                Some(JobRequest {
                    executable,
                    arguments,
                    environment,
                    directory: spec.get_literal("directory").map(str::to_string),
                    count,
                    max_time,
                    stdout: spec.get_literal("stdout").map(str::to_string),
                    stderr: spec.get_literal("stderr").map(str::to_string),
                    job_type,
                    queue: spec.get_literal("queue").map(str::to_string),
                    requirements,
                    restart_on_fail,
                    timeout: None, // patched below, after tag parsing
                    timeout_action: TimeoutAction::default(),
                })
            }
            None => None,
        };

        // ---- extension tags ----
        let response = match spec.get_literal("response") {
            Some("immediate") => ResponseMode::Immediate,
            Some("cached") => ResponseMode::Cached,
            Some("last") => ResponseMode::Last,
            Some(other) => return Err(bad("response", other, "immediate, cached, or last")),
            None => ResponseMode::default(),
        };
        let format = match spec.get_literal("format") {
            Some("ldif") => OutputFormat::Ldif,
            Some("xml") => OutputFormat::Xml,
            Some("dsml") => OutputFormat::Dsml,
            Some("plain") => OutputFormat::Plain,
            Some(other) => return Err(bad("format", other, "ldif, xml, dsml, or plain")),
            None => OutputFormat::default(),
        };
        let quality = match spec.get_literal("quality") {
            Some(q) => {
                let v: f64 = q
                    .parse()
                    .map_err(|_| bad("quality", q, "a percentage 0-100"))?;
                if !(0.0..=100.0).contains(&v) {
                    return Err(bad("quality", q, "a percentage 0-100"));
                }
                Some(v)
            }
            None => None,
        };
        let performance = match spec.get_literal("performance") {
            Some("true") | Some("yes") | Some("on") => true,
            Some("false") | Some("no") | Some("off") => false,
            Some(other) => return Err(bad("performance", other, "true or false")),
            None => false,
        };
        let timeout = match spec.get_literal("timeout") {
            Some(t) => {
                Some(Duration::from_millis(t.parse::<u64>().map_err(|_| {
                    bad("timeout", t, "milliseconds as an integer")
                })?))
            }
            None => None,
        };
        let mut action = RequestAction::None;
        let timeout_action = match spec.get_literal("action") {
            Some("cancel") => TimeoutAction::Cancel,
            Some("exception") => TimeoutAction::Exception,
            Some("subscribe") => {
                action = RequestAction::Subscribe;
                TimeoutAction::default()
            }
            Some("unsubscribe") => {
                action = RequestAction::Unsubscribe;
                TimeoutAction::default()
            }
            Some(other) => {
                return Err(bad(
                    "action",
                    other,
                    "cancel, exception, subscribe, or unsubscribe",
                ))
            }
            None => TimeoutAction::default(),
        };
        let subscription = match spec.get_literal("subscription") {
            Some(s) => Some(
                s.parse::<u64>()
                    .map_err(|_| bad("subscription", s, "a subscription id"))?,
            ),
            None => None,
        };

        // ---- persistent-query structure rules ----
        match action {
            RequestAction::Subscribe => {
                if job.is_some() {
                    return Err(XrslError::Structure(
                        "(action=subscribe) registers a persistent query; it cannot carry a job \
                         half — submit the job separately"
                            .to_string(),
                    ));
                }
                if info.is_empty() {
                    return Err(XrslError::Structure(
                        "(action=subscribe) requires at least one (info=...) selector to watch"
                            .to_string(),
                    ));
                }
            }
            RequestAction::Unsubscribe => {
                if subscription.is_none() {
                    return Err(XrslError::Structure(
                        "(action=unsubscribe) requires (subscription=N) naming the persistent \
                         query to end"
                            .to_string(),
                    ));
                }
                if job.is_some() || !info.is_empty() {
                    return Err(XrslError::Structure(
                        "(action=unsubscribe) takes only (subscription=N); drop the job/info tags"
                            .to_string(),
                    ));
                }
            }
            RequestAction::None => {
                if subscription.is_some() {
                    return Err(XrslError::Structure(
                        "(subscription=N) is only meaningful with (action=unsubscribe)".to_string(),
                    ));
                }
            }
        }

        let mut job = job;
        if let Some(j) = job.as_mut() {
            j.timeout = timeout;
            j.timeout_action = timeout_action;
        }
        Ok(XrslRequest {
            job,
            info,
            response,
            quality,
            performance,
            format,
            filter: spec.get_literal("filter").map(str::to_string),
            timeout,
            timeout_action,
            action,
            subscription,
        })
    }

    /// Classify the request.
    pub fn kind(&self) -> RequestKind {
        match (self.job.is_some(), !self.info.is_empty()) {
            (true, true) => RequestKind::Both,
            (true, false) => RequestKind::Job,
            (false, true) => RequestKind::Info,
            (false, false) => RequestKind::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_job_request() {
        let r = XrslRequest::from_text("&(executable=/bin/date)(arguments=-u)(count=3)(maxtime=5)")
            .unwrap();
        assert_eq!(r.kind(), RequestKind::Job);
        let job = r.job.unwrap();
        assert_eq!(job.executable, "/bin/date");
        assert_eq!(job.arguments, vec!["-u"]);
        assert_eq!(job.count, 3);
        assert_eq!(job.max_time, Some(Duration::from_secs(300)));
        assert_eq!(job.job_type, JobType::Fork);
    }

    #[test]
    fn paper_info_query_concatenation() {
        // §6.6: "(info=memory)(info=cpu)"
        let r = XrslRequest::from_text("(info=memory)(info=cpu)").unwrap();
        assert_eq!(r.kind(), RequestKind::Info);
        assert_eq!(
            r.info,
            vec![
                InfoSelector::Keyword("memory".to_string()),
                InfoSelector::Keyword("cpu".to_string())
            ]
        );
    }

    #[test]
    fn info_all_and_schema() {
        let r = XrslRequest::from_text("(info=all)").unwrap();
        assert_eq!(r.info, vec![InfoSelector::All]);
        let r = XrslRequest::from_text("(info=schema)").unwrap();
        assert_eq!(r.info, vec![InfoSelector::Schema]);
    }

    #[test]
    fn response_modes() {
        for (src, want) in [
            ("(info=cpu)(response=immediate)", ResponseMode::Immediate),
            ("(info=cpu)(response=cached)", ResponseMode::Cached),
            ("(info=cpu)(response=last)", ResponseMode::Last),
            ("(info=cpu)", ResponseMode::Cached),
        ] {
            assert_eq!(XrslRequest::from_text(src).unwrap().response, want);
        }
        assert!(XrslRequest::from_text("(info=cpu)(response=sometimes)").is_err());
    }

    #[test]
    fn formats() {
        assert_eq!(
            XrslRequest::from_text("(info=cpu)(format=xml)")
                .unwrap()
                .format,
            OutputFormat::Xml
        );
        assert_eq!(
            XrslRequest::from_text("(info=cpu)").unwrap().format,
            OutputFormat::Ldif,
            "LDIF is the MDS-compatible default"
        );
        assert_eq!(
            XrslRequest::from_text("(info=cpu)(format=dsml)")
                .unwrap()
                .format,
            OutputFormat::Dsml
        );
        assert!(XrslRequest::from_text("(info=cpu)(format=asn1)").is_err());
    }

    #[test]
    fn quality_threshold() {
        let r = XrslRequest::from_text("(info=cpuload)(quality=75)").unwrap();
        assert_eq!(r.quality, Some(75.0));
        assert!(XrslRequest::from_text("(info=x)(quality=150)").is_err());
        assert!(XrslRequest::from_text("(info=x)(quality=-1)").is_err());
        assert!(XrslRequest::from_text("(info=x)(quality=high)").is_err());
    }

    #[test]
    fn performance_flag() {
        assert!(
            XrslRequest::from_text("(info=cpu)(performance=true)")
                .unwrap()
                .performance
        );
        assert!(!XrslRequest::from_text("(info=cpu)").unwrap().performance);
        assert!(XrslRequest::from_text("(info=cpu)(performance=maybe)").is_err());
    }

    #[test]
    fn paper_timeout_action_example() {
        // §6.6: (executable=command)(timeout=1000)(action=cancel)
        let r =
            XrslRequest::from_text("(executable=command)(timeout=1000)(action=cancel)").unwrap();
        assert_eq!(r.timeout, Some(Duration::from_millis(1000)));
        assert_eq!(r.timeout_action, TimeoutAction::Cancel);
        let r = XrslRequest::from_text("(executable=c)(timeout=500)(action=exception)").unwrap();
        assert_eq!(r.timeout_action, TimeoutAction::Exception);
    }

    #[test]
    fn jar_executable_is_jarlet() {
        // §7: (executable=myJavaApplication.jar)
        let r = XrslRequest::from_text("(executable=myJavaApplication.jar)").unwrap();
        assert_eq!(r.job.unwrap().job_type, JobType::Jarlet);
    }

    #[test]
    fn explicit_jobtype_overrides_inference() {
        let r = XrslRequest::from_text("&(executable=thing.jar)(jobtype=fork)").unwrap();
        assert_eq!(r.job.unwrap().job_type, JobType::Fork);
        assert!(XrslRequest::from_text("&(executable=x)(jobtype=warp)").is_err());
    }

    #[test]
    fn environment_pairs() {
        let r =
            XrslRequest::from_text("&(executable=x)(environment=(HOME /home/g)(LANG C))").unwrap();
        assert_eq!(
            r.job.unwrap().environment,
            vec![
                ("HOME".to_string(), "/home/g".to_string()),
                ("LANG".to_string(), "C".to_string())
            ]
        );
        assert!(XrslRequest::from_text("&(executable=x)(environment=flat)").is_err());
    }

    #[test]
    fn requirements_pairs() {
        let r = XrslRequest::from_text(
            "&(executable=x)(jobtype=batch)(requirements=(os linux)(arch x86))",
        )
        .unwrap();
        let job = r.job.unwrap();
        assert_eq!(job.job_type, JobType::Batch);
        assert_eq!(job.requirements.len(), 2);
    }

    #[test]
    fn both_kind_detected() {
        let r = XrslRequest::from_text("&(executable=/bin/ls)(info=cpu)").unwrap();
        assert_eq!(r.kind(), RequestKind::Both);
    }

    #[test]
    fn empty_kind() {
        let r = XrslRequest::from_text("(format=xml)").unwrap();
        assert_eq!(r.kind(), RequestKind::Empty);
    }

    #[test]
    fn subscribe_action_parses() {
        let r = XrslRequest::from_text("&(action=subscribe)(info=Memory)(info=cpu)").unwrap();
        assert_eq!(r.action, RequestAction::Subscribe);
        assert_eq!(r.kind(), RequestKind::Info);
        assert_eq!(r.info.len(), 2);
        assert_eq!(r.subscription, None);
        // The timeout pair still means timeouts, not subscriptions.
        let t = XrslRequest::from_text("(executable=c)(timeout=5)(action=cancel)").unwrap();
        assert_eq!(t.action, RequestAction::None);
    }

    #[test]
    fn unsubscribe_action_parses() {
        let r = XrslRequest::from_text("&(action=unsubscribe)(subscription=42)").unwrap();
        assert_eq!(r.action, RequestAction::Unsubscribe);
        assert_eq!(r.subscription, Some(42));
        assert!(matches!(
            XrslRequest::from_text("&(action=unsubscribe)(subscription=many)"),
            Err(XrslError::BadTag { ref tag, .. }) if tag == "subscription"
        ));
    }

    #[test]
    fn subscription_structure_rules() {
        // subscribe: no job half, at least one selector.
        assert!(matches!(
            XrslRequest::from_text("&(action=subscribe)(executable=/bin/date)(info=cpu)"),
            Err(XrslError::Structure(ref s)) if s.contains("job")
        ));
        assert!(matches!(
            XrslRequest::from_text("&(action=subscribe)"),
            Err(XrslError::Structure(ref s)) if s.contains("(info=")
        ));
        // unsubscribe: needs its id, takes nothing else.
        assert!(matches!(
            XrslRequest::from_text("&(action=unsubscribe)"),
            Err(XrslError::Structure(ref s)) if s.contains("subscription")
        ));
        assert!(XrslRequest::from_text("&(action=unsubscribe)(subscription=1)(info=cpu)").is_err());
        // A stray (subscription=N) on an ordinary request is a mistake.
        assert!(matches!(
            XrslRequest::from_text("&(info=cpu)(subscription=7)"),
            Err(XrslError::Structure(_))
        ));
    }

    #[test]
    fn multi_request_expansion() {
        let rs = XrslRequest::parse_all("+(&(executable=a))(&(info=cpu))").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].kind(), RequestKind::Job);
        assert_eq!(rs[1].kind(), RequestKind::Info);
        // from_spec on a Multi directly errors.
        let spec = crate::parser::parse("+(&(executable=a))").unwrap();
        assert!(matches!(
            XrslRequest::from_spec(&spec),
            Err(XrslError::Structure(_))
        ));
    }

    #[test]
    fn count_validation() {
        assert!(XrslRequest::from_text("&(executable=x)(count=0)").is_err());
        assert!(XrslRequest::from_text("&(executable=x)(count=-2)").is_err());
        assert!(XrslRequest::from_text("&(executable=x)(count=many)").is_err());
    }

    #[test]
    fn restart_on_fail() {
        let r = XrslRequest::from_text("&(executable=x)(restartonfail=3)").unwrap();
        assert_eq!(r.job.unwrap().restart_on_fail, 3);
    }

    #[test]
    fn filter_tag() {
        let r = XrslRequest::from_text("(info=memory)(filter=Memory:free)").unwrap();
        assert_eq!(r.filter.as_deref(), Some("Memory:free"));
    }

    // ---- error paths: every malformed request must yield a structured
    // XrslError, never a panic ----

    #[test]
    fn unknown_tag_rejected_with_name() {
        let err = XrslRequest::from_text("(inof=cpu)").unwrap_err();
        match err {
            XrslError::UnknownTag { ref tag } => assert_eq!(tag, "inof"),
            other => panic!("expected UnknownTag, got {other:?}"),
        }
        // The message names the offender and the vocabulary.
        let msg = err.to_string();
        assert!(msg.contains("inof"), "{msg}");
        assert!(msg.contains("info"), "{msg}");
    }

    #[test]
    fn typoed_response_tag_is_not_silently_defaulted() {
        // Before strict validation `(respones=last)` parsed fine and the
        // request quietly ran with the `cached` default.
        assert!(matches!(
            XrslRequest::from_text("(info=cpu)(respones=last)"),
            Err(XrslError::UnknownTag { .. })
        ));
    }

    #[test]
    fn unknown_tag_is_case_insensitive_like_known_ones() {
        assert!(XrslRequest::from_text("(Info=cpu)").is_ok());
        assert!(matches!(
            XrslRequest::from_text("(Inof=cpu)"),
            Err(XrslError::UnknownTag { .. })
        ));
    }

    #[test]
    fn malformed_info_values() {
        // `(info=)` does not even tokenize as a relation.
        assert!(XrslRequest::from_text("(info=)").is_err());
        // An empty quoted selector parses but is meaningless.
        assert!(matches!(
            XrslRequest::from_text("(info=\"\")"),
            Err(XrslError::BadTag { ref tag, .. }) if tag == "info"
        ));
    }

    #[test]
    fn bad_timeout_values() {
        for src in [
            "(info=cpu)(timeout=soon)",
            "(info=cpu)(timeout=1.5)",
            "(info=cpu)(timeout=-100)",
        ] {
            assert!(
                matches!(
                    XrslRequest::from_text(src),
                    Err(XrslError::BadTag { ref tag, .. }) if tag == "timeout"
                ),
                "{src} should be a structured timeout error"
            );
        }
    }

    #[test]
    fn bad_format_and_action_values() {
        assert!(matches!(
            XrslRequest::from_text("(info=cpu)(format=pdf)"),
            Err(XrslError::BadTag { ref tag, .. }) if tag == "format"
        ));
        assert!(matches!(
            XrslRequest::from_text("(executable=c)(timeout=5)(action=retry)"),
            Err(XrslError::BadTag { ref tag, .. }) if tag == "action"
        ));
    }

    #[test]
    fn error_display_is_actionable() {
        let e = XrslRequest::from_text("(info=cpu)(format=pdf)").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("format") && msg.contains("pdf"), "{msg}");
        assert!(msg.contains("ldif"), "expected alternatives listed: {msg}");
    }

    #[test]
    fn multi_request_branch_errors_propagate() {
        // The second branch carries the unknown tag; parse_all must
        // surface it rather than return a partial expansion.
        assert!(matches!(
            XrslRequest::parse_all("+(&(executable=a))(&(inof=cpu))"),
            Err(XrslError::UnknownTag { .. })
        ));
    }

    #[test]
    fn rslsubstitution_is_legal_before_substitution() {
        // subst::expand consumes it, but from_spec on the raw spec must
        // not reject the definition tag.
        let r = XrslRequest::from_text("&(rslsubstitution=(HOME /home/g))(executable=/bin/true)")
            .unwrap();
        assert_eq!(r.kind(), RequestKind::Job);
    }
}
