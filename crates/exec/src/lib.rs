#![warn(missing_docs)]

//! J-GRAM: the job execution service.
//!
//! §7 of the paper: "we have implemented a pure Java implementation [of
//! the] Globus GRAM service that provides much the same functionality than
//! its C-based counterpart. ... It contains a gatekeeper, job manager, and
//! a local job execution process. We name this service J-GRAM."
//!
//! This crate is that service, over the simulated substrate:
//!
//! * [`backend`] — the backend tier: fork, batch-queue (PBS/LSF-style),
//!   and matchmaker (Condor-style) local schedulers, plus the sandboxed
//!   jarlet backend for untrusted jobs (§7 "Secure Sandboxing").
//! * [`engine`] — the job table and per-job lifecycle management
//!   (submission, status, cancellation, `maxtime`/`timeout` enforcement,
//!   automatic restart on failure per §6.1, and event callbacks).
//! * [`wal`] — the logging service (§6): an append-only log of
//!   submissions and state changes "used to restart our InfoGRAM service
//!   in case it needs to be restarted", plus the simple grid accounting
//!   the paper plans on top of it.
//! * [`sandbox`] — the jarlet interpreter: capability-policed execution
//!   of untrusted programs, in-process or isolated.
//! * [`gram`] — the wire-facing GRAM server (gatekeeper: handshake,
//!   gridmap mapping, per-connection request loop). This is the
//!   *baseline* service of Figure 2; it answers job requests only and
//!   rejects `(info=...)` queries — that is exactly the architectural
//!   deficiency InfoGram removes.

pub mod backend;
pub mod engine;
pub mod gram;
pub mod sandbox;
pub mod wal;

pub use backend::{
    BackendError, BackendJobRef, BackendStatus, ExecBackend, ForkBackend, JarletBackend,
    QueueBackend,
};
pub use engine::{EngineConfig, JobEngine, SubmitError};
pub use gram::{
    dispatch_job_request, ConnCtx, GramServer, JobsOnlyDispatcher, RequestDispatcher,
    DEFAULT_OUTBOX_CAPACITY,
};
pub use sandbox::{ExecMode, Jarlet, Policy, SandboxOutcome};
pub use wal::{
    accounting_summary, AccountUsage, CheckpointState, FileStorage, FileWal, FrameWal, MemStorage,
    MemWal, RecoveredJob, RecoveredState, RecoveryStats, Wal, WalConfig, WalError, WalEvent,
    WalSink, WalStorage,
};
