//! The job engine: job table + per-job lifecycle management.
//!
//! This is the "job manager" tier of J-GRAM (§2, §7): each submitted job
//! gets an entry that tracks its backend, drives its state machine on
//! every observation, enforces `maxtime` and the xRSL `timeout`/`action`
//! extension (§6.6), performs the automatic restart-on-failure of §6.1,
//! writes every transition to the logging service (§6), and notifies
//! registered watchers (the client event callbacks of §2).

use crate::backend::{BackendError, BackendJobRef, BackendStatus, ExecBackend};
use crate::wal::{RecoveryStats, Wal, WalError, WalEvent};
use infogram_host::machine::SimulatedHost;
use infogram_proto::handle::JobHandle;
use infogram_proto::message::JobStateCode;
use infogram_rsl::{JobRequest, JobType, TimeoutAction, XrslRequest};
use infogram_sim::clock::SharedClock;
use infogram_sim::metrics::MetricSet;
use infogram_sim::SimTime;
use parking_lot::{lock_class, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Engine identity: where handles point and which resource name contracts
/// are checked against.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Resource name used in authorization contracts.
    pub service_name: String,
    /// Host part of issued job handles.
    pub hostname: String,
    /// Port part of issued job handles.
    pub port: u16,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            service_name: "jgram".to_string(),
            hostname: "localhost".to_string(),
            port: 2119,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Backend refused the job.
    Backend(BackendError),
    /// `(queue=X)` names no configured queue.
    UnknownQueue(String),
    /// Batch job without a queue and no default queue configured.
    NoQueueConfigured,
    /// The logging service cannot make the submission durable; the
    /// engine is read-only until the WAL heals. Honest degradation:
    /// rejected with a retry hint, never silently acked.
    WalUnavailable {
        /// Milliseconds until the WAL probes its sink again.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backend(e) => write!(f, "{e}"),
            SubmitError::UnknownQueue(q) => write!(f, "unknown queue '{q}'"),
            SubmitError::NoQueueConfigured => write!(f, "no batch queue configured"),
            SubmitError::WalUnavailable { retry_after_ms } => write!(
                f,
                "job log degraded, not accepting jobs; retry-after-ms={retry_after_ms}"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A point-in-time view of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatusView {
    /// Current state.
    pub state: JobStateCode,
    /// Exit code once terminal.
    pub exit_code: Option<i32>,
    /// Captured output once terminal (empty before).
    pub output: String,
    /// Whether a `(timeout=...)(action=exception)` deadline has passed
    /// while the job kept running.
    pub timeout_exceeded: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackendKind {
    Fork,
    Jarlet,
    Queue,
}

struct JobEntry {
    spec: JobRequest,
    rsl_text: String,
    owner: String,
    account: String,
    kind: BackendKind,
    queue_name: Option<String>,
    job_ref: BackendJobRef,
    output: String,
    state: JobStateCode,
    exit_code: Option<i32>,
    submitted_at: SimTime,
    retries_left: u32,
    timeout_exceeded: bool,
    /// A terminal transition for this job is queued but not yet durable.
    /// While set, the entry stays non-terminal and refresh/cancel leave
    /// it alone — [`JobEngine::settle`] finalizes (or clears the flag if
    /// the WAL rejects the commit, so a later refresh retries).
    finishing: bool,
}

/// A terminal transition discovered under the jobs lock, to be committed
/// and finalized by [`JobEngine::settle`] *after* the lock is released —
/// the WAL's commit ticket blocks on a condvar, which is illegal under
/// any engine lock (DESIGN §13).
struct PendingFinish {
    job_id: u64,
    state: JobStateCode,
    exit_code: Option<i32>,
    now: SimTime,
    wall: Duration,
}

type Watcher = Arc<dyn Fn(JobHandle, JobStateCode) + Send + Sync>;

/// `(kind, queue name, backend)` as resolved for one submission.
type ResolvedBackend = (BackendKind, Option<String>, Arc<dyn ExecBackend>);

/// Identifier of a registered watcher (for removal at connection end).
pub type WatcherId = u64;

/// The J-GRAM job engine.
pub struct JobEngine {
    config: EngineConfig,
    clock: SharedClock,
    epoch: u64,
    next_job_id: AtomicU64,
    wal: Wal,
    fork: Arc<dyn ExecBackend>,
    jarlet: Option<Arc<dyn ExecBackend>>,
    queues: RwLock<HashMap<String, Arc<dyn ExecBackend>>>,
    default_queue: RwLock<Option<String>>,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    watchers: Mutex<HashMap<WatcherId, Watcher>>,
    next_watcher_id: AtomicU64,
    /// Host whose filesystem receives `(stdout=...)`/`(stderr=...)`
    /// redirections, when configured.
    stdio_host: RwLock<Option<Arc<SimulatedHost>>>,
    metrics: MetricSet,
}

impl std::fmt::Debug for JobEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobEngine")
            .field("epoch", &self.epoch)
            .field("service", &self.config.service_name)
            .finish_non_exhaustive()
    }
}

impl JobEngine {
    /// A fresh engine (epoch derived from any existing log content + 1,
    /// so a file-backed WAL naturally continues its epoch sequence).
    pub fn new(
        config: EngineConfig,
        clock: SharedClock,
        wal: Wal,
        fork: Arc<dyn ExecBackend>,
        metrics: MetricSet,
    ) -> Arc<Self> {
        let mut wal = wal;
        wal.set_telemetry(metrics.clone());
        let recovered = wal.fold_snapshot().state;
        let epoch = recovered.last_epoch + 1;
        // If the sink is down at boot the engine starts degraded (the
        // failed probe latches the WAL read-only); it still serves
        // status/info while rejecting submissions.
        let _ = wal.commit(clock.now(), &[WalEvent::ServiceStarted { epoch }]);
        Arc::new(JobEngine {
            config,
            clock,
            epoch,
            next_job_id: AtomicU64::new(recovered.last_job_id + 1),
            wal,
            fork,
            jarlet: None,
            queues: RwLock::with_class(HashMap::new(), lock_class!("exec.engine.queues")),
            default_queue: RwLock::with_class(None, lock_class!("exec.engine.default_queue")),
            jobs: Mutex::with_class(HashMap::new(), lock_class!("exec.engine.jobs")),
            watchers: Mutex::with_class(HashMap::new(), lock_class!("exec.engine.watchers")),
            next_watcher_id: AtomicU64::new(1),
            stdio_host: RwLock::with_class(None, lock_class!("exec.engine.stdio_host")),
            metrics,
        })
    }

    /// Attach the sandboxed jarlet backend. Must be called before the
    /// engine is shared across threads.
    pub fn with_jarlet(self: Arc<Self>, backend: Arc<dyn ExecBackend>) -> Arc<Self> {
        let unshared = Arc::try_unwrap(self);
        // lint:allow(unwrap) — documented builder contract: panics if the engine is already shared
        let mut inner = unshared.expect("with_jarlet must be called before engine is shared");
        inner.jarlet = Some(backend);
        Arc::new(inner)
    }

    /// Enable `(stdout=path)` / `(stderr=path)` redirection onto this
    /// host's filesystem — §7: "It is possible to redirect I/O to and
    /// from the client."
    pub fn set_stdio_host(&self, host: Arc<SimulatedHost>) {
        *self.stdio_host.write() = Some(host);
    }

    /// Register a named batch queue backend. The first registered queue
    /// becomes the default for `(jobtype=batch)` without `(queue=...)`.
    pub fn add_queue(&self, name: &str, backend: Arc<dyn ExecBackend>) {
        self.queues.write().insert(name.to_string(), backend);
        let mut default = self.default_queue.write();
        if default.is_none() {
            *default = Some(name.to_string());
        }
    }

    /// The engine's restart generation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Engine identity.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's metric sink.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// The engine's time source. The dispatcher shares it so its latency
    /// measurements live on the same (possibly virtual) timeline as job
    /// deadlines.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Register a watcher invoked on every job state change. Returns an
    /// id for [`JobEngine::remove_watcher`].
    pub fn on_state_change(
        &self,
        watcher: impl Fn(JobHandle, JobStateCode) + Send + Sync + 'static,
    ) -> WatcherId {
        let id = self.next_watcher_id.fetch_add(1, Ordering::Relaxed);
        self.watchers.lock().insert(id, Arc::new(watcher));
        id
    }

    /// Remove a watcher (idempotent).
    pub fn remove_watcher(&self, id: WatcherId) {
        self.watchers.lock().remove(&id);
    }

    /// The WAL events recorded so far (accounting, tests).
    pub fn wal_events(&self) -> Vec<WalEvent> {
        self.wal.events()
    }

    /// The engine's logging service (tests and benches reach through to
    /// inspect the fold or force commits).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// What WAL recovery salvaged when this engine's log was opened.
    pub fn wal_recovery_stats(&self) -> RecoveryStats {
        self.wal.recovery_stats().clone()
    }

    /// If the engine is in read-only degradation (WAL down), the retry
    /// hint in milliseconds.
    pub fn wal_read_only_hint(&self) -> Option<u64> {
        self.wal.read_only_hint(self.clock.now())
    }

    /// Log an authenticated information query (§7): grist for the simple
    /// grid accounting and for "intelligent scheduling services".
    pub fn log_info_query(&self, owner: &str, account: &str, keywords: &str) {
        self.wal.record(
            self.clock.now(),
            &WalEvent::InfoQueried {
                owner: owner.to_string(),
                account: account.to_string(),
                keywords: keywords.to_string(),
            },
        );
        self.metrics.counter("info.queries_logged").incr();
    }

    fn handle_for(&self, job_id: u64) -> JobHandle {
        JobHandle::new(&self.config.hostname, self.config.port, job_id, self.epoch)
    }

    fn backend_for(&self, spec: &JobRequest) -> Result<ResolvedBackend, SubmitError> {
        match spec.job_type {
            JobType::Fork => Ok((BackendKind::Fork, None, Arc::clone(&self.fork))),
            JobType::Jarlet => match &self.jarlet {
                Some(b) => Ok((BackendKind::Jarlet, None, Arc::clone(b))),
                None => Err(SubmitError::Backend(BackendError::Other(
                    "no jarlet backend configured".to_string(),
                ))),
            },
            JobType::Batch => {
                let queues = self.queues.read();
                let name = match &spec.queue {
                    Some(q) => q.clone(),
                    None => self
                        .default_queue
                        .read()
                        .clone()
                        .ok_or(SubmitError::NoQueueConfigured)?,
                };
                let backend = queues
                    .get(&name)
                    .cloned()
                    .ok_or_else(|| SubmitError::UnknownQueue(name.clone()))?;
                Ok((BackendKind::Queue, Some(name), backend))
            }
        }
    }

    /// Submit a job. `rsl_text` is logged verbatim ("the command used and
    /// arguments"); `owner`/`account` come from the gatekeeper's
    /// authorization decision.
    pub fn submit(
        &self,
        rsl_text: &str,
        spec: JobRequest,
        owner: &str,
        account: &str,
    ) -> Result<JobHandle, SubmitError> {
        let now = self.clock.now();
        // Fast-path rejection while degraded: don't even start a backend
        // job we could not durably record.
        if let Some(retry_after_ms) = self.wal.read_only_hint(now) {
            self.metrics.counter("jobs.rejected_readonly").incr();
            return Err(SubmitError::WalUnavailable { retry_after_ms });
        }
        let (kind, queue_name, backend) = self.backend_for(&spec)?;
        let (job_ref, output) = backend
            .submit(&spec, account)
            .map_err(SubmitError::Backend)?;
        let job_id = self.next_job_id.fetch_add(1, Ordering::SeqCst);
        let initial_state = match backend.poll(&job_ref) {
            BackendStatus::Pending => JobStateCode::Pending,
            _ => JobStateCode::Active,
        };
        // Group commit: the ack below only happens once this batch is
        // durable. No engine lock is held across the ticket wait.
        if let Err(e) = self.wal.commit(
            now,
            &[
                WalEvent::Submitted {
                    job_id,
                    rsl: rsl_text.to_string(),
                    owner: owner.to_string(),
                    account: account.to_string(),
                },
                WalEvent::StateChanged {
                    job_id,
                    state: initial_state,
                },
            ],
        ) {
            // Honest degradation: never ack a submission the log lost.
            backend.cancel(&job_ref);
            self.metrics.counter("jobs.rejected_readonly").incr();
            let retry_after_ms = match e {
                WalError::ReadOnly { retry_after_ms } => retry_after_ms,
                WalError::Io(_) => self.wal.retry_after_ms(),
            };
            return Err(SubmitError::WalUnavailable { retry_after_ms });
        }
        let retries_left = spec.restart_on_fail;
        self.jobs.lock().insert(
            job_id,
            JobEntry {
                spec,
                rsl_text: rsl_text.to_string(),
                owner: owner.to_string(),
                account: account.to_string(),
                kind,
                queue_name,
                job_ref,
                output,
                state: initial_state,
                exit_code: None,
                submitted_at: now,
                retries_left,
                timeout_exceeded: false,
                finishing: false,
            },
        );
        self.metrics.counter("jobs.submitted").incr();
        self.metrics.event(
            now.as_secs_f64(),
            "job.state",
            &format!("job {job_id}: submitted ({initial_state})"),
        );
        let handle = self.handle_for(job_id);
        self.notify(&handle, initial_state);
        Ok(handle)
    }

    fn notify(&self, handle: &JobHandle, state: JobStateCode) {
        // Watcher callbacks reach into the subscription hub (and from
        // there the outbox and transport), so invoking them under the
        // watchers lock would order it against every lock those layers
        // take — and block watcher (de)registration behind a slow
        // subscriber. Snapshot the registry and call with nothing held.
        let snapshot: Vec<Watcher> = self.watchers.lock().values().cloned().collect();
        for w in snapshot {
            w(handle.clone(), state);
        }
    }

    fn backend_of(&self, entry: &JobEntry) -> Arc<dyn ExecBackend> {
        match entry.kind {
            BackendKind::Fork => Arc::clone(&self.fork),
            // lint:allow(unwrap) — submit() rejects jarlet jobs unless the backend was attached
            BackendKind::Jarlet => Arc::clone(self.jarlet.as_ref().expect("jarlet set")),
            BackendKind::Queue => {
                // lint:allow(unwrap) — BackendKind::Queue is only assigned together with a queue name
                let name = entry.queue_name.as_deref().expect("queue name set");
                Arc::clone(&self.queues.read()[name])
            }
        }
    }

    /// Drive one job's state machine from the backend's current status.
    /// Returns the (possibly new) state.
    ///
    /// Callers hold the `jobs` lock (they hand in `&mut JobEntry` from
    /// the locked map), so discovered transitions are *queued* instead of
    /// acted on inline: non-terminal transitions into `pending` (watcher
    /// callbacks reach the subscription hub and the connection outbox,
    /// and must run with the jobs lock released — DESIGN §13), terminal
    /// ones into `finishes` (the WAL commit ticket blocks on a condvar,
    /// doubly illegal under the lock). [`JobEngine::settle`] runs both
    /// queues after release.
    fn refresh(
        &self,
        job_id: u64,
        entry: &mut JobEntry,
        pending: &mut Vec<(JobHandle, JobStateCode)>,
        finishes: &mut Vec<PendingFinish>,
    ) -> JobStateCode {
        if entry.state.is_terminal() || entry.finishing {
            return entry.state;
        }
        let now = self.clock.now();
        let backend = self.backend_of(entry);

        // Deadlines: GRAM `maxtime` kills (→ Failed); the xRSL extension
        // `(timeout=...)` either cancels or raises while continuing.
        let elapsed = now.since(entry.submitted_at);
        if let Some(max_time) = entry.spec.max_time {
            if elapsed > max_time {
                backend.cancel(&entry.job_ref);
                self.queue_finish(job_id, entry, JobStateCode::Failed, None, now, finishes);
                self.metrics.counter("jobs.maxtime_kills").incr();
                return entry.state;
            }
        }
        if let Some(timeout) = entry.spec.timeout {
            if elapsed > timeout {
                match entry.spec.timeout_action {
                    TimeoutAction::Cancel => {
                        backend.cancel(&entry.job_ref);
                        self.queue_finish(
                            job_id,
                            entry,
                            JobStateCode::Canceled,
                            None,
                            now,
                            finishes,
                        );
                        self.metrics.counter("jobs.timeout_cancels").incr();
                        return entry.state;
                    }
                    TimeoutAction::Exception => {
                        if !entry.timeout_exceeded {
                            entry.timeout_exceeded = true;
                            self.metrics.counter("jobs.timeout_exceptions").incr();
                        }
                        // "the execution of the command itself would be
                        // continuing" — fall through to normal polling.
                    }
                }
            }
        }

        let status = backend.poll(&entry.job_ref);
        let new_state = match status {
            BackendStatus::Pending => JobStateCode::Pending,
            BackendStatus::Active => JobStateCode::Active,
            BackendStatus::Canceled => JobStateCode::Canceled,
            BackendStatus::Finished { exit_code } => {
                if exit_code == 0 {
                    JobStateCode::Done
                } else if entry.retries_left > 0 {
                    // §6.1: "a fault tolerance mechanism that allows to
                    // restart a job upon failure".
                    entry.retries_left -= 1;
                    self.metrics.counter("jobs.restarts").incr();
                    match backend.submit(&entry.spec, &entry.account) {
                        Ok((job_ref, output)) => {
                            entry.job_ref = job_ref;
                            entry.output = output;
                            entry.submitted_at = now;
                            JobStateCode::Pending
                        }
                        Err(_) => JobStateCode::Failed,
                    }
                } else {
                    JobStateCode::Failed
                }
            }
        };
        if new_state != entry.state {
            if new_state.is_terminal() {
                let exit_code = match status {
                    BackendStatus::Finished { exit_code } => Some(exit_code),
                    _ => None,
                };
                self.queue_finish(job_id, entry, new_state, exit_code, now, finishes);
            } else {
                let old_state = entry.state;
                entry.state = new_state;
                self.wal.record(
                    now,
                    &WalEvent::StateChanged {
                        job_id,
                        state: new_state,
                    },
                );
                self.metrics.event(
                    now.as_secs_f64(),
                    "job.state",
                    &format!("job {job_id}: {old_state} -> {new_state}"),
                );
                pending.push((self.handle_for(job_id), new_state));
            }
        }
        entry.state
    }

    /// Queue a terminal transition. The entry keeps its non-terminal
    /// state — terminal visibility is gated on the `Finished` record
    /// being durable, so recovery can never resurrect a finished job the
    /// log did not confirm.
    fn queue_finish(
        &self,
        job_id: u64,
        entry: &mut JobEntry,
        state: JobStateCode,
        exit_code: Option<i32>,
        now: SimTime,
        finishes: &mut Vec<PendingFinish>,
    ) {
        entry.finishing = true;
        finishes.push(PendingFinish {
            job_id,
            state,
            exit_code,
            now,
            wall: now.since(entry.submitted_at),
        });
    }

    /// Flush what refresh queued, with no engine lock held: watcher
    /// notifications first, then each terminal transition is group-
    /// committed to the WAL and — only once durable — applied to the job
    /// table and announced. A failed commit clears the `finishing` flag
    /// so a later refresh retries (the backend's view of a finished job
    /// is stable).
    fn settle(&self, notifications: Vec<(JobHandle, JobStateCode)>, finishes: Vec<PendingFinish>) {
        for (handle, state) in notifications {
            self.notify(&handle, state);
        }
        for f in finishes {
            let committed = self
                .wal
                .commit(
                    f.now,
                    &[WalEvent::Finished {
                        job_id: f.job_id,
                        state: f.state,
                        exit_code: f.exit_code,
                        wall_seconds: f.wall.as_secs_f64(),
                    }],
                )
                .is_ok();
            if !committed {
                self.metrics.counter("wal.finish_deferred").incr();
                if let Some(entry) = self.jobs.lock().get_mut(&f.job_id) {
                    entry.finishing = false;
                }
                continue;
            }
            let mut fired = None;
            {
                let mut jobs = self.jobs.lock();
                if let Some(entry) = jobs.get_mut(&f.job_id) {
                    entry.finishing = false;
                    if !entry.state.is_terminal() {
                        entry.state = f.state;
                        entry.exit_code = f.exit_code;
                        // Stdout/stderr redirection onto the service-side
                        // filesystem.
                        if let Some(host) = self.stdio_host.read().as_ref() {
                            if let Some(path) = &entry.spec.stdout {
                                host.fs.write(path, entry.output.clone());
                            }
                            if let Some(path) = &entry.spec.stderr {
                                let stderr_body = if f.state == JobStateCode::Done {
                                    String::new()
                                } else {
                                    format!(
                                        "job ended in state {} (exit {:?})\n",
                                        f.state, f.exit_code
                                    )
                                };
                                host.fs.write(path, stderr_body);
                            }
                        }
                        self.metrics
                            .counter(match f.state {
                                JobStateCode::Done => "jobs.done",
                                JobStateCode::Canceled => "jobs.canceled",
                                _ => "jobs.failed",
                            })
                            .incr();
                        // Backend execution latency (submission → terminal
                        // state, on the service clock).
                        self.metrics.histogram("jobs.wall").record(f.wall);
                        let exit = f
                            .exit_code
                            .map(|c| format!(" (exit {c})"))
                            .unwrap_or_default();
                        self.metrics.event(
                            f.now.as_secs_f64(),
                            "job.state",
                            &format!("job {}: finished {}{exit}", f.job_id, f.state),
                        );
                        fired = Some((self.handle_for(f.job_id), f.state));
                    }
                }
            }
            if let Some((handle, state)) = fired {
                self.notify(&handle, state);
            }
        }
    }

    /// Current status of a job; `None` for unknown ids.
    pub fn status(&self, job_id: u64) -> Option<JobStatusView> {
        let mut pending = Vec::new();
        let mut finishes = Vec::new();
        let known = {
            let mut jobs = self.jobs.lock();
            match jobs.get_mut(&job_id) {
                Some(entry) => {
                    self.refresh(job_id, entry, &mut pending, &mut finishes);
                    true
                }
                None => false,
            }
        };
        // Commit queued terminal transitions before building the view, so
        // a single status call still observes the terminal state (when
        // the WAL is healthy).
        self.settle(pending, finishes);
        if !known {
            return None;
        }
        let jobs = self.jobs.lock();
        let entry = jobs.get(&job_id)?;
        Some(JobStatusView {
            state: entry.state,
            exit_code: entry.exit_code,
            output: if entry.state.is_terminal() {
                entry.output.clone()
            } else {
                String::new()
            },
            timeout_exceeded: entry.timeout_exceeded,
        })
    }

    /// Refresh every non-terminal job against its backend, firing the
    /// state watchers for any transition discovered. Job state is
    /// otherwise pulled lazily by `status`/`cancel`; the push-
    /// subscription driver calls this while the `jobs` channel has
    /// subscribers, so transitions stream to them without any client
    /// polling.
    pub fn poll_active(&self) {
        let ids: Vec<u64> = self
            .jobs
            .lock()
            .iter()
            .filter(|(_, e)| !e.state.is_terminal())
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            let _ = self.status(id);
        }
    }

    /// Cancel a job; false for unknown or already-terminal jobs (or when
    /// the WAL refuses to durably record the cancellation — honest: the
    /// caller is only told "canceled" once it would survive a restart).
    pub fn cancel(&self, job_id: u64) -> bool {
        let mut pending = Vec::new();
        let mut finishes = Vec::new();
        let attempted = {
            let mut jobs = self.jobs.lock();
            let Some(entry) = jobs.get_mut(&job_id) else {
                return false;
            };
            self.refresh(job_id, entry, &mut pending, &mut finishes);
            if entry.state.is_terminal() || entry.finishing {
                false
            } else {
                let backend = self.backend_of(entry);
                backend.cancel(&entry.job_ref);
                let now = self.clock.now();
                self.queue_finish(
                    job_id,
                    entry,
                    JobStateCode::Canceled,
                    None,
                    now,
                    &mut finishes,
                );
                true
            }
        };
        // A refresh can discover a terminal transition even when the
        // cancel itself loses the race — settle whatever was queued.
        self.settle(pending, finishes);
        attempted
            && self
                .jobs
                .lock()
                .get(&job_id)
                .map(|e| e.state == JobStateCode::Canceled)
                .unwrap_or(false)
    }

    /// All known job ids.
    pub fn job_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.jobs.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The xRSL a job was submitted with.
    pub fn job_rsl(&self, job_id: u64) -> Option<String> {
        self.jobs.lock().get(&job_id).map(|e| e.rsl_text.clone())
    }

    /// Owner and account of a job (for authorization of status/cancel by
    /// other clients).
    pub fn job_owner(&self, job_id: u64) -> Option<(String, String)> {
        self.jobs
            .lock()
            .get(&job_id)
            .map(|e| (e.owner.clone(), e.account.clone()))
    }

    /// Recover from the WAL: jobs that were in flight when the previous
    /// incarnation died are resubmitted ("the log can be used to restart
    /// our InfoGRAM service"), finished jobs are reinstalled as terminal
    /// records. Returns the ids of restarted jobs.
    pub fn recover(&self) -> Vec<u64> {
        let recovered = self.wal.fold_snapshot().state;
        self.metrics
            .gauge("wal.recovered_jobs")
            .set(recovered.jobs.len() as f64);
        let mut restarted = Vec::new();
        for job in &recovered.jobs {
            if self.jobs.lock().contains_key(&job.job_id) {
                continue; // submitted in this incarnation
            }
            match &job.finished {
                Some((state, exit_code)) => {
                    // Terminal before the crash: reinstall the record
                    // (output was not checkpointed — the paper logs only
                    // "the command used and arguments").
                    self.jobs.lock().insert(
                        job.job_id,
                        JobEntry {
                            spec: XrslRequest::from_text(&job.rsl)
                                .ok()
                                .and_then(|r| r.job)
                                .unwrap_or_else(|| minimal_spec(&job.rsl)),
                            rsl_text: job.rsl.clone(),
                            owner: job.owner.clone(),
                            account: job.account.clone(),
                            kind: BackendKind::Fork,
                            queue_name: None,
                            job_ref: BackendJobRef::Processes(vec![]),
                            output: String::new(),
                            state: *state,
                            exit_code: *exit_code,
                            submitted_at: self.clock.now(),
                            retries_left: 0,
                            timeout_exceeded: false,
                            finishing: false,
                        },
                    );
                }
                None => {
                    // In flight: restart it from its logged xRSL.
                    let Ok(req) = XrslRequest::from_text(&job.rsl) else {
                        continue;
                    };
                    let Some(spec) = req.job else { continue };
                    let Ok((kind, queue_name, backend)) = self.backend_for(&spec) else {
                        continue;
                    };
                    let Ok((job_ref, output)) = backend.submit(&spec, &job.account) else {
                        continue;
                    };
                    let initial = match backend.poll(&job_ref) {
                        BackendStatus::Pending => JobStateCode::Pending,
                        _ => JobStateCode::Active,
                    };
                    let retries_left = spec.restart_on_fail;
                    self.jobs.lock().insert(
                        job.job_id,
                        JobEntry {
                            spec,
                            rsl_text: job.rsl.clone(),
                            owner: job.owner.clone(),
                            account: job.account.clone(),
                            kind,
                            queue_name,
                            job_ref,
                            output,
                            state: initial,
                            exit_code: None,
                            submitted_at: self.clock.now(),
                            retries_left,
                            timeout_exceeded: false,
                            finishing: false,
                        },
                    );
                    self.wal.record(
                        self.clock.now(),
                        &WalEvent::StateChanged {
                            job_id: job.job_id,
                            state: initial,
                        },
                    );
                    self.metrics.counter("jobs.recovered").incr();
                    self.metrics.event(
                        self.clock.now().as_secs_f64(),
                        "job.state",
                        &format!("job {}: recovered ({initial})", job.job_id),
                    );
                    restarted.push(job.job_id);
                }
            }
        }
        restarted
    }
}

/// Placeholder spec for terminal recovered jobs whose RSL no longer
/// parses (it is never executed again).
fn minimal_spec(rsl: &str) -> JobRequest {
    JobRequest {
        executable: rsl.to_string(),
        arguments: vec![],
        environment: vec![],
        directory: None,
        count: 1,
        max_time: None,
        stdout: None,
        stderr: None,
        job_type: JobType::Fork,
        queue: None,
        requirements: vec![],
        restart_on_fail: 0,
        timeout: None,
        timeout_action: TimeoutAction::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ForkBackend, JarletBackend, QueueBackend};
    use crate::sandbox::{ExecMode, Policy};
    use infogram_host::commands::{ChargeMode, CommandRegistry};
    use infogram_host::machine::SimulatedHost;
    use infogram_host::queue::FifoQueue;
    use infogram_sim::ManualClock;
    use std::time::Duration;

    struct World {
        clock: Arc<ManualClock>,
        registry: Arc<CommandRegistry>,
        engine: Arc<JobEngine>,
    }

    fn world() -> World {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        let registry = CommandRegistry::new(host, ChargeMode::None);
        let engine = JobEngine::new(
            EngineConfig::default(),
            clock.clone(),
            Wal::in_memory(),
            ForkBackend::new(Arc::clone(&registry)),
            MetricSet::new(),
        )
        .with_jarlet(JarletBackend::new(
            Arc::clone(registry.host()),
            Policy::restrictive(),
            ExecMode::Isolated,
        ));
        engine.add_queue(
            "pbs",
            QueueBackend::new(
                "pbs",
                Arc::new(FifoQueue::new(clock.clone(), 2)),
                Arc::clone(&registry),
            ),
        );
        World {
            clock,
            registry,
            engine,
        }
    }

    fn submit(w: &World, rsl: &str) -> JobHandle {
        let req = XrslRequest::from_text(rsl).unwrap();
        w.engine
            .submit(rsl, req.job.unwrap(), "/O=Grid/CN=Tester", "tester")
            .unwrap()
    }

    #[test]
    fn fork_job_lifecycle() {
        let w = world();
        let h = submit(&w, "(executable=simwork)(arguments=500)");
        assert_eq!(h.epoch, 1);
        let st = w.engine.status(h.job_id).unwrap();
        assert_eq!(st.state, JobStateCode::Active);
        assert_eq!(st.output, "", "no output before terminal");
        w.clock.advance(Duration::from_millis(500));
        let st = w.engine.status(h.job_id).unwrap();
        assert_eq!(st.state, JobStateCode::Done);
        assert_eq!(st.exit_code, Some(0));
        assert!(st.output.contains("simulated work complete"));
    }

    #[test]
    fn failing_job_goes_failed() {
        let w = world();
        let h = submit(&w, "(executable=simwork)(arguments=100 9)");
        w.clock.advance(Duration::from_millis(100));
        let st = w.engine.status(h.job_id).unwrap();
        assert_eq!(st.state, JobStateCode::Failed);
        assert_eq!(st.exit_code, Some(9));
    }

    #[test]
    fn restart_on_fail_retries() {
        let w = world();
        let h = submit(
            &w,
            "&(executable=simwork)(arguments=100 5)(restartonfail=2)",
        );
        // First attempt fails at t=100 → auto-restart.
        w.clock.advance(Duration::from_millis(100));
        let st = w.engine.status(h.job_id).unwrap();
        assert!(
            st.state == JobStateCode::Pending || st.state == JobStateCode::Active,
            "restarted, not failed: {st:?}"
        );
        // Two more failures exhaust the retry budget.
        w.clock.advance(Duration::from_millis(100));
        w.engine.status(h.job_id).unwrap();
        w.clock.advance(Duration::from_millis(100));
        let st = w.engine.status(h.job_id).unwrap();
        assert_eq!(st.state, JobStateCode::Failed);
        assert_eq!(
            w.engine.metrics().counter_value("jobs.restarts"),
            2,
            "retry budget of 2 consumed"
        );
    }

    #[test]
    fn cancel_running_job() {
        let w = world();
        let h = submit(&w, "(executable=simwork)(arguments=60000)");
        assert!(w.engine.cancel(h.job_id));
        let st = w.engine.status(h.job_id).unwrap();
        assert_eq!(st.state, JobStateCode::Canceled);
        assert!(!w.engine.cancel(h.job_id), "cancel of terminal job fails");
        assert!(!w.engine.cancel(999), "unknown job");
    }

    #[test]
    fn maxtime_kills_overrunning_job() {
        let w = world();
        // maxtime is minutes; 1 minute limit, 2-minute job.
        let h = submit(&w, "&(executable=simwork)(arguments=120000)(maxtime=1)");
        w.clock.advance(Duration::from_secs(61));
        let st = w.engine.status(h.job_id).unwrap();
        assert_eq!(st.state, JobStateCode::Failed);
        assert_eq!(w.engine.metrics().counter_value("jobs.maxtime_kills"), 1);
    }

    #[test]
    fn batch_job_queues() {
        let w = world();
        let ids: Vec<JobHandle> = (0..3)
            .map(|_| submit(&w, "&(executable=simwork)(arguments=1000)(jobtype=batch)"))
            .collect();
        // 2 slots: two active, one pending.
        let states: Vec<JobStateCode> = ids
            .iter()
            .map(|h| w.engine.status(h.job_id).unwrap().state)
            .collect();
        assert_eq!(
            states
                .iter()
                .filter(|s| **s == JobStateCode::Active)
                .count(),
            2
        );
        assert_eq!(
            states
                .iter()
                .filter(|s| **s == JobStateCode::Pending)
                .count(),
            1
        );
        w.clock.advance(Duration::from_secs(2));
        for h in &ids {
            assert_eq!(w.engine.status(h.job_id).unwrap().state, JobStateCode::Done);
        }
    }

    #[test]
    fn unknown_queue_rejected() {
        let w = world();
        let req =
            XrslRequest::from_text("&(executable=simwork)(jobtype=batch)(queue=lsf)").unwrap();
        match w.engine.submit("x", req.job.unwrap(), "/O=Grid/CN=T", "t") {
            Err(SubmitError::UnknownQueue(q)) => assert_eq!(q, "lsf"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn jarlet_job_through_engine() {
        let w = world();
        w.registry
            .host()
            .fs
            .write("/home/gregor/analysis.jar", "compute 20; print ok");
        let h = submit(&w, "(executable=/home/gregor/analysis.jar)");
        w.clock.advance(Duration::from_millis(100));
        let st = w.engine.status(h.job_id).unwrap();
        assert_eq!(st.state, JobStateCode::Done);
        assert!(st.output.contains("ok"));
    }

    #[test]
    fn watchers_see_transitions() {
        let w = world();
        let seen: Arc<Mutex<Vec<JobStateCode>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        w.engine.on_state_change(move |_h, s| seen2.lock().push(s));
        let h = submit(&w, "(executable=simwork)(arguments=200)");
        w.clock.advance(Duration::from_millis(200));
        w.engine.status(h.job_id).unwrap();
        let states = seen.lock().clone();
        assert_eq!(states.first(), Some(&JobStateCode::Active));
        assert_eq!(states.last(), Some(&JobStateCode::Done));
    }

    #[test]
    fn wal_records_full_history() {
        let w = world();
        let h = submit(&w, "(executable=simwork)(arguments=100)");
        w.clock.advance(Duration::from_millis(100));
        w.engine.status(h.job_id).unwrap();
        let events = w.engine.wal_events();
        assert!(matches!(events[0], WalEvent::ServiceStarted { epoch: 1 }));
        assert!(events
            .iter()
            .any(|e| matches!(e, WalEvent::Submitted { job_id, .. } if *job_id == h.job_id)));
        assert!(events.iter().any(|e| matches!(
            e,
            WalEvent::Finished {
                state: JobStateCode::Done,
                ..
            }
        )));
    }

    #[test]
    fn status_of_unknown_job() {
        let w = world();
        assert!(w.engine.status(424242).is_none());
    }

    #[test]
    fn stdout_redirection_writes_host_file() {
        let w = world();
        w.engine.set_stdio_host(Arc::clone(w.registry.host()));
        let h = submit(
            &w,
            "&(executable=simwork)(arguments=100)(stdout=/home/gregor/job.out)(stderr=/home/gregor/job.err)",
        );
        w.clock.advance(Duration::from_millis(100));
        w.engine.status(h.job_id).unwrap();
        let out = w
            .registry
            .host()
            .fs
            .read_text("/home/gregor/job.out")
            .expect("stdout file written");
        assert!(out.contains("simulated work complete"));
        assert_eq!(
            w.registry
                .host()
                .fs
                .read_text("/home/gregor/job.err")
                .unwrap(),
            "",
            "clean exit leaves an empty stderr file"
        );
    }

    #[test]
    fn stderr_redirection_records_failure() {
        let w = world();
        w.engine.set_stdio_host(Arc::clone(w.registry.host()));
        let h = submit(
            &w,
            "&(executable=simwork)(arguments=50 3)(stderr=/tmp/fail.err)",
        );
        w.clock.advance(Duration::from_millis(50));
        w.engine.status(h.job_id).unwrap();
        let err = w.registry.host().fs.read_text("/tmp/fail.err").unwrap();
        assert!(err.contains("FAILED"));
        assert!(err.contains("exit Some(3)"));
    }

    #[test]
    fn job_owner_recorded() {
        let w = world();
        let h = submit(&w, "(executable=simwork)(arguments=10)");
        let (owner, account) = w.engine.job_owner(h.job_id).unwrap();
        assert_eq!(owner, "/O=Grid/CN=Tester");
        assert_eq!(account, "tester");
    }
}
