//! Secure sandboxing of untrusted jobs.
//!
//! §5.5/§7 of the paper: "the execution of untrusted applications in
//! trusted environments is important to enable the use of Grids. ...
//! our J-GRAM service enhances the normal Globus GRAM service by being
//! able to execute pure Java code submitted as Java jar files. ... one
//! method is to execute the code in the same JVM as the rest of the
//! components are running. An alternative is to separate the execution of
//! the job into a JVM to increase security. We provide the ability to
//! configure the job manager to run in either of these modes."
//!
//! The JVM is replaced by a **jarlet**: a tiny line-oriented program whose
//! operations (compute, file read/write, network, spawn, allocate) are
//! each checked against a capability [`Policy`]. The two JVM modes become
//! [`ExecMode::InProcess`] (no per-op overhead, but a violation
//! *contaminates* the host service — observable in the outcome) and
//! [`ExecMode::Isolated`] (per-op crossing overhead, violations fully
//! contained).

use infogram_host::machine::SimulatedHost;
use std::sync::Arc;
use std::time::Duration;

/// One jarlet instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Burn `units` of compute (1 ms of simulated work per unit).
    Compute(u64),
    /// Read a file.
    Read(String),
    /// Write a file (contents = the op's argument tail).
    Write(String, String),
    /// Open a network connection.
    Net(String),
    /// Spawn a subprocess.
    Spawn,
    /// Allocate memory.
    Alloc(u64),
    /// Emit output.
    Print(String),
    /// Terminate with a nonzero exit code.
    Fail(i32),
}

/// A parsed jarlet program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Jarlet {
    /// The instruction sequence.
    pub ops: Vec<Op>,
}

/// A jarlet parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JarletParseError {
    /// 1-based statement index.
    pub statement: usize,
    /// Explanation.
    pub reason: String,
}

impl std::fmt::Display for JarletParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jarlet statement {}: {}", self.statement, self.reason)
    }
}

impl std::error::Error for JarletParseError {}

impl Jarlet {
    /// Parse a `;`-or-newline-separated program, e.g.
    /// `compute 10; read /data/in.dat; write /tmp/out result; print done`.
    pub fn parse(src: &str) -> Result<Jarlet, JarletParseError> {
        let mut ops = Vec::new();
        for (i, stmt) in src.split([';', '\n']).map(str::trim).enumerate() {
            if stmt.is_empty() || stmt.starts_with('#') {
                continue;
            }
            let err = |reason: &str| JarletParseError {
                statement: i + 1,
                reason: reason.to_string(),
            };
            let (verb, rest) = match stmt.split_once(char::is_whitespace) {
                Some((v, r)) => (v, r.trim()),
                None => (stmt, ""),
            };
            let op = match verb {
                "compute" => Op::Compute(rest.parse().map_err(|_| err("bad compute units"))?),
                "read" => {
                    if rest.is_empty() {
                        return Err(err("read needs a path"));
                    }
                    Op::Read(rest.to_string())
                }
                "write" => {
                    let (path, contents) = match rest.split_once(char::is_whitespace) {
                        Some((p, c)) => (p, c.trim()),
                        None => (rest, ""),
                    };
                    if path.is_empty() {
                        return Err(err("write needs a path"));
                    }
                    Op::Write(path.to_string(), contents.to_string())
                }
                "net" => {
                    if rest.is_empty() {
                        return Err(err("net needs a host"));
                    }
                    Op::Net(rest.to_string())
                }
                "spawn" => Op::Spawn,
                "alloc" => Op::Alloc(rest.parse().map_err(|_| err("bad alloc bytes"))?),
                "print" => Op::Print(rest.to_string()),
                "fail" => Op::Fail(rest.parse().unwrap_or(1)),
                other => return Err(err(&format!("unknown op '{other}'"))),
            };
            ops.push(op);
        }
        Ok(Jarlet { ops })
    }

    /// Total compute units the program would burn.
    pub fn compute_units(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute(u) => *u,
                _ => 0,
            })
            .sum()
    }
}

/// Capability policy for a jarlet run — what the "trusted environment"
/// permits the untrusted code.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Path prefixes readable by the job.
    pub read_prefixes: Vec<String>,
    /// Path prefixes writable by the job.
    pub write_prefixes: Vec<String>,
    /// Whether outbound network is allowed.
    pub allow_net: bool,
    /// Whether spawning subprocesses is allowed.
    pub allow_spawn: bool,
    /// Compute-unit budget.
    pub max_compute_units: u64,
    /// Allocation budget in bytes.
    pub max_alloc_bytes: u64,
}

impl Policy {
    /// A restrictive default: read `/data`, write `/tmp`, no net, no
    /// spawn, modest budgets.
    pub fn restrictive() -> Policy {
        Policy {
            read_prefixes: vec!["/data".to_string()],
            write_prefixes: vec!["/tmp".to_string()],
            allow_net: false,
            allow_spawn: false,
            max_compute_units: 10_000,
            max_alloc_bytes: 64 << 20,
        }
    }

    /// A permissive policy for trusted code.
    pub fn permissive() -> Policy {
        Policy {
            read_prefixes: vec!["/".to_string()],
            write_prefixes: vec!["/".to_string()],
            allow_net: true,
            allow_spawn: true,
            max_compute_units: u64::MAX,
            max_alloc_bytes: u64::MAX,
        }
    }

    fn may_read(&self, path: &str) -> bool {
        self.read_prefixes.iter().any(|p| path.starts_with(p))
    }

    fn may_write(&self, path: &str) -> bool {
        self.write_prefixes.iter().any(|p| path.starts_with(p))
    }
}

/// How the jarlet runs — the paper's two JVM modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Same "JVM" as the service: zero crossing overhead, but a policy
    /// violation contaminates the host service.
    InProcess,
    /// A separate "JVM": every op pays a crossing overhead, violations
    /// are fully contained.
    Isolated,
}

/// Per-op crossing overhead in the isolated mode (models the extra JVM's
/// IPC boundary).
pub const ISOLATION_OVERHEAD_PER_OP: Duration = Duration::from_micros(50);

/// The result of running a jarlet.
#[derive(Debug, Clone, PartialEq)]
pub struct SandboxOutcome {
    /// Exit code (0 = success; 126 = policy violation).
    pub exit_code: i32,
    /// Captured `print` output.
    pub output: String,
    /// Policy violations encountered (each aborts the run).
    pub violations: Vec<String>,
    /// Ops executed before termination.
    pub ops_executed: u64,
    /// Simulated execution time (compute + isolation overhead).
    pub runtime: Duration,
    /// Whether the *host service* was contaminated — only possible when a
    /// violation happens in [`ExecMode::InProcess`].
    pub host_contaminated: bool,
}

/// Exit code reported for policy violations.
pub const VIOLATION_EXIT: i32 = 126;

/// Run a jarlet under a policy on a host.
pub fn run_jarlet(
    jarlet: &Jarlet,
    policy: &Policy,
    mode: ExecMode,
    host: &Arc<SimulatedHost>,
) -> SandboxOutcome {
    let mut outcome = SandboxOutcome {
        exit_code: 0,
        output: String::new(),
        violations: Vec::new(),
        ops_executed: 0,
        runtime: Duration::ZERO,
        host_contaminated: false,
    };
    let mut compute_used: u64 = 0;
    let mut alloc_used: u64 = 0;

    let violate = |outcome: &mut SandboxOutcome, what: String| {
        outcome.violations.push(what);
        outcome.exit_code = VIOLATION_EXIT;
        if mode == ExecMode::InProcess {
            // The untrusted code shares the service's address space; a
            // violation means it touched something it must not.
            outcome.host_contaminated = true;
        }
    };

    for op in &jarlet.ops {
        outcome.ops_executed += 1;
        if mode == ExecMode::Isolated {
            outcome.runtime += ISOLATION_OVERHEAD_PER_OP;
        }
        match op {
            Op::Compute(units) => {
                compute_used += units;
                if compute_used > policy.max_compute_units {
                    violate(
                        &mut outcome,
                        format!(
                            "compute budget exceeded: {compute_used} > {}",
                            policy.max_compute_units
                        ),
                    );
                    break;
                }
                outcome.runtime += Duration::from_millis(*units);
            }
            Op::Read(path) => {
                if !policy.may_read(path) {
                    violate(&mut outcome, format!("read denied: {path}"));
                    break;
                }
                // Reading a missing file is an ordinary failure, not a
                // violation.
                if host.fs.read(path).is_none() {
                    outcome.exit_code = 2;
                    outcome.output.push_str(&format!("read error: {path}\n"));
                    break;
                }
            }
            Op::Write(path, contents) => {
                if !policy.may_write(path) {
                    violate(&mut outcome, format!("write denied: {path}"));
                    break;
                }
                host.fs.write(path, contents.as_bytes().to_vec());
            }
            Op::Net(peer) => {
                if !policy.allow_net {
                    violate(&mut outcome, format!("network denied: {peer}"));
                    break;
                }
                outcome.runtime += Duration::from_millis(1);
            }
            Op::Spawn => {
                if !policy.allow_spawn {
                    violate(&mut outcome, "spawn denied".to_string());
                    break;
                }
            }
            Op::Alloc(bytes) => {
                alloc_used += bytes;
                if alloc_used > policy.max_alloc_bytes {
                    violate(
                        &mut outcome,
                        format!(
                            "allocation budget exceeded: {alloc_used} > {}",
                            policy.max_alloc_bytes
                        ),
                    );
                    break;
                }
            }
            Op::Print(text) => {
                outcome.output.push_str(text);
                outcome.output.push('\n');
            }
            Op::Fail(code) => {
                outcome.exit_code = *code;
                break;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_sim::ManualClock;

    fn host() -> Arc<SimulatedHost> {
        let h = SimulatedHost::default_on(ManualClock::new());
        h.fs.write("/data/input.dat", "payload");
        h
    }

    #[test]
    fn parse_program() {
        let j = Jarlet::parse("compute 10; read /data/x; print done").unwrap();
        assert_eq!(j.ops.len(), 3);
        assert_eq!(j.compute_units(), 10);
        assert_eq!(j.ops[2], Op::Print("done".to_string()));
    }

    #[test]
    fn parse_errors() {
        assert!(Jarlet::parse("compute lots").is_err());
        assert!(Jarlet::parse("teleport home").is_err());
        assert!(Jarlet::parse("read").is_err());
        // Comments and blanks are fine.
        assert!(Jarlet::parse("# comment\n\ncompute 1").is_ok());
    }

    #[test]
    fn well_behaved_job_succeeds() {
        let h = host();
        let j = Jarlet::parse(
            "compute 5; read /data/input.dat; write /tmp/out result; print analysis-done",
        )
        .unwrap();
        let out = run_jarlet(&j, &Policy::restrictive(), ExecMode::Isolated, &h);
        assert_eq!(out.exit_code, 0);
        assert!(out.violations.is_empty());
        assert!(!out.host_contaminated);
        assert_eq!(out.output, "analysis-done\n");
        assert_eq!(h.fs.read_text("/tmp/out").unwrap(), "result");
        assert_eq!(out.ops_executed, 4);
    }

    #[test]
    fn fs_escape_blocked() {
        let h = host();
        let j = Jarlet::parse("read /etc/grid-security/hostcert.pem").unwrap();
        let out = run_jarlet(&j, &Policy::restrictive(), ExecMode::Isolated, &h);
        assert_eq!(out.exit_code, VIOLATION_EXIT);
        assert_eq!(out.violations.len(), 1);
        assert!(out.violations[0].contains("read denied"));
        assert!(!out.host_contaminated, "isolated mode contains the breach");
    }

    #[test]
    fn write_escape_blocked() {
        let h = host();
        let j = Jarlet::parse("write /etc/passwd pwned").unwrap();
        let out = run_jarlet(&j, &Policy::restrictive(), ExecMode::Isolated, &h);
        assert_eq!(out.exit_code, VIOLATION_EXIT);
        assert!(!h.fs.exists("/etc/passwd"), "write must not happen");
    }

    #[test]
    fn net_and_spawn_blocked() {
        let h = host();
        for prog in ["net evil.example.org:31337", "spawn"] {
            let j = Jarlet::parse(prog).unwrap();
            let out = run_jarlet(&j, &Policy::restrictive(), ExecMode::Isolated, &h);
            assert_eq!(out.exit_code, VIOLATION_EXIT, "{prog}");
        }
    }

    #[test]
    fn compute_bomb_capped() {
        let h = host();
        let j = Jarlet::parse("compute 5000; compute 5000; compute 5000").unwrap();
        let out = run_jarlet(&j, &Policy::restrictive(), ExecMode::Isolated, &h);
        assert_eq!(out.exit_code, VIOLATION_EXIT);
        assert!(out.violations[0].contains("compute budget"));
        assert_eq!(out.ops_executed, 3, "stopped at the violating op");
    }

    #[test]
    fn alloc_bomb_capped() {
        let h = host();
        let j = Jarlet::parse(&format!("alloc {}", 1u64 << 40)).unwrap();
        let out = run_jarlet(&j, &Policy::restrictive(), ExecMode::Isolated, &h);
        assert_eq!(out.exit_code, VIOLATION_EXIT);
    }

    #[test]
    fn in_process_violation_contaminates_host() {
        let h = host();
        let j = Jarlet::parse("read /etc/shadow").unwrap();
        let isolated = run_jarlet(&j, &Policy::restrictive(), ExecMode::Isolated, &h);
        let in_proc = run_jarlet(&j, &Policy::restrictive(), ExecMode::InProcess, &h);
        assert!(!isolated.host_contaminated);
        assert!(in_proc.host_contaminated, "same JVM → breach reaches host");
    }

    #[test]
    fn isolation_costs_overhead() {
        let h = host();
        let j = Jarlet::parse("compute 1; compute 1; compute 1; compute 1").unwrap();
        let fast = run_jarlet(&j, &Policy::permissive(), ExecMode::InProcess, &h);
        let slow = run_jarlet(&j, &Policy::permissive(), ExecMode::Isolated, &h);
        assert_eq!(
            slow.runtime - fast.runtime,
            4 * ISOLATION_OVERHEAD_PER_OP,
            "isolated mode pays per-op crossing cost"
        );
    }

    #[test]
    fn explicit_failure_and_missing_file() {
        let h = host();
        let j = Jarlet::parse("fail 42").unwrap();
        assert_eq!(
            run_jarlet(&j, &Policy::permissive(), ExecMode::InProcess, &h).exit_code,
            42
        );
        let j = Jarlet::parse("read /data/absent.dat").unwrap();
        let out = run_jarlet(&j, &Policy::restrictive(), ExecMode::InProcess, &h);
        assert_eq!(out.exit_code, 2);
        assert!(out.violations.is_empty(), "missing file is not a violation");
        assert!(!out.host_contaminated);
    }

    #[test]
    fn permissive_policy_allows_everything() {
        let h = host();
        let j = Jarlet::parse("read /etc/grid-security/hostcert.pem; net peer:80; spawn").unwrap();
        let out = run_jarlet(&j, &Policy::permissive(), ExecMode::InProcess, &h);
        assert_eq!(out.exit_code, 0);
        assert!(out.violations.is_empty());
    }
}
