//! The backend tier: local schedulers.
//!
//! §2: "The backend tier is easily portable to various scheduling
//! systems. The Globus Toolkit services provide scheduling interfaces
//! such as PBS, LSF, Condor, and Unix process fork." The same portability
//! seam exists here as the [`ExecBackend`] trait with three
//! implementations:
//!
//! * [`ForkBackend`] — immediate execution as simulated host processes;
//! * [`QueueBackend`] — submission into any `infogram-host` batch-queue
//!   model (FIFO/fair-share = the PBS/LSF flavour, matchmaker = the
//!   Condor flavour);
//! * [`JarletBackend`] — sandboxed execution of untrusted jarlet jobs
//!   (the paper's jar-file support, §7).

use crate::sandbox::{run_jarlet, ExecMode, Jarlet, Policy};
use infogram_host::commands::CommandRegistry;
use infogram_host::machine::SimulatedHost;
use infogram_host::process::{ExitStatus, Pid, ProcState};
use infogram_host::queue::{BatchJob, BatchQueue, JobOutcome, QueueJobId};
use infogram_rsl::JobRequest;
use std::sync::Arc;

/// Why a backend refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The executable does not resolve to anything runnable.
    UnknownExecutable(String),
    /// The jarlet program was malformed.
    BadJarlet(String),
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::UnknownExecutable(e) => write!(f, "unknown executable: {e}"),
            BackendError::BadJarlet(e) => write!(f, "bad jarlet: {e}"),
            BackendError::Other(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A handle to whatever the backend is running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendJobRef {
    /// Simulated host processes (fork and jarlet backends).
    Processes(Vec<Pid>),
    /// Batch queue entries.
    QueueJobs(Vec<QueueJobId>),
}

/// Backend-level job status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendStatus {
    /// Waiting for resources (batch queue depth).
    Pending,
    /// Running.
    Active,
    /// All instances finished; combined exit code (first nonzero).
    Finished {
        /// Combined exit code.
        exit_code: i32,
    },
    /// Cancelled.
    Canceled,
}

/// A local scheduler the job manager can drive.
pub trait ExecBackend: Send + Sync {
    /// Scheduler name for logs and schema.
    fn name(&self) -> &str;
    /// Start a job; returns the backend ref and the job's (eventual)
    /// captured output.
    fn submit(
        &self,
        job: &JobRequest,
        account: &str,
    ) -> Result<(BackendJobRef, String), BackendError>;
    /// Poll current status.
    fn poll(&self, job_ref: &BackendJobRef) -> BackendStatus;
    /// Cancel; true if anything was actually stopped.
    fn cancel(&self, job_ref: &BackendJobRef) -> bool;
}

fn command_line(job: &JobRequest) -> String {
    if job.arguments.is_empty() {
        job.executable.clone()
    } else {
        format!("{} {}", job.executable, job.arguments.join(" "))
    }
}

fn poll_processes(host: &SimulatedHost, pids: &[Pid]) -> BackendStatus {
    let mut exit = 0;
    let mut any_running = false;
    let mut any_canceled = false;
    for &pid in pids {
        match host.processes.state(pid) {
            Some(ProcState::Running) => any_running = true,
            Some(ProcState::Exited) => match host.processes.exit_status(pid) {
                Some(ExitStatus::Code(c)) => {
                    if exit == 0 {
                        exit = c;
                    }
                }
                Some(ExitStatus::Signaled(_)) => any_canceled = true,
                None => any_running = true,
            },
            None => {
                // Reaped or unknown: treat as finished-with-failure.
                if exit == 0 {
                    exit = -1;
                }
            }
        }
    }
    if any_running {
        BackendStatus::Active
    } else if any_canceled {
        BackendStatus::Canceled
    } else {
        BackendStatus::Finished { exit_code: exit }
    }
}

/// Unix-process-fork backend: the GRAM default. Jobs start immediately as
/// entries in the simulated process table; their runtime is the planned
/// command cost.
pub struct ForkBackend {
    registry: Arc<CommandRegistry>,
}

impl ForkBackend {
    /// A fork backend over a command registry.
    pub fn new(registry: Arc<CommandRegistry>) -> Arc<Self> {
        Arc::new(ForkBackend { registry })
    }

    /// The host processes run on.
    pub fn host(&self) -> &Arc<SimulatedHost> {
        self.registry.host()
    }
}

impl ExecBackend for ForkBackend {
    fn name(&self) -> &str {
        "fork"
    }

    fn submit(
        &self,
        job: &JobRequest,
        _account: &str,
    ) -> Result<(BackendJobRef, String), BackendError> {
        let cmdline = command_line(job);
        let planned = self
            .registry
            .plan(&cmdline)
            .map_err(|e| BackendError::UnknownExecutable(e.to_string()))?;
        let host = self.registry.host();
        let pids: Vec<Pid> = (0..job.count)
            .map(|_| {
                host.processes
                    .spawn(&cmdline, planned.cost, planned.exit_code)
            })
            .collect();
        Ok((BackendJobRef::Processes(pids), planned.stdout))
    }

    fn poll(&self, job_ref: &BackendJobRef) -> BackendStatus {
        match job_ref {
            BackendJobRef::Processes(pids) => poll_processes(self.registry.host(), pids),
            _ => BackendStatus::Canceled,
        }
    }

    fn cancel(&self, job_ref: &BackendJobRef) -> bool {
        match job_ref {
            BackendJobRef::Processes(pids) => {
                let host = self.registry.host();
                let mut any = false;
                for &pid in pids {
                    any |= host.processes.kill(pid, 15);
                }
                any
            }
            _ => false,
        }
    }
}

/// Batch-queue backend over any queue model (FIFO, fair-share, or
/// matchmaker).
pub struct QueueBackend {
    queue_name: String,
    queue: Arc<dyn BatchQueue>,
    registry: Arc<CommandRegistry>,
}

impl QueueBackend {
    /// A backend named `queue_name` feeding `queue`.
    pub fn new(
        queue_name: &str,
        queue: Arc<dyn BatchQueue>,
        registry: Arc<CommandRegistry>,
    ) -> Arc<Self> {
        Arc::new(QueueBackend {
            queue_name: queue_name.to_string(),
            queue,
            registry,
        })
    }

    /// Jobs waiting in the underlying queue.
    pub fn queued_depth(&self) -> usize {
        self.queue.queued_depth()
    }
}

impl ExecBackend for QueueBackend {
    fn name(&self) -> &str {
        &self.queue_name
    }

    fn submit(
        &self,
        job: &JobRequest,
        account: &str,
    ) -> Result<(BackendJobRef, String), BackendError> {
        let cmdline = command_line(job);
        let planned = self
            .registry
            .plan(&cmdline)
            .map_err(|e| BackendError::UnknownExecutable(e.to_string()))?;
        let mut ids = Vec::with_capacity(job.count as usize);
        for _ in 0..job.count {
            let mut batch_job = BatchJob::simple(&job.executable, account, planned.cost);
            batch_job.exit_code = planned.exit_code;
            for (k, v) in &job.requirements {
                batch_job = batch_job.requiring(k, v);
            }
            ids.push(self.queue.submit(batch_job));
        }
        Ok((BackendJobRef::QueueJobs(ids), planned.stdout))
    }

    fn poll(&self, job_ref: &BackendJobRef) -> BackendStatus {
        let BackendJobRef::QueueJobs(ids) = job_ref else {
            return BackendStatus::Canceled;
        };
        let mut exit = 0;
        let mut any_pending = false;
        let mut any_active = false;
        let mut any_canceled = false;
        for id in ids {
            match self.queue.poll(*id) {
                Some(JobOutcome::Queued) => any_pending = true,
                Some(JobOutcome::Running { .. }) => any_active = true,
                Some(JobOutcome::Completed { status, .. }) => {
                    if let ExitStatus::Code(c) = status {
                        if exit == 0 {
                            exit = c;
                        }
                    }
                }
                Some(JobOutcome::Cancelled) | None => any_canceled = true,
            }
        }
        if any_active {
            BackendStatus::Active
        } else if any_pending {
            BackendStatus::Pending
        } else if any_canceled {
            BackendStatus::Canceled
        } else {
            BackendStatus::Finished { exit_code: exit }
        }
    }

    fn cancel(&self, job_ref: &BackendJobRef) -> bool {
        match job_ref {
            BackendJobRef::QueueJobs(ids) => {
                let mut any = false;
                for id in ids {
                    any |= self.queue.cancel(*id);
                }
                any
            }
            _ => false,
        }
    }
}

/// Sandboxed jarlet backend: runs untrusted programs under a policy, in
/// the configured execution mode.
pub struct JarletBackend {
    host: Arc<SimulatedHost>,
    policy: Policy,
    mode: ExecMode,
}

impl JarletBackend {
    /// A jarlet backend with the given policy and mode. "The Grid
    /// administrator must decide which mode should be run" (§7).
    pub fn new(host: Arc<SimulatedHost>, policy: Policy, mode: ExecMode) -> Arc<Self> {
        Arc::new(JarletBackend { host, policy, mode })
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }
}

impl ExecBackend for JarletBackend {
    fn name(&self) -> &str {
        "jarlet-sandbox"
    }

    fn submit(
        &self,
        job: &JobRequest,
        _account: &str,
    ) -> Result<(BackendJobRef, String), BackendError> {
        // The program is the staged file at the executable path, or the
        // inline arguments if no such file exists.
        let source = match self.host.fs.read_text(&job.executable) {
            Some(text) => text,
            None if !job.arguments.is_empty() => job.arguments.join(" "),
            None => {
                return Err(BackendError::UnknownExecutable(format!(
                    "{} (no staged jarlet, no inline program)",
                    job.executable
                )))
            }
        };
        let jarlet = Jarlet::parse(&source).map_err(|e| BackendError::BadJarlet(e.to_string()))?;
        let outcome = run_jarlet(&jarlet, &self.policy, self.mode, &self.host);
        let mut output = outcome.output.clone();
        for v in &outcome.violations {
            output.push_str(&format!("SECURITY VIOLATION: {v}\n"));
        }
        if outcome.host_contaminated {
            output.push_str("WARNING: host contaminated (in-process violation)\n");
        }
        // Model the job's duration as a process entry so status polling
        // sees it Active while it "runs".
        let pid = self.host.processes.spawn(
            &format!("jarlet:{}", job.executable),
            outcome.runtime,
            outcome.exit_code,
        );
        Ok((BackendJobRef::Processes(vec![pid]), output))
    }

    fn poll(&self, job_ref: &BackendJobRef) -> BackendStatus {
        match job_ref {
            BackendJobRef::Processes(pids) => poll_processes(&self.host, pids),
            _ => BackendStatus::Canceled,
        }
    }

    fn cancel(&self, job_ref: &BackendJobRef) -> bool {
        match job_ref {
            BackendJobRef::Processes(pids) => {
                let mut any = false;
                for &pid in pids {
                    any |= self.host.processes.kill(pid, 9);
                }
                any
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_host::commands::ChargeMode;
    use infogram_host::queue::{FifoQueue, MachineAd, Matchmaker};
    use infogram_rsl::XrslRequest;
    use infogram_sim::ManualClock;
    use std::time::Duration;

    fn world() -> (Arc<ManualClock>, Arc<CommandRegistry>) {
        let clock = ManualClock::new();
        let host = SimulatedHost::default_on(clock.clone());
        let reg = CommandRegistry::new(host, ChargeMode::None);
        (clock, reg)
    }

    fn job(rsl: &str) -> JobRequest {
        XrslRequest::from_text(rsl).unwrap().job.unwrap()
    }

    #[test]
    fn fork_runs_to_completion() {
        let (clock, reg) = world();
        let backend = ForkBackend::new(reg);
        let (r, output) = backend
            .submit(&job("(executable=/bin/simwork)(arguments=500 0)"), "alice")
            .unwrap();
        assert_eq!(backend.poll(&r), BackendStatus::Active);
        clock.advance(Duration::from_millis(500));
        assert_eq!(backend.poll(&r), BackendStatus::Finished { exit_code: 0 });
        assert!(output.contains("simulated work complete"));
    }

    #[test]
    fn fork_count_spawns_instances() {
        let (clock, reg) = world();
        let backend = ForkBackend::new(Arc::clone(&reg));
        let (r, _out) = backend
            .submit(
                &job("&(executable=simwork)(arguments=100)(count=4)"),
                "alice",
            )
            .unwrap();
        match &r {
            BackendJobRef::Processes(pids) => assert_eq!(pids.len(), 4),
            other => panic!("{other:?}"),
        }
        assert_eq!(reg.host().processes.running_count(), 4);
        clock.advance(Duration::from_millis(100));
        assert_eq!(backend.poll(&r), BackendStatus::Finished { exit_code: 0 });
    }

    #[test]
    fn fork_nonzero_exit_propagates() {
        let (clock, reg) = world();
        let backend = ForkBackend::new(reg);
        let (r, _out) = backend
            .submit(&job("(executable=simwork)(arguments=100 7)"), "a")
            .unwrap();
        clock.advance(Duration::from_millis(100));
        assert_eq!(backend.poll(&r), BackendStatus::Finished { exit_code: 7 });
    }

    #[test]
    fn fork_unknown_executable() {
        let (_c, reg) = world();
        let backend = ForkBackend::new(reg);
        assert!(matches!(
            backend.submit(&job("(executable=/opt/warp-drive)"), "a"),
            Err(BackendError::UnknownExecutable(_))
        ));
    }

    #[test]
    fn fork_cancel_kills() {
        let (_c, reg) = world();
        let backend = ForkBackend::new(reg);
        let (r, _out) = backend
            .submit(&job("(executable=simwork)(arguments=60000)"), "a")
            .unwrap();
        assert!(backend.cancel(&r));
        assert_eq!(backend.poll(&r), BackendStatus::Canceled);
        assert!(!backend.cancel(&r), "second cancel is a no-op");
    }

    #[test]
    fn queue_backend_pending_then_active() {
        let (clock, reg) = world();
        let queue = Arc::new(FifoQueue::new(clock.clone(), 1));
        let backend = QueueBackend::new("pbs", queue, reg);
        let (a, _) = backend
            .submit(&job("(executable=simwork)(arguments=1000)"), "alice")
            .unwrap();
        let (b, _) = backend
            .submit(&job("(executable=simwork)(arguments=1000)"), "bob")
            .unwrap();
        assert_eq!(backend.poll(&a), BackendStatus::Active);
        assert_eq!(backend.poll(&b), BackendStatus::Pending);
        assert_eq!(backend.queued_depth(), 1);
        clock.advance(Duration::from_millis(1000));
        assert_eq!(backend.poll(&a), BackendStatus::Finished { exit_code: 0 });
        assert_eq!(backend.poll(&b), BackendStatus::Active);
        clock.advance(Duration::from_millis(1000));
        assert_eq!(backend.poll(&b), BackendStatus::Finished { exit_code: 0 });
    }

    #[test]
    fn matchmaker_backend_respects_requirements() {
        let (clock, reg) = world();
        let pool = Arc::new(Matchmaker::new(
            clock.clone(),
            vec![MachineAd::new("m1", &[("os", "linux")])],
        ));
        let backend = QueueBackend::new("condor", pool, reg);
        let matching =
            job("&(executable=simwork)(arguments=100)(jobtype=batch)(requirements=(os linux))");
        let impossible =
            job("&(executable=simwork)(arguments=100)(jobtype=batch)(requirements=(os plan9))");
        let (a, _) = backend.submit(&matching, "u").unwrap();
        let (b, _) = backend.submit(&impossible, "u").unwrap();
        assert_eq!(backend.poll(&a), BackendStatus::Active);
        assert_eq!(backend.poll(&b), BackendStatus::Pending);
        clock.advance(Duration::from_secs(10));
        assert_eq!(backend.poll(&a), BackendStatus::Finished { exit_code: 0 });
        assert_eq!(backend.poll(&b), BackendStatus::Pending, "never matches");
    }

    #[test]
    fn queue_cancel() {
        let (clock, reg) = world();
        let queue = Arc::new(FifoQueue::new(clock.clone(), 1));
        let backend = QueueBackend::new("pbs", queue, reg);
        let (a, _) = backend
            .submit(&job("(executable=simwork)(arguments=5000)"), "a")
            .unwrap();
        assert!(backend.cancel(&a));
        assert_eq!(backend.poll(&a), BackendStatus::Canceled);
    }

    #[test]
    fn jarlet_backend_runs_staged_program() {
        let (clock, reg) = world();
        let host = Arc::clone(reg.host());
        host.fs
            .write("/home/gregor/scan.jar", "compute 50; print scanned");
        let backend = JarletBackend::new(host, Policy::permissive(), ExecMode::Isolated);
        let (r, output) = backend
            .submit(&job("(executable=/home/gregor/scan.jar)"), "gregor")
            .unwrap();
        assert!(output.contains("scanned"));
        assert_eq!(
            backend.poll(&r),
            BackendStatus::Active,
            "runs for its compute time"
        );
        clock.advance(Duration::from_millis(100));
        assert_eq!(backend.poll(&r), BackendStatus::Finished { exit_code: 0 });
    }

    #[test]
    fn jarlet_backend_inline_program() {
        let (clock, reg) = world();
        let backend = JarletBackend::new(
            Arc::clone(reg.host()),
            Policy::restrictive(),
            ExecMode::Isolated,
        );
        let (r, output) = backend
            .submit(
                &job(r#"(executable=inline.jar)(arguments="print hello-grid")"#),
                "u",
            )
            .unwrap();
        assert!(output.contains("hello-grid"));
        clock.advance(Duration::from_secs(1));
        assert!(matches!(
            backend.poll(&r),
            BackendStatus::Finished { exit_code: 0 }
        ));
    }

    #[test]
    fn jarlet_violation_reported_in_output() {
        let (clock, reg) = world();
        let backend = JarletBackend::new(
            Arc::clone(reg.host()),
            Policy::restrictive(),
            ExecMode::Isolated,
        );
        let (r, output) = backend
            .submit(
                &job(r#"(executable=evil.jar)(arguments="read /etc/grid-security/hostcert.pem")"#),
                "u",
            )
            .unwrap();
        assert!(output.contains("SECURITY VIOLATION"));
        clock.advance(Duration::from_secs(1));
        assert_eq!(
            backend.poll(&r),
            BackendStatus::Finished {
                exit_code: crate::sandbox::VIOLATION_EXIT
            }
        );
    }

    #[test]
    fn jarlet_missing_program() {
        let (_c, reg) = world();
        let backend = JarletBackend::new(
            Arc::clone(reg.host()),
            Policy::restrictive(),
            ExecMode::Isolated,
        );
        assert!(matches!(
            backend.submit(&job("(executable=/nowhere/x.jar)"), "u"),
            Err(BackendError::UnknownExecutable(_))
        ));
    }
}
