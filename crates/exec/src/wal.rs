//! The logging service: crash-consistent write-ahead log, restart
//! recovery, accounting.
//!
//! §6 of the paper: "Logging and check pointing is enabled through a
//! logging service. ... In either case the log can be used to restart our
//! InfoGRAM service in case it needs to be restarted (e.g. the machine was
//! shut down). ... Presently, we only record minimal information such as
//! the command used and arguments executed. We intend to use this logging
//! service to provide simple Grid accounting."
//!
//! Faithful to that: the log records submissions (the xRSL text — the
//! command and arguments), state changes, and completions; [`RecoveredState`]
//! rebuilds the job table from it; [`accounting_summary`] derives the
//! per-account usage report.
//!
//! # Durability model (DESIGN §14)
//!
//! The log is a sequence of **segments** held by a [`WalStorage`]
//! (in-memory for the simulator, one file per segment on disk). Each
//! segment is a sequence of **frames**: `[len: u32 LE][crc32: u32 LE]
//! [payload]`. Recovery scans every frame; a frame that runs past the end
//! of the segment is a *torn tail* (truncate and continue — the write
//! never completed), while a fully-present frame with a bad checksum is
//! *mid-log corruption* (skip, count in `wal.corrupt_frames`).
//!
//! Critical events go through [`Wal::commit`], which group-commits: the
//! calling thread enqueues its payloads and blocks on a commit ticket
//! until a leader has flushed the whole batch with one durable append
//! (one fsync). Only then is the submission acked. A failed flush flips
//! the log read-only for `WalConfig::retry_after`; the engine surfaces
//! that as `UNAVAILABLE` + retry-after rather than silently acking.
//!
//! Periodic [`WalEvent::Checkpoint`] records carry the folded job table
//! so recovery replays checkpoint + tail instead of the whole history;
//! segments older than the checkpoint are reclaimed.
//!
//! Lock classes (DESIGN §13): `exec.wal.queue` (commit queue; waiters
//! hold only this lock, released inside the condvar wait, so commits are
//! legal anywhere the engine holds no other lock), `exec.wal.io`
//! (serializes sink I/O and the in-memory fold), `exec.wal.degraded`
//! (read-only latch), `exec.wal.frames` / `exec.wal.mem_storage` /
//! `exec.wal.file_storage` (leaf locks inside sinks and storages).
//! Commits must never run under `exec.engine.jobs`: the ticket wait is a
//! blocking point.

use infogram_proto::message::JobStateCode;
use infogram_sim::fault::{AppendVerdict, DiskFaultPlan, SyncVerdict, DISK_CRASHED_DETAIL};
use infogram_sim::metrics::MetricSet;
use infogram_sim::SimTime;
use parking_lot::{lock_class, Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEP: char = '\x1f';

/// One logged event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEvent {
    /// The service (re)started with this epoch.
    ServiceStarted {
        /// Restart generation.
        epoch: u64,
    },
    /// A job was accepted.
    Submitted {
        /// Engine-local job id.
        job_id: u64,
        /// The full xRSL text — "the command used and arguments".
        rsl: String,
        /// The grid identity (DN string).
        owner: String,
        /// The mapped local account.
        account: String,
    },
    /// A job changed state.
    StateChanged {
        /// Which job.
        job_id: u64,
        /// The new state.
        state: JobStateCode,
    },
    /// An authenticated information query was served (§7: "logging of
    /// authenticated information queries to guide the use as part of
    /// intelligent scheduling services").
    InfoQueried {
        /// The grid identity (DN string).
        owner: String,
        /// The mapped local account.
        account: String,
        /// Comma-joined keywords served.
        keywords: String,
    },
    /// A job reached a terminal state.
    Finished {
        /// Which job.
        job_id: u64,
        /// Terminal state (Done/Failed/Canceled).
        state: JobStateCode,
        /// Exit code if the job ran to completion.
        exit_code: Option<i32>,
        /// Wall seconds consumed (for accounting).
        wall_seconds: f64,
    },
    /// A serialized snapshot of the folded job table + accounting; the
    /// paper's "check pointing". Recovery replays the newest checkpoint
    /// plus the tail after it.
    Checkpoint(Box<CheckpointState>),
}

fn state_str(s: JobStateCode) -> &'static str {
    match s {
        JobStateCode::Pending => "PENDING",
        JobStateCode::Active => "ACTIVE",
        JobStateCode::Suspended => "SUSPENDED",
        JobStateCode::Done => "DONE",
        JobStateCode::Failed => "FAILED",
        JobStateCode::Canceled => "CANCELED",
    }
}

fn parse_state(s: &str) -> Option<JobStateCode> {
    Some(match s {
        "PENDING" => JobStateCode::Pending,
        "ACTIVE" => JobStateCode::Active,
        "SUSPENDED" => JobStateCode::Suspended,
        "DONE" => JobStateCode::Done,
        "FAILED" => JobStateCode::Failed,
        "CANCELED" => JobStateCode::Canceled,
        _ => return None,
    })
}

/// Escape a free-form field so it can never collide with the record
/// separator or a line break: `%` → `%25`, `\x1f` → `%1F`, `\n` → `%0A`,
/// `\r` → `%0D`. Owner DNs, accounts, keywords and RSL text all pass
/// through this, so adversarial field content round-trips losslessly.
fn esc(s: &str) -> String {
    if !s.contains(['%', SEP, '\n', '\r']) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            SEP => out.push_str("%1F"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverse [`esc`]; `None` for strings the encoder could not have
/// produced (raw control characters, unknown `%` escapes) so corrupt
/// frames are rejected rather than silently mangled.
fn unesc(s: &str) -> Option<String> {
    if s.contains(['\n', '\r']) {
        return None;
    }
    if !s.contains('%') {
        return Some(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match (it.next()?, it.next()?) {
            ('2', '5') => out.push('%'),
            ('1', 'F') => out.push(SEP),
            ('0', 'A') => out.push('\n'),
            ('0', 'D') => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

impl WalEvent {
    /// Encode as one record payload (field-separated; free-form fields
    /// are escaped so separators and newlines in them round-trip).
    pub fn encode(&self) -> String {
        match self {
            WalEvent::ServiceStarted { epoch } => format!("START{SEP}{epoch}"),
            WalEvent::Submitted {
                job_id,
                rsl,
                owner,
                account,
            } => {
                format!(
                    "SUBMIT{SEP}{job_id}{SEP}{}{SEP}{}{SEP}{}",
                    esc(owner),
                    esc(account),
                    esc(rsl)
                )
            }
            WalEvent::StateChanged { job_id, state } => {
                format!("STATE{SEP}{job_id}{SEP}{}", state_str(*state))
            }
            WalEvent::InfoQueried {
                owner,
                account,
                keywords,
            } => format!(
                "INFOQ{SEP}{}{SEP}{}{SEP}{}",
                esc(owner),
                esc(account),
                esc(keywords)
            ),
            WalEvent::Finished {
                job_id,
                state,
                exit_code,
                wall_seconds,
            } => format!(
                "FINISH{SEP}{job_id}{SEP}{}{SEP}{}{SEP}{wall_seconds:.3}",
                state_str(*state),
                exit_code.map(|c| c.to_string()).unwrap_or_default()
            ),
            WalEvent::Checkpoint(ck) => ck.encode(),
        }
    }

    /// Decode one record payload; `None` for corrupt payloads (recovery
    /// skips them rather than refusing to start).
    pub fn decode(line: &str) -> Option<WalEvent> {
        let fields: Vec<&str> = line.split(SEP).collect();
        match fields.as_slice() {
            ["START", epoch] => Some(WalEvent::ServiceStarted {
                epoch: epoch.parse().ok()?,
            }),
            ["SUBMIT", job_id, owner, account, rsl] => Some(WalEvent::Submitted {
                job_id: job_id.parse().ok()?,
                rsl: unesc(rsl)?,
                owner: unesc(owner)?,
                account: unesc(account)?,
            }),
            ["STATE", job_id, state] => Some(WalEvent::StateChanged {
                job_id: job_id.parse().ok()?,
                state: parse_state(state)?,
            }),
            ["INFOQ", owner, account, keywords] => Some(WalEvent::InfoQueried {
                owner: unesc(owner)?,
                account: unesc(account)?,
                keywords: unesc(keywords)?,
            }),
            ["FINISH", job_id, state, exit, wall] => Some(WalEvent::Finished {
                job_id: job_id.parse().ok()?,
                state: parse_state(state)?,
                exit_code: if exit.is_empty() {
                    None
                } else {
                    Some(exit.parse().ok()?)
                },
                wall_seconds: wall.parse().ok()?,
            }),
            ["CKPT", ..] => {
                CheckpointState::decode(&fields).map(|ck| WalEvent::Checkpoint(Box::new(ck)))
            }
            _ => None,
        }
    }
}

/// The folded log: job table + per-account usage. This is both what a
/// [`WalEvent::Checkpoint`] serializes and what the running [`Wal`]
/// maintains incrementally so a checkpoint is cheap to cut.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointState {
    /// The recovered job table (epoch, last job id, jobs in order).
    pub state: RecoveredState,
    /// Per-account usage, the paper's "simple Grid accounting".
    pub accounts: BTreeMap<String, AccountUsage>,
}

impl CheckpointState {
    /// Fold one event into the snapshot. `index` maps job id → position
    /// in `state.jobs` and must be owned alongside the snapshot (it is
    /// rebuilt when a checkpoint event replaces the whole state).
    pub fn apply(&mut self, ev: &WalEvent, index: &mut BTreeMap<u64, usize>) {
        match ev {
            WalEvent::ServiceStarted { epoch } => {
                self.state.last_epoch = self.state.last_epoch.max(*epoch);
            }
            WalEvent::Submitted {
                job_id,
                rsl,
                owner,
                account,
            } => {
                self.state.last_job_id = self.state.last_job_id.max(*job_id);
                index.insert(*job_id, self.state.jobs.len());
                self.state.jobs.push(RecoveredJob {
                    job_id: *job_id,
                    rsl: rsl.clone(),
                    owner: owner.clone(),
                    account: account.clone(),
                    finished: None,
                });
                self.accounts.entry(account.clone()).or_default().submitted += 1;
            }
            WalEvent::StateChanged { .. } => {}
            WalEvent::InfoQueried { account, .. } => {
                self.accounts
                    .entry(account.clone())
                    .or_default()
                    .info_queries += 1;
            }
            WalEvent::Finished {
                job_id,
                state,
                exit_code,
                wall_seconds,
            } => {
                if let Some(&i) = index.get(job_id) {
                    let job = &mut self.state.jobs[i];
                    if job.finished.is_none() {
                        job.finished = Some((*state, *exit_code));
                        let usage = self.accounts.entry(job.account.clone()).or_default();
                        usage.wall_seconds += wall_seconds;
                        if *state == JobStateCode::Done {
                            usage.completed += 1;
                        } else {
                            usage.failed += 1;
                        }
                    }
                }
            }
            WalEvent::Checkpoint(ck) => {
                *self = (**ck).clone();
                *index = self
                    .state
                    .jobs
                    .iter()
                    .enumerate()
                    .map(|(i, j)| (j.job_id, i))
                    .collect();
            }
        }
    }

    fn encode(&self) -> String {
        let mut out = format!(
            "CKPT{SEP}{}{SEP}{}{SEP}{}{SEP}{}",
            self.state.last_epoch,
            self.state.last_job_id,
            self.state.jobs.len(),
            self.accounts.len()
        );
        for j in &self.state.jobs {
            let (fstate, fexit) = match &j.finished {
                None => ("-".to_string(), "-".to_string()),
                Some((s, e)) => (
                    state_str(*s).to_string(),
                    e.map(|c| c.to_string()).unwrap_or_else(|| "-".to_string()),
                ),
            };
            out.push_str(&format!(
                "{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{fstate}{SEP}{fexit}",
                j.job_id,
                esc(&j.rsl),
                esc(&j.owner),
                esc(&j.account)
            ));
        }
        for (name, u) in &self.accounts {
            // `{}` (shortest round-trip) formatting so wall seconds
            // survive arbitrarily many checkpoint/recover cycles.
            out.push_str(&format!(
                "{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}{SEP}{}",
                esc(name),
                u.submitted,
                u.completed,
                u.failed,
                u.wall_seconds,
                u.info_queries
            ));
        }
        out
    }

    fn decode(fields: &[&str]) -> Option<CheckpointState> {
        let mut it = fields.iter();
        if *it.next()? != "CKPT" {
            return None;
        }
        let last_epoch: u64 = it.next()?.parse().ok()?;
        let last_job_id: u64 = it.next()?.parse().ok()?;
        let njobs: usize = it.next()?.parse().ok()?;
        let naccounts: usize = it.next()?.parse().ok()?;
        if fields.len() != 5 + njobs * 6 + naccounts * 6 {
            return None;
        }
        let mut jobs = Vec::with_capacity(njobs);
        for _ in 0..njobs {
            let job_id: u64 = it.next()?.parse().ok()?;
            let rsl = unesc(it.next()?)?;
            let owner = unesc(it.next()?)?;
            let account = unesc(it.next()?)?;
            let fstate = *it.next()?;
            let fexit = *it.next()?;
            let finished = if fstate == "-" {
                None
            } else {
                let s = parse_state(fstate)?;
                let e = if fexit == "-" {
                    None
                } else {
                    Some(fexit.parse().ok()?)
                };
                Some((s, e))
            };
            jobs.push(RecoveredJob {
                job_id,
                rsl,
                owner,
                account,
                finished,
            });
        }
        let mut accounts = BTreeMap::new();
        for _ in 0..naccounts {
            let name = unesc(it.next()?)?;
            accounts.insert(
                name,
                AccountUsage {
                    submitted: it.next()?.parse().ok()?,
                    completed: it.next()?.parse().ok()?,
                    failed: it.next()?.parse().ok()?,
                    wall_seconds: it.next()?.parse().ok()?,
                    info_queries: it.next()?.parse().ok()?,
                },
            );
        }
        Some(CheckpointState {
            state: RecoveredState {
                last_epoch,
                last_job_id,
                jobs,
            },
            accounts,
        })
    }
}

// ---------------------------------------------------------------------------
// Frames: [len: u32 LE][crc32: u32 LE][payload]
// ---------------------------------------------------------------------------

/// Upper bound on a single frame payload; anything larger in a scan is
/// treated as corruption (a garbage length field), not a real frame.
const MAX_FRAME: usize = 16 * 1024 * 1024;

/// CRC-32 (IEEE, reflected, poly 0xEDB88320), bitwise — no tables, no
/// dependencies; the WAL is I/O-bound so this is never hot.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append one frame for `payload` to `buf`.
fn push_frame(buf: &mut Vec<u8>, payload: &str) {
    let bytes = payload.as_bytes();
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(bytes).to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// Scan a segment's bytes into frame payloads, classifying damage into
/// `stats`: a frame running past the end is a torn tail (truncate), a
/// complete frame with a bad CRC or invalid UTF-8 is mid-log corruption
/// (skip and continue), a garbage length is unrecoverable from here on
/// (no resync marker — count the rest as truncated).
pub(crate) fn scan_frames(bytes: &[u8], stats: &mut RecoveryStats) -> Vec<String> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rem = bytes.len() - pos;
        if rem < 8 {
            stats.truncated_tail_bytes += rem as u64;
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len > MAX_FRAME {
            stats.corrupt_frames += 1;
            stats.truncated_tail_bytes += rem as u64;
            break;
        }
        if len > rem - 8 {
            stats.truncated_tail_bytes += rem as u64;
            break;
        }
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let payload = &bytes[pos + 8..pos + 8 + len];
        pos += 8 + len;
        if crc32(payload) != crc {
            stats.corrupt_frames += 1;
            continue;
        }
        match std::str::from_utf8(payload) {
            Ok(s) => out.push(s.to_string()),
            Err(_) => stats.corrupt_frames += 1,
        }
    }
    out
}

/// What recovery salvaged (and could not salvage) from the log. Surfaced
/// through `(info=metrics)` so a restarted service self-describes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Complete frames with a bad checksum or undecodable payload —
    /// mid-log corruption, skipped.
    pub corrupt_frames: u64,
    /// Bytes dropped from torn segment tails (incomplete final writes).
    pub truncated_tail_bytes: u64,
    /// Segments present in storage.
    pub segments_total: u64,
    /// Segments actually read (checkpoint + tail, not full history).
    pub segments_read: u64,
    /// Storage read errors during recovery (segments skipped).
    pub io_errors: u64,
    /// Events decoded and replayed into the job table.
    pub events_replayed: u64,
    /// Events replayed after the newest checkpoint.
    pub events_since_checkpoint: u64,
    /// Whether a checkpoint bounded the replay.
    pub checkpoint_used: bool,
}

// ---------------------------------------------------------------------------
// Storage: segments of raw bytes
// ---------------------------------------------------------------------------

/// Raw segment storage under a [`WalSink`] — numbered segments of bytes
/// with append/sync/remove. Implementations route writes through a
/// [`DiskFaultPlan`] so torn writes, fsync failures, disk-full and
/// crash-after-k-appends are injectable deterministically.
pub trait WalStorage: Send + Sync + std::fmt::Debug {
    /// Segment numbers currently present, in any order.
    fn segments(&self) -> io::Result<Vec<u64>>;
    /// Read a whole segment; absent segments read as empty.
    fn read(&self, seg: u64) -> io::Result<Vec<u8>>;
    /// Append bytes to a segment (creating it if absent). May write a
    /// prefix and fail (short/torn write).
    fn append(&self, seg: u64, bytes: &[u8]) -> io::Result<()>;
    /// Make everything appended to `seg` durable (fsync).
    fn sync(&self, seg: u64) -> io::Result<()>;
    /// Delete a segment.
    fn remove(&self, seg: u64) -> io::Result<()>;
}

#[derive(Debug, Default)]
struct MemSegment {
    /// Bytes that survive a crash (synced).
    durable: Vec<u8>,
    /// Bytes appended but not yet synced; a crash drops them.
    volatile: Vec<u8>,
}

#[derive(Debug, Default)]
struct MemStorageState {
    segs: BTreeMap<u64, MemSegment>,
    crashed: bool,
}

/// In-memory [`WalStorage`] with an explicit durable/volatile split and a
/// [`DiskFaultPlan`] hook — the simulator's disk. [`MemStorage::crash`]
/// models power loss (volatile bytes vanish); [`MemStorage::restart`]
/// brings the disk back with only durable bytes.
#[derive(Debug)]
pub struct MemStorage {
    state: Mutex<MemStorageState>,
    plan: Option<Arc<DiskFaultPlan>>,
}

impl MemStorage {
    /// A fault-free in-memory disk.
    pub fn new() -> Arc<Self> {
        Self::with_plan(None)
    }

    /// An in-memory disk whose appends/syncs consult `plan`.
    pub fn with_plan(plan: Option<Arc<DiskFaultPlan>>) -> Arc<Self> {
        Arc::new(MemStorage {
            state: Mutex::with_class(
                MemStorageState::default(),
                lock_class!("exec.wal.mem_storage"),
            ),
            plan,
        })
    }

    /// Simulate power loss: unsynced bytes vanish, every subsequent
    /// operation fails until [`MemStorage::restart`].
    pub fn crash(&self) {
        let mut st = self.state.lock();
        st.crashed = true;
        for seg in st.segs.values_mut() {
            seg.volatile.clear();
        }
    }

    /// Bring the disk back after a [`MemStorage::crash`] — only durable
    /// bytes remain. Also resets the fault plan's crashed latch.
    pub fn restart(&self) {
        self.state.lock().crashed = false;
        if let Some(p) = &self.plan {
            p.restart();
        }
    }

    /// The durable (post-crash) contents of a segment — test harness
    /// accessor for crash-point assertions.
    pub fn durable_bytes(&self, seg: u64) -> Vec<u8> {
        self.state
            .lock()
            .segs
            .get(&seg)
            .map(|s| s.durable.clone())
            .unwrap_or_default()
    }

    /// Replace a segment's durable contents — test harness hook for
    /// constructing truncated/bit-flipped logs byte by byte.
    pub fn preload(&self, seg: u64, bytes: Vec<u8>) {
        let mut st = self.state.lock();
        let s = st.segs.entry(seg).or_default();
        s.durable = bytes;
        s.volatile.clear();
    }

    fn err(detail: &str) -> io::Error {
        io::Error::other(detail.to_string())
    }
}

impl WalStorage for MemStorage {
    fn segments(&self) -> io::Result<Vec<u64>> {
        let st = self.state.lock();
        if st.crashed {
            return Err(Self::err(DISK_CRASHED_DETAIL));
        }
        Ok(st.segs.keys().copied().collect())
    }

    fn read(&self, seg: u64) -> io::Result<Vec<u8>> {
        let st = self.state.lock();
        if st.crashed {
            return Err(Self::err(DISK_CRASHED_DETAIL));
        }
        Ok(st
            .segs
            .get(&seg)
            .map(|s| {
                let mut all = s.durable.clone();
                all.extend_from_slice(&s.volatile);
                all
            })
            .unwrap_or_default())
    }

    fn append(&self, seg: u64, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Self::err(DISK_CRASHED_DETAIL));
        }
        let verdict = match &self.plan {
            Some(p) => p.on_append(bytes.len()),
            None => AppendVerdict::Write,
        };
        match verdict {
            AppendVerdict::Write => {
                st.segs
                    .entry(seg)
                    .or_default()
                    .volatile
                    .extend_from_slice(bytes);
                Ok(())
            }
            AppendVerdict::Short { keep } => {
                st.segs
                    .entry(seg)
                    .or_default()
                    .volatile
                    .extend_from_slice(&bytes[..keep]);
                Err(Self::err("short write (injected)"))
            }
            AppendVerdict::Torn { keep } => {
                // A torn write is a prefix that reached the platter right
                // as the power died: it lands durable, everything
                // volatile (all segments) is lost.
                let s = st.segs.entry(seg).or_default();
                s.durable.extend_from_slice(&s.volatile);
                s.durable.extend_from_slice(&bytes[..keep]);
                s.volatile.clear();
                st.crashed = true;
                for other in st.segs.values_mut() {
                    other.volatile.clear();
                }
                Err(Self::err(DISK_CRASHED_DETAIL))
            }
            AppendVerdict::Fail { detail } => Err(Self::err(detail)),
            AppendVerdict::Crash => {
                st.crashed = true;
                for s in st.segs.values_mut() {
                    s.volatile.clear();
                }
                Err(Self::err(DISK_CRASHED_DETAIL))
            }
        }
    }

    fn sync(&self, seg: u64) -> io::Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Self::err(DISK_CRASHED_DETAIL));
        }
        let verdict = match &self.plan {
            Some(p) => p.on_sync(),
            None => SyncVerdict::Sync,
        };
        match verdict {
            SyncVerdict::Sync => {
                if let Some(s) = st.segs.get_mut(&seg) {
                    let v = std::mem::take(&mut s.volatile);
                    s.durable.extend_from_slice(&v);
                }
                Ok(())
            }
            SyncVerdict::Fail => Err(Self::err("fsync failed (injected)")),
        }
    }

    fn remove(&self, seg: u64) -> io::Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Self::err(DISK_CRASHED_DETAIL));
        }
        st.segs.remove(&seg);
        Ok(())
    }
}

/// File-backed [`WalStorage`]: segment `n` lives at `<prefix>.<n>`. Real
/// fsync via `sync_data`; an optional [`DiskFaultPlan`] injects the same
/// fault envelope as [`MemStorage`] (minus the durable/volatile split —
/// the kernel page cache is not simulated here).
#[derive(Debug)]
pub struct FileStorage {
    prefix: PathBuf,
    plan: Option<Arc<DiskFaultPlan>>,
    files: Mutex<HashMap<u64, std::fs::File>>,
}

impl FileStorage {
    /// Storage rooted at `prefix` (segment files are `<prefix>.<n>`).
    pub fn open(prefix: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with(prefix, None)
    }

    /// Storage rooted at `prefix` with a fault plan on the write path.
    pub fn open_with(
        prefix: impl Into<PathBuf>,
        plan: Option<Arc<DiskFaultPlan>>,
    ) -> io::Result<Self> {
        let prefix = prefix.into();
        if let Some(dir) = prefix.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Ok(FileStorage {
            prefix,
            plan,
            files: Mutex::with_class(HashMap::new(), lock_class!("exec.wal.file_storage")),
        })
    }

    fn seg_path(&self, seg: u64) -> PathBuf {
        let mut s = self.prefix.as_os_str().to_os_string();
        s.push(format!(".{seg}"));
        PathBuf::from(s)
    }
}

impl WalStorage for FileStorage {
    fn segments(&self) -> io::Result<Vec<u64>> {
        let parent = match self.prefix.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let stem = match self.prefix.file_name() {
            Some(n) => format!("{}.", n.to_string_lossy()),
            None => return Ok(Vec::new()),
        };
        let mut out = Vec::new();
        for entry in std::fs::read_dir(parent)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix(&stem) {
                if let Ok(seg) = rest.parse::<u64>() {
                    out.push(seg);
                }
            }
        }
        Ok(out)
    }

    fn read(&self, seg: u64) -> io::Result<Vec<u8>> {
        match std::fs::read(self.seg_path(seg)) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn append(&self, seg: u64, bytes: &[u8]) -> io::Result<()> {
        if let Some(p) = &self.plan {
            if p.crashed() {
                return Err(io::Error::other(DISK_CRASHED_DETAIL));
            }
        }
        let verdict = match &self.plan {
            Some(p) => p.on_append(bytes.len()),
            None => AppendVerdict::Write,
        };
        let mut files = self.files.lock();
        let file = match files.entry(seg) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => v.insert(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.seg_path(seg))?,
            ),
        };
        match verdict {
            AppendVerdict::Write => file.write_all(bytes),
            AppendVerdict::Short { keep } => {
                file.write_all(&bytes[..keep])?;
                Err(io::Error::other("short write (injected)"))
            }
            AppendVerdict::Torn { keep } => {
                file.write_all(&bytes[..keep])?;
                let _ = file.sync_data();
                Err(io::Error::other(DISK_CRASHED_DETAIL))
            }
            AppendVerdict::Fail { detail } => Err(io::Error::other(detail)),
            AppendVerdict::Crash => Err(io::Error::other(DISK_CRASHED_DETAIL)),
        }
    }

    fn sync(&self, seg: u64) -> io::Result<()> {
        if let Some(p) = &self.plan {
            if p.crashed() {
                return Err(io::Error::other(DISK_CRASHED_DETAIL));
            }
            if matches!(p.on_sync(), SyncVerdict::Fail) {
                return Err(io::Error::other("fsync failed (injected)"));
            }
        }
        match self.files.lock().get(&seg) {
            Some(f) => f.sync_data(),
            None => Ok(()),
        }
    }

    fn remove(&self, seg: u64) -> io::Result<()> {
        self.files.lock().remove(&seg);
        match std::fs::remove_file(self.seg_path(seg)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Sinks: framed segments over a storage
// ---------------------------------------------------------------------------

/// Where record payloads go. "The log can either be stored in the middle
/// tier, or on the backend tier" — here: in memory, or as checksummed
/// frames over a [`WalStorage`].
pub trait WalSink: Send + Sync {
    /// Append a batch of payloads atomically-enough: a crash may tear the
    /// tail of the batch but never reorders it. `durable` requests an
    /// fsync before returning.
    fn append_batch(&self, payloads: &[&str], durable: bool) -> io::Result<()>;
    /// Load every payload recoverable from storage (checkpoint + tail
    /// for segmented sinks), with damage accounting.
    fn load(&self) -> (Vec<String>, RecoveryStats);
    /// Whether the sink would like a checkpoint cut now (e.g. the active
    /// segment is over its size budget).
    fn wants_checkpoint(&self) -> bool {
        false
    }
    /// Start a new segment headed by the serialized `checkpoint` and
    /// reclaim older history. Returns how many segments were reclaimed.
    fn install_checkpoint(&self, checkpoint: &str) -> io::Result<u64>;
}

/// In-memory log (middle tier) — trivially durable, never fails.
#[derive(Debug, Default)]
pub struct MemWal {
    lines: Mutex<Vec<String>>,
}

impl MemWal {
    /// An empty in-memory log.
    pub fn new() -> Self {
        MemWal {
            lines: Mutex::with_class(Vec::new(), lock_class!("exec.wal.mem")),
        }
    }
}

impl WalSink for MemWal {
    fn append_batch(&self, payloads: &[&str], _durable: bool) -> io::Result<()> {
        let mut lines = self.lines.lock();
        lines.extend(payloads.iter().map(|p| p.to_string()));
        Ok(())
    }

    fn load(&self) -> (Vec<String>, RecoveryStats) {
        (self.lines.lock().clone(), RecoveryStats::default())
    }

    fn install_checkpoint(&self, checkpoint: &str) -> io::Result<u64> {
        let mut lines = self.lines.lock();
        lines.clear();
        lines.push(checkpoint.to_string());
        Ok(0)
    }
}

#[derive(Debug)]
struct FrameState {
    segs: Vec<u64>,
    active: u64,
    active_len: u64,
    next_seg: u64,
    /// Set after any append/sync error: the active segment's tail may be
    /// garbage (short write), so the next append rotates to a fresh
    /// segment — damage stays at segment tails where torn-tail
    /// truncation handles it.
    poisoned: bool,
}

/// Checksummed, length-prefixed frames over segmented [`WalStorage`] —
/// the crash-consistent backend-tier sink.
#[derive(Debug)]
pub struct FrameWal {
    storage: Arc<dyn WalStorage>,
    cfg: WalConfig,
    st: Mutex<FrameState>,
}

impl FrameWal {
    /// Open (resuming existing segments if present) over `storage`.
    pub fn open(storage: Arc<dyn WalStorage>, cfg: WalConfig) -> io::Result<FrameWal> {
        let mut segs = storage.segments()?;
        segs.sort_unstable();
        let active = match segs.last() {
            Some(&s) => s,
            None => {
                segs.push(1);
                1
            }
        };
        let active_len = storage.read(active).map(|b| b.len() as u64).unwrap_or(0);
        Ok(FrameWal {
            storage,
            st: Mutex::with_class(
                FrameState {
                    next_seg: active + 1,
                    segs,
                    active,
                    active_len,
                    poisoned: false,
                },
                lock_class!("exec.wal.frames"),
            ),
            cfg,
        })
    }

    fn first_payload_is_checkpoint(bytes: &[u8]) -> bool {
        let mut scratch = RecoveryStats::default();
        scan_frames(bytes, &mut scratch)
            .first()
            .map(|p| p.starts_with("CKPT") && p[4..].starts_with(SEP))
            .unwrap_or(false)
    }
}

impl WalSink for FrameWal {
    fn append_batch(&self, payloads: &[&str], durable: bool) -> io::Result<()> {
        let mut st = self.st.lock();
        if st.poisoned {
            let seg = st.next_seg;
            st.next_seg += 1;
            st.segs.push(seg);
            st.active = seg;
            st.active_len = 0;
            st.poisoned = false;
        }
        let mut buf = Vec::new();
        for p in payloads {
            push_frame(&mut buf, p);
        }
        if let Err(e) = self.storage.append(st.active, &buf) {
            st.poisoned = true;
            return Err(e);
        }
        st.active_len += buf.len() as u64;
        if durable {
            if let Err(e) = self.storage.sync(st.active) {
                st.poisoned = true;
                return Err(e);
            }
        }
        Ok(())
    }

    fn load(&self) -> (Vec<String>, RecoveryStats) {
        let mut stats = RecoveryStats::default();
        let mut segs = match self.storage.segments() {
            Ok(s) => s,
            Err(_) => {
                stats.io_errors += 1;
                return (Vec::new(), stats);
            }
        };
        segs.sort_unstable();
        stats.segments_total = segs.len() as u64;
        // Newest segment headed by a checkpoint bounds the replay.
        let mut start = 0usize;
        for i in (1..segs.len()).rev() {
            if let Ok(bytes) = self.storage.read(segs[i]) {
                if Self::first_payload_is_checkpoint(&bytes) {
                    start = i;
                    break;
                }
            }
        }
        let mut payloads = Vec::new();
        for &seg in &segs[start..] {
            match self.storage.read(seg) {
                Ok(bytes) => payloads.extend(scan_frames(&bytes, &mut stats)),
                Err(_) => stats.io_errors += 1,
            }
        }
        stats.segments_read = (segs.len() - start) as u64;
        (payloads, stats)
    }

    fn wants_checkpoint(&self) -> bool {
        self.st.lock().active_len >= self.cfg.segment_max_bytes
    }

    fn install_checkpoint(&self, checkpoint: &str) -> io::Result<u64> {
        let mut st = self.st.lock();
        let seg = st.next_seg;
        st.next_seg += 1;
        let mut buf = Vec::new();
        push_frame(&mut buf, checkpoint);
        // Durable new segment BEFORE reclaiming old ones: a crash between
        // the two leaves extra history, never a hole.
        if let Err(e) = self.storage.append(seg, &buf) {
            let _ = self.storage.remove(seg);
            return Err(e);
        }
        if let Err(e) = self.storage.sync(seg) {
            let _ = self.storage.remove(seg);
            return Err(e);
        }
        let old = std::mem::take(&mut st.segs);
        let mut kept = Vec::new();
        let mut reclaimed = 0u64;
        for s in old {
            if self.storage.remove(s).is_ok() {
                reclaimed += 1;
            } else {
                kept.push(s);
            }
        }
        kept.push(seg);
        st.segs = kept;
        st.active = seg;
        st.active_len = buf.len() as u64;
        st.poisoned = false;
        Ok(reclaimed)
    }
}

/// Compatibility facade over the pre-segmentation file sink: `open(path)`
/// now yields a [`FrameWal`] over a [`FileStorage`] rooted at `path`
/// (segment files are `<path>.<n>`).
#[derive(Debug)]
pub struct FileWal;

impl FileWal {
    /// Open a framed, segmented file log rooted at `path`.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<FrameWal> {
        FrameWal::open(Arc::new(FileStorage::open(path)?), WalConfig::default())
    }
}

// ---------------------------------------------------------------------------
// The Wal: group commit, fold, degradation
// ---------------------------------------------------------------------------

/// Why a commit did not make it to durable storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The sink failed while flushing the batch containing this commit.
    Io(String),
    /// The log is in read-only degradation after a recent failure; retry
    /// after the hint.
    ReadOnly {
        /// Milliseconds until the log will probe the sink again.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "wal write failed: {msg}"),
            WalError::ReadOnly { retry_after_ms } => {
                write!(f, "wal read-only; retry-after-ms={retry_after_ms}")
            }
        }
    }
}

/// Tuning for the logging service.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate + checkpoint once the active segment reaches this size.
    pub segment_max_bytes: u64,
    /// Checkpoint after this many events even if the segment is small.
    pub checkpoint_every_events: u64,
    /// How long the log stays read-only after a sink failure before the
    /// next commit probes the sink again.
    pub retry_after: Duration,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_max_bytes: 1024 * 1024,
            checkpoint_every_events: 4096,
            retry_after: Duration::from_secs(1),
        }
    }
}

#[derive(Default)]
struct CommitQueue {
    /// Payloads waiting for a leader, paired with their events for the
    /// post-flush fold.
    buf: Vec<(String, WalEvent)>,
    /// Total payloads ever enqueued; a committer's ticket is the value
    /// after its own enqueue.
    enqueued: u64,
    /// Total payloads taken into flush batches.
    taken: u64,
    /// Tickets ≤ this are durable.
    durable: u64,
    /// A leader is currently flushing (queue lock released).
    flushing: bool,
    /// Failed batches as `(lo, hi]` ticket ranges; tickets in a failed
    /// range get the error. Bounded: the degraded latch throttles new
    /// commits, so ranges cannot pile up unboundedly.
    failures: VecDeque<(u64, u64, String)>,
}

struct WalIo {
    fold: CheckpointState,
    fold_index: BTreeMap<u64, usize>,
    events_since_ckpt: u64,
}

struct WalTelemetry {
    append: Arc<infogram_sim::metrics::Histogram>,
    group_size: Arc<infogram_sim::metrics::Recorder>,
    fsyncs: Arc<infogram_sim::metrics::Counter>,
    append_errors: Arc<infogram_sim::metrics::Counter>,
    dropped_records: Arc<infogram_sim::metrics::Counter>,
    checkpoints: Arc<infogram_sim::metrics::Counter>,
    segments_reclaimed: Arc<infogram_sim::metrics::Counter>,
    read_only: Arc<infogram_sim::metrics::Gauge>,
    checkpoint_age: Arc<infogram_sim::metrics::Gauge>,
}

/// The logging service handle used by the engine.
pub struct Wal {
    sink: Box<dyn WalSink>,
    cfg: WalConfig,
    queue: Mutex<CommitQueue>,
    queue_cv: Condvar,
    io: Mutex<WalIo>,
    /// `Some(not_before)` while read-only degraded.
    degraded: Mutex<Option<SimTime>>,
    telemetry: Option<WalTelemetry>,
    load_stats: RecoveryStats,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").finish_non_exhaustive()
    }
}

impl Wal {
    /// A log over the given sink with default tuning.
    pub fn new(sink: Box<dyn WalSink>) -> Self {
        Self::with_config(sink, WalConfig::default())
    }

    /// A log over the given sink with explicit tuning.
    pub fn with_config(sink: Box<dyn WalSink>, cfg: WalConfig) -> Self {
        let (payloads, mut stats) = sink.load();
        let mut fold = CheckpointState::default();
        let mut fold_index = BTreeMap::new();
        let mut events_since = 0u64;
        for p in &payloads {
            match WalEvent::decode(p) {
                Some(ev) => {
                    let is_ckpt = matches!(ev, WalEvent::Checkpoint(_));
                    fold.apply(&ev, &mut fold_index);
                    stats.events_replayed += 1;
                    if is_ckpt {
                        events_since = 0;
                        stats.checkpoint_used = true;
                    } else {
                        events_since += 1;
                    }
                }
                None => stats.corrupt_frames += 1,
            }
        }
        stats.events_since_checkpoint = events_since;
        Wal {
            sink,
            cfg,
            queue: Mutex::with_class(CommitQueue::default(), lock_class!("exec.wal.queue")),
            queue_cv: Condvar::with_class(lock_class!("exec.wal.commit_cv")),
            io: Mutex::with_class(
                WalIo {
                    fold,
                    fold_index,
                    events_since_ckpt: events_since,
                },
                lock_class!("exec.wal.io"),
            ),
            degraded: Mutex::with_class(None, lock_class!("exec.wal.degraded")),
            telemetry: None,
            load_stats: stats,
        }
    }

    /// An in-memory log.
    pub fn in_memory() -> Self {
        Wal::new(Box::new(MemWal::new()))
    }

    /// What recovery salvaged when this log was opened.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.load_stats
    }

    /// The configured read-only backoff, in milliseconds (retry hint for
    /// errors discovered mid-flush).
    pub fn retry_after_ms(&self) -> u64 {
        self.cfg.retry_after.as_millis() as u64
    }

    /// A snapshot of the folded log (job table + accounting) as of the
    /// last durable write — what a checkpoint would serialize right now.
    pub fn fold_snapshot(&self) -> CheckpointState {
        self.io.lock().fold.clone()
    }

    /// Attach a telemetry handle. Publishes the recovery damage gauges
    /// immediately; subsequent writes feed `wal.append`, `wal.group_size`,
    /// `wal.fsyncs`, `wal.append_errors`, `wal.checkpoints`,
    /// `wal.segments_reclaimed`, `wal.read_only`, `wal.checkpoint_age`.
    pub fn set_telemetry(&mut self, telemetry: MetricSet) {
        telemetry
            .gauge("wal.corrupt_frames")
            .set(self.load_stats.corrupt_frames as f64);
        telemetry
            .gauge("wal.truncated_tail_bytes")
            .set(self.load_stats.truncated_tail_bytes as f64);
        let t = WalTelemetry {
            append: telemetry.histogram("wal.append"),
            group_size: telemetry.recorder("wal.group_size"),
            fsyncs: telemetry.counter("wal.fsyncs"),
            append_errors: telemetry.counter("wal.append_errors"),
            dropped_records: telemetry.counter("wal.dropped_records"),
            checkpoints: telemetry.counter("wal.checkpoints"),
            segments_reclaimed: telemetry.counter("wal.segments_reclaimed"),
            read_only: telemetry.gauge("wal.read_only"),
            checkpoint_age: telemetry.gauge("wal.checkpoint_age"),
        };
        t.read_only.set(0.0);
        t.checkpoint_age
            .set(self.load_stats.events_since_checkpoint as f64);
        self.telemetry = Some(t);
    }

    /// If the log is in read-only degradation at `now`, the retry hint in
    /// milliseconds.
    pub fn read_only_hint(&self, now: SimTime) -> Option<u64> {
        let g = self.degraded.lock();
        match *g {
            Some(not_before) if now < not_before => {
                Some((not_before.since(now).as_millis() as u64).max(1))
            }
            _ => None,
        }
    }

    fn enter_read_only(&self, now: SimTime) {
        *self.degraded.lock() = Some(now.plus(self.cfg.retry_after));
        if let Some(t) = &self.telemetry {
            t.read_only.set(1.0);
        }
    }

    fn exit_read_only(&self) {
        let mut g = self.degraded.lock();
        if g.take().is_some() {
            if let Some(t) = &self.telemetry {
                t.read_only.set(0.0);
            }
        }
    }

    /// Durably record `events` (group commit). Blocks until the batch
    /// containing them is flushed and fsynced — only then may the caller
    /// ack. Never call while holding engine locks: the ticket wait is a
    /// condvar blocking point.
    ///
    /// While degraded the fast path returns [`WalError::ReadOnly`]
    /// without touching the sink; after the backoff the next commit
    /// probes the sink again.
    pub fn commit(&self, now: SimTime, events: &[WalEvent]) -> Result<(), WalError> {
        if events.is_empty() {
            return Ok(());
        }
        if let Some(retry_after_ms) = self.read_only_hint(now) {
            if let Some(t) = &self.telemetry {
                t.dropped_records.incr();
            }
            return Err(WalError::ReadOnly { retry_after_ms });
        }
        let items: Vec<(String, WalEvent)> =
            events.iter().map(|e| (e.encode(), e.clone())).collect();
        let mut q = self.queue.lock();
        q.enqueued += items.len() as u64;
        let my = q.enqueued;
        q.buf.extend(items);
        loop {
            // Failed ranges first: `durable` jumps past a failed batch
            // when a later one succeeds, so the order matters.
            if let Some(msg) = q
                .failures
                .iter()
                .find(|(lo, hi, _)| *lo < my && my <= *hi)
                .map(|(_, _, m)| m.clone())
            {
                return Err(WalError::Io(msg));
            }
            if q.durable >= my {
                return Ok(());
            }
            if !q.flushing {
                q.flushing = true;
                let batch = std::mem::take(&mut q.buf);
                let lo = q.taken;
                q.taken += batch.len() as u64;
                let hi = q.taken;
                drop(q);
                let res = self.flush_batch(&batch);
                q = self.queue.lock();
                q.flushing = false;
                match res {
                    Ok(()) => {
                        q.durable = q.durable.max(hi);
                        self.exit_read_only();
                    }
                    Err(e) => {
                        if let Some(t) = &self.telemetry {
                            t.append_errors.incr();
                        }
                        q.failures.push_back((lo, hi, e.to_string()));
                        if q.failures.len() > 64 {
                            q.failures.pop_front();
                        }
                        self.enter_read_only(now);
                    }
                }
                self.queue_cv.notify_all();
                continue;
            }
            self.queue_cv.wait(&mut q);
        }
    }

    fn flush_batch(&self, batch: &[(String, WalEvent)]) -> io::Result<()> {
        // lint:allow(direct-clock) — times the real encode+write+fsync I/O
        // into the `wal.append` histogram; virtual time would read as zero
        let start = Instant::now();
        let refs: Vec<&str> = batch.iter().map(|(p, _)| p.as_str()).collect();
        let mut io = self.io.lock();
        self.sink.append_batch(&refs, true)?;
        for (_, ev) in batch {
            io.fold_apply(ev);
        }
        if let Some(t) = &self.telemetry {
            t.append.record(start.elapsed());
            t.group_size.record(batch.len() as f64);
            t.fsyncs.incr();
            t.checkpoint_age.set(io.events_since_ckpt as f64);
        }
        self.maybe_checkpoint(&mut io);
        Ok(())
    }

    fn maybe_checkpoint(&self, io: &mut WalIo) {
        if io.events_since_ckpt == 0 {
            return;
        }
        let due = self.sink.wants_checkpoint()
            || io.events_since_ckpt >= self.cfg.checkpoint_every_events;
        if !due {
            return;
        }
        let ckpt = io.fold.encode();
        match self.sink.install_checkpoint(&ckpt) {
            Ok(reclaimed) => {
                io.events_since_ckpt = 0;
                if let Some(t) = &self.telemetry {
                    t.checkpoints.incr();
                    t.fsyncs.incr();
                    t.segments_reclaimed.add(reclaimed);
                    t.checkpoint_age.set(0.0);
                }
            }
            Err(_) => {
                // Not fatal: old segments are intact; retry on a later
                // write.
                if let Some(t) = &self.telemetry {
                    t.append_errors.incr();
                }
            }
        }
    }

    /// Record a non-critical event (relaxed: append without fsync, no
    /// group commit). Used for observational records — non-terminal state
    /// changes, the §7 query log — where a crash losing the tail is
    /// acceptable. While degraded the record is dropped and counted in
    /// `wal.dropped_records`.
    pub fn record(&self, now: SimTime, event: &WalEvent) {
        if self.read_only_hint(now).is_some() {
            if let Some(t) = &self.telemetry {
                t.dropped_records.incr();
            }
            return;
        }
        let payload = event.encode();
        // lint:allow(direct-clock) — times the real encode+write I/O into
        // the `wal.append` histogram; virtual time would read as zero
        let start = Instant::now();
        let mut io = self.io.lock();
        match self.sink.append_batch(&[payload.as_str()], false) {
            Ok(()) => {
                io.fold_apply(event);
                if let Some(t) = &self.telemetry {
                    t.append.record(start.elapsed());
                    t.checkpoint_age.set(io.events_since_ckpt as f64);
                }
                self.maybe_checkpoint(&mut io);
            }
            Err(_) => {
                drop(io);
                if let Some(t) = &self.telemetry {
                    t.append_errors.incr();
                }
                self.enter_read_only(now);
            }
        }
    }

    /// Load and decode every recoverable event, skipping corrupt records.
    pub fn events(&self) -> Vec<WalEvent> {
        self.sink
            .load()
            .0
            .iter()
            .filter_map(|l| WalEvent::decode(l))
            .collect()
    }
}

impl WalIo {
    fn fold_apply(&mut self, ev: &WalEvent) {
        self.fold.apply(ev, &mut self.fold_index);
        self.events_since_ckpt += 1;
    }
}

/// A job reconstructed from the log.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// Original job id.
    pub job_id: u64,
    /// The xRSL it was submitted with.
    pub rsl: String,
    /// Owner DN string.
    pub owner: String,
    /// Local account.
    pub account: String,
    /// Terminal state, if the job finished before the crash.
    pub finished: Option<(JobStateCode, Option<i32>)>,
}

/// Everything recovery needs from a log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredState {
    /// Highest epoch seen (the restarted service uses `epoch + 1`).
    pub last_epoch: u64,
    /// Highest job id seen (ids continue from here).
    pub last_job_id: u64,
    /// All jobs, in submission order.
    pub jobs: Vec<RecoveredJob>,
}

impl RecoveredState {
    /// Rebuild from events (a checkpoint event replaces everything before
    /// it).
    pub fn from_events(events: &[WalEvent]) -> RecoveredState {
        let mut fold = CheckpointState::default();
        let mut index = BTreeMap::new();
        for ev in events {
            fold.apply(ev, &mut index);
        }
        fold.state
    }

    /// Jobs that were in flight when the service died — the ones restart
    /// must resubmit.
    pub fn unfinished(&self) -> Vec<&RecoveredJob> {
        self.jobs.iter().filter(|j| j.finished.is_none()).collect()
    }
}

/// Per-account usage derived from the log — the paper's "simple Grid
/// accounting".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccountUsage {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs that failed or were cancelled.
    pub failed: u64,
    /// Total wall seconds of finished jobs.
    pub wall_seconds: f64,
    /// Information queries served (the §7 query log).
    pub info_queries: u64,
}

/// Summarize the log per local account (a checkpoint event carries the
/// accounting accumulated before it).
pub fn accounting_summary(events: &[WalEvent]) -> BTreeMap<String, AccountUsage> {
    let mut fold = CheckpointState::default();
    let mut index = BTreeMap::new();
    for ev in events {
        fold.apply(ev, &mut index);
    }
    fold.accounts
}

#[cfg(test)]
mod tests {
    use super::*;
    use infogram_sim::fault::DiskFault;

    fn sample_events() -> Vec<WalEvent> {
        vec![
            WalEvent::ServiceStarted { epoch: 1 },
            WalEvent::Submitted {
                job_id: 1,
                rsl: "&(executable=/bin/date)(arguments=-u)".to_string(),
                owner: "/O=Grid/CN=Alice".to_string(),
                account: "alice".to_string(),
            },
            WalEvent::StateChanged {
                job_id: 1,
                state: JobStateCode::Active,
            },
            WalEvent::Submitted {
                job_id: 2,
                rsl: "(executable=simwork 500)".to_string(),
                owner: "/O=Grid/CN=Bob".to_string(),
                account: "bob".to_string(),
            },
            WalEvent::Finished {
                job_id: 1,
                state: JobStateCode::Done,
                exit_code: Some(0),
                wall_seconds: 1.25,
            },
        ]
    }

    fn commit_all(wal: &Wal, events: &[WalEvent]) {
        for ev in events {
            wal.commit(SimTime::ZERO, std::slice::from_ref(ev)).unwrap();
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for ev in sample_events() {
            let line = ev.encode();
            assert!(!line.contains('\n'));
            assert_eq!(WalEvent::decode(&line), Some(ev));
        }
        // Finished with no exit code.
        let ev = WalEvent::Finished {
            job_id: 3,
            state: JobStateCode::Canceled,
            exit_code: None,
            wall_seconds: 0.5,
        };
        assert_eq!(WalEvent::decode(&ev.encode()), Some(ev));
        // Info query log entries.
        let ev = WalEvent::InfoQueried {
            owner: "/O=Grid/CN=Alice".to_string(),
            account: "alice".to_string(),
            keywords: "Memory,CPU".to_string(),
        };
        assert_eq!(WalEvent::decode(&ev.encode()), Some(ev));
    }

    #[test]
    fn hostile_fields_roundtrip() {
        // Separators, newlines, and the escape character itself in every
        // free-form field must survive encode/decode losslessly.
        let ev = WalEvent::Submitted {
            job_id: 7,
            rsl: "&(executable=/bin/echo)(arguments=a\x1fb\nc%25d)".to_string(),
            owner: "/O=Grid/CN=Eve\x1fMallory\r\n".to_string(),
            account: "eve%1F\x1f".to_string(),
        };
        let line = ev.encode();
        assert!(!line.contains('\n'));
        assert_eq!(
            line.matches(SEP).count(),
            4,
            "escaped fields leak separators"
        );
        assert_eq!(WalEvent::decode(&line), Some(ev));
        let ev = WalEvent::InfoQueried {
            owner: "a\x1fb".to_string(),
            account: "%".to_string(),
            keywords: "Memory,\nCPU".to_string(),
        };
        assert_eq!(WalEvent::decode(&ev.encode()), Some(ev));
    }

    #[test]
    fn decode_rejects_corrupt_lines() {
        assert_eq!(WalEvent::decode(""), None);
        assert_eq!(WalEvent::decode("NOISE"), None);
        assert_eq!(WalEvent::decode("STATE\x1fabc\x1fACTIVE"), None);
        assert_eq!(WalEvent::decode("STATE\x1f1\x1fDANCING"), None);
        // Raw newline / bad escape in an escaped field: the encoder never
        // produces these, so they are corruption.
        assert_eq!(WalEvent::decode("INFOQ\x1fa\nb\x1facct\x1fkw"), None);
        assert_eq!(WalEvent::decode("INFOQ\x1fa%ZZ\x1facct\x1fkw"), None);
        assert_eq!(WalEvent::decode("INFOQ\x1fa%2\x1facct\x1fkw"), None);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut fold = CheckpointState::default();
        let mut index = BTreeMap::new();
        for ev in sample_events() {
            fold.apply(&ev, &mut index);
        }
        let ev = WalEvent::Checkpoint(Box::new(fold.clone()));
        let decoded = WalEvent::decode(&ev.encode()).expect("checkpoint decodes");
        assert_eq!(decoded, ev);
        // Replaying [checkpoint] alone equals replaying the history.
        assert_eq!(
            RecoveredState::from_events(std::slice::from_ref(&decoded)),
            RecoveredState::from_events(&sample_events())
        );
        assert_eq!(
            accounting_summary(&[decoded]),
            accounting_summary(&sample_events())
        );
    }

    #[test]
    fn frame_scan_roundtrip_and_torn_tail() {
        let payloads = ["one", "two", "three"];
        let mut buf = Vec::new();
        for p in payloads {
            push_frame(&mut buf, p);
        }
        let mut stats = RecoveryStats::default();
        assert_eq!(scan_frames(&buf, &mut stats), payloads);
        assert_eq!(stats, RecoveryStats::default());
        // Every strict prefix yields a (possibly shorter) prefix of the
        // payloads plus a torn tail — never a panic, never garbage.
        for cut in 0..buf.len() {
            let mut stats = RecoveryStats::default();
            let got = scan_frames(&buf[..cut], &mut stats);
            assert!(got.len() <= payloads.len());
            assert_eq!(got, payloads[..got.len()]);
            assert_eq!(stats.corrupt_frames, 0);
            if got.len() < payloads.len() && cut > got_len_bytes(&payloads[..got.len()]) {
                assert!(stats.truncated_tail_bytes > 0);
            }
        }
    }

    fn got_len_bytes(payloads: &[&str]) -> usize {
        payloads.iter().map(|p| p.len() + 8).sum()
    }

    #[test]
    fn frame_scan_skips_mid_log_corruption() {
        let mut buf = Vec::new();
        push_frame(&mut buf, "first");
        let corrupt_at = buf.len() + 9; // a payload byte of the second frame
        push_frame(&mut buf, "second");
        push_frame(&mut buf, "third");
        buf[corrupt_at] ^= 0xFF;
        let mut stats = RecoveryStats::default();
        assert_eq!(scan_frames(&buf, &mut stats), ["first", "third"]);
        assert_eq!(stats.corrupt_frames, 1);
        assert_eq!(stats.truncated_tail_bytes, 0);
    }

    #[test]
    fn mem_wal_roundtrip() {
        let wal = Wal::in_memory();
        commit_all(&wal, &sample_events());
        assert_eq!(wal.events(), sample_events());
    }

    #[test]
    fn record_is_read_your_writes() {
        let wal = Wal::in_memory();
        wal.record(SimTime::ZERO, &sample_events()[0]);
        wal.record(SimTime::ZERO, &sample_events()[1]);
        assert_eq!(wal.events().len(), 2);
        assert_eq!(wal.fold_snapshot().state.jobs.len(), 1);
    }

    #[test]
    fn file_wal_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("infogram-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test-survive.log");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        {
            let wal = Wal::new(Box::new(FileWal::open(&path).unwrap()));
            commit_all(&wal, &sample_events());
        }
        let wal = Wal::new(Box::new(FileWal::open(&path).unwrap()));
        assert_eq!(wal.events(), sample_events());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frame_wal_recovers_from_mem_storage_crash() {
        let storage = MemStorage::new();
        let cfg = WalConfig::default();
        {
            let wal = Wal::with_config(
                Box::new(FrameWal::open(storage.clone(), cfg.clone()).unwrap()),
                cfg.clone(),
            );
            commit_all(&wal, &sample_events());
            // One relaxed record that is appended but never synced.
            wal.record(
                SimTime::ZERO,
                &WalEvent::StateChanged {
                    job_id: 2,
                    state: JobStateCode::Active,
                },
            );
        }
        storage.crash();
        storage.restart();
        let wal = Wal::with_config(Box::new(FrameWal::open(storage, cfg.clone()).unwrap()), cfg);
        // Committed events survive; the unsynced relaxed record is gone.
        assert_eq!(wal.events(), sample_events());
    }

    #[test]
    fn checkpoint_bounds_replay_and_reclaims_segments() {
        let storage = MemStorage::new();
        let cfg = WalConfig {
            segment_max_bytes: 256,
            checkpoint_every_events: 10_000,
            ..WalConfig::default()
        };
        let wal = Wal::with_config(
            Box::new(FrameWal::open(storage.clone(), cfg.clone()).unwrap()),
            cfg.clone(),
        );
        for i in 1..=50u64 {
            wal.commit(
                SimTime::ZERO,
                &[
                    WalEvent::Submitted {
                        job_id: i,
                        rsl: format!("(executable=job{i})"),
                        owner: "/O=Grid/CN=Alice".to_string(),
                        account: "alice".to_string(),
                    },
                    WalEvent::Finished {
                        job_id: i,
                        state: JobStateCode::Done,
                        exit_code: Some(0),
                        wall_seconds: 1.0,
                    },
                ],
            )
            .unwrap();
        }
        drop(wal);
        let wal = Wal::with_config(
            Box::new(FrameWal::open(storage.clone(), cfg.clone()).unwrap()),
            cfg,
        );
        let stats = wal.recovery_stats().clone();
        assert!(stats.checkpoint_used, "replay should start at a checkpoint");
        assert!(
            stats.events_replayed < 100,
            "checkpoint + tail, not full history (replayed {})",
            stats.events_replayed
        );
        assert!(
            stats.segments_total <= 3,
            "old segments reclaimed (have {})",
            stats.segments_total
        );
        // And the folded table is complete despite the bounded replay.
        let snap = wal.fold_snapshot();
        assert_eq!(snap.state.jobs.len(), 50);
        assert_eq!(snap.state.last_job_id, 50);
        assert_eq!(snap.accounts["alice"].completed, 50);
        assert!((snap.accounts["alice"].wall_seconds - 50.0).abs() < 1e-6);
    }

    #[test]
    fn commit_fails_and_degrades_on_disk_fault() {
        let plan = DiskFaultPlan::new();
        plan.fault_append(0, DiskFault::FailAppend);
        let storage = MemStorage::with_plan(Some(plan));
        let cfg = WalConfig::default();
        let wal = Wal::with_config(Box::new(FrameWal::open(storage, cfg.clone()).unwrap()), cfg);
        let t0 = SimTime::ZERO;
        let err = wal.commit(t0, &[sample_events()[0].clone()]).unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "got {err:?}");
        // Now degraded: fast-path rejection with a retry hint.
        let err = wal.commit(t0, &[sample_events()[0].clone()]).unwrap_err();
        match err {
            WalError::ReadOnly { retry_after_ms } => assert!(retry_after_ms > 0),
            other => panic!("expected ReadOnly, got {other:?}"),
        }
        assert!(wal.read_only_hint(t0).is_some());
        // After the backoff the next commit probes and heals.
        let later = t0.plus(Duration::from_secs(2));
        assert!(wal.read_only_hint(later).is_none());
        wal.commit(later, &[sample_events()[0].clone()]).unwrap();
        assert!(wal.read_only_hint(later).is_none());
    }

    #[test]
    fn fsync_failure_fails_the_commit_but_rotation_recovers() {
        let plan = DiskFaultPlan::new();
        plan.fail_sync(0);
        let storage = MemStorage::with_plan(Some(plan));
        let cfg = WalConfig::default();
        let wal = Wal::with_config(
            Box::new(FrameWal::open(storage.clone(), cfg.clone()).unwrap()),
            cfg.clone(),
        );
        let t0 = SimTime::ZERO;
        assert!(wal.commit(t0, &[sample_events()[0].clone()]).is_err());
        let later = t0.plus(Duration::from_secs(2));
        wal.commit(later, &[sample_events()[1].clone()]).unwrap();
        drop(wal);
        // The failed commit's bytes may exist but the successful one must
        // be recoverable after a crash.
        storage.crash();
        storage.restart();
        let wal = Wal::with_config(Box::new(FrameWal::open(storage, cfg.clone()).unwrap()), cfg);
        assert!(wal.events().contains(&sample_events()[1]));
    }

    #[test]
    fn recovery_finds_unfinished_jobs() {
        let state = RecoveredState::from_events(&sample_events());
        assert_eq!(state.last_epoch, 1);
        assert_eq!(state.last_job_id, 2);
        assert_eq!(state.jobs.len(), 2);
        let unfinished = state.unfinished();
        assert_eq!(unfinished.len(), 1);
        assert_eq!(unfinished[0].job_id, 2);
        assert_eq!(unfinished[0].account, "bob");
        // Job 1 finished before the crash.
        assert_eq!(state.jobs[0].finished, Some((JobStateCode::Done, Some(0))));
    }

    #[test]
    fn recovery_skips_corrupt_lines() {
        let wal = Wal::in_memory();
        wal.record(SimTime::ZERO, &sample_events()[0]);
        wal.sink.append_batch(&["CORRUPT LINE"], false).unwrap();
        wal.record(SimTime::ZERO, &sample_events()[1]);
        assert_eq!(wal.events().len(), 2);
    }

    #[test]
    fn accounting_per_account() {
        let mut events = sample_events();
        events.push(WalEvent::Finished {
            job_id: 2,
            state: JobStateCode::Failed,
            exit_code: Some(3),
            wall_seconds: 0.75,
        });
        let summary = accounting_summary(&events);
        let alice = &summary["alice"];
        assert_eq!(alice.submitted, 1);
        assert_eq!(alice.completed, 1);
        assert_eq!(alice.failed, 0);
        assert!((alice.wall_seconds - 1.25).abs() < 1e-9);
        let bob = &summary["bob"];
        assert_eq!(bob.submitted, 1);
        assert_eq!(bob.failed, 1);
    }

    #[test]
    fn accounting_counts_info_queries() {
        let events = vec![
            WalEvent::InfoQueried {
                owner: "/O=Grid/CN=Alice".to_string(),
                account: "alice".to_string(),
                keywords: "Memory".to_string(),
            },
            WalEvent::InfoQueried {
                owner: "/O=Grid/CN=Alice".to_string(),
                account: "alice".to_string(),
                keywords: "CPU,CPULoad".to_string(),
            },
        ];
        let summary = accounting_summary(&events);
        assert_eq!(summary["alice"].info_queries, 2);
        assert_eq!(summary["alice"].submitted, 0);
    }

    #[test]
    fn epoch_tracking_across_restarts() {
        let events = vec![
            WalEvent::ServiceStarted { epoch: 1 },
            WalEvent::ServiceStarted { epoch: 2 },
            WalEvent::ServiceStarted { epoch: 3 },
        ];
        assert_eq!(RecoveredState::from_events(&events).last_epoch, 3);
    }
}
