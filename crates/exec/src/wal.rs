//! The logging service: write-ahead log, restart recovery, accounting.
//!
//! §6 of the paper: "Logging and check pointing is enabled through a
//! logging service. ... In either case the log can be used to restart our
//! InfoGRAM service in case it needs to be restarted (e.g. the machine was
//! shut down). ... Presently, we only record minimal information such as
//! the command used and arguments executed. We intend to use this logging
//! service to provide simple Grid accounting."
//!
//! Faithful to that: the log records submissions (the xRSL text — the
//! command and arguments), state changes, and completions; [`RecoveredState`]
//! rebuilds the job table from it; [`accounting_summary`] derives the
//! per-account usage report.

use infogram_proto::message::JobStateCode;
use infogram_sim::metrics::MetricSet;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

const SEP: char = '\x1f';

/// One logged event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEvent {
    /// The service (re)started with this epoch.
    ServiceStarted {
        /// Restart generation.
        epoch: u64,
    },
    /// A job was accepted.
    Submitted {
        /// Engine-local job id.
        job_id: u64,
        /// The full xRSL text — "the command used and arguments".
        rsl: String,
        /// The grid identity (DN string).
        owner: String,
        /// The mapped local account.
        account: String,
    },
    /// A job changed state.
    StateChanged {
        /// Which job.
        job_id: u64,
        /// The new state.
        state: JobStateCode,
    },
    /// An authenticated information query was served (§7: "logging of
    /// authenticated information queries to guide the use as part of
    /// intelligent scheduling services").
    InfoQueried {
        /// The grid identity (DN string).
        owner: String,
        /// The mapped local account.
        account: String,
        /// Comma-joined keywords served.
        keywords: String,
    },
    /// A job reached a terminal state.
    Finished {
        /// Which job.
        job_id: u64,
        /// Terminal state (Done/Failed/Canceled).
        state: JobStateCode,
        /// Exit code if the job ran to completion.
        exit_code: Option<i32>,
        /// Wall seconds consumed (for accounting).
        wall_seconds: f64,
    },
}

fn state_str(s: JobStateCode) -> &'static str {
    match s {
        JobStateCode::Pending => "PENDING",
        JobStateCode::Active => "ACTIVE",
        JobStateCode::Suspended => "SUSPENDED",
        JobStateCode::Done => "DONE",
        JobStateCode::Failed => "FAILED",
        JobStateCode::Canceled => "CANCELED",
    }
}

fn parse_state(s: &str) -> Option<JobStateCode> {
    Some(match s {
        "PENDING" => JobStateCode::Pending,
        "ACTIVE" => JobStateCode::Active,
        "SUSPENDED" => JobStateCode::Suspended,
        "DONE" => JobStateCode::Done,
        "FAILED" => JobStateCode::Failed,
        "CANCELED" => JobStateCode::Canceled,
        _ => return None,
    })
}

impl WalEvent {
    /// Encode as one log line (no newlines; RSL text cannot contain
    /// newlines after parsing).
    pub fn encode(&self) -> String {
        match self {
            WalEvent::ServiceStarted { epoch } => format!("START{SEP}{epoch}"),
            WalEvent::Submitted {
                job_id,
                rsl,
                owner,
                account,
            } => {
                let rsl = rsl.replace('\n', " ");
                format!("SUBMIT{SEP}{job_id}{SEP}{owner}{SEP}{account}{SEP}{rsl}")
            }
            WalEvent::StateChanged { job_id, state } => {
                format!("STATE{SEP}{job_id}{SEP}{}", state_str(*state))
            }
            WalEvent::InfoQueried {
                owner,
                account,
                keywords,
            } => format!("INFOQ{SEP}{owner}{SEP}{account}{SEP}{keywords}"),
            WalEvent::Finished {
                job_id,
                state,
                exit_code,
                wall_seconds,
            } => format!(
                "FINISH{SEP}{job_id}{SEP}{}{SEP}{}{SEP}{wall_seconds:.3}",
                state_str(*state),
                exit_code.map(|c| c.to_string()).unwrap_or_default()
            ),
        }
    }

    /// Decode one log line; `None` for corrupt lines (recovery skips
    /// them rather than refusing to start).
    pub fn decode(line: &str) -> Option<WalEvent> {
        let fields: Vec<&str> = line.split(SEP).collect();
        match fields.as_slice() {
            ["START", epoch] => Some(WalEvent::ServiceStarted {
                epoch: epoch.parse().ok()?,
            }),
            ["SUBMIT", job_id, owner, account, rsl] => Some(WalEvent::Submitted {
                job_id: job_id.parse().ok()?,
                rsl: rsl.to_string(),
                owner: owner.to_string(),
                account: account.to_string(),
            }),
            ["STATE", job_id, state] => Some(WalEvent::StateChanged {
                job_id: job_id.parse().ok()?,
                state: parse_state(state)?,
            }),
            ["INFOQ", owner, account, keywords] => Some(WalEvent::InfoQueried {
                owner: owner.to_string(),
                account: account.to_string(),
                keywords: keywords.to_string(),
            }),
            ["FINISH", job_id, state, exit, wall] => Some(WalEvent::Finished {
                job_id: job_id.parse().ok()?,
                state: parse_state(state)?,
                exit_code: if exit.is_empty() {
                    None
                } else {
                    Some(exit.parse().ok()?)
                },
                wall_seconds: wall.parse().ok()?,
            }),
            _ => None,
        }
    }
}

/// Where log lines go. "The log can either be stored in the middle tier,
/// or on the backend tier" — here: in memory, or on disk.
pub trait WalSink: Send + Sync {
    /// Append one encoded event.
    fn append(&self, line: &str);
    /// Load every line appended so far (including previous runs, for the
    /// file sink).
    fn load(&self) -> Vec<String>;
}

/// In-memory log (middle tier).
#[derive(Debug, Default)]
pub struct MemWal {
    lines: Mutex<Vec<String>>,
}

impl MemWal {
    /// An empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WalSink for MemWal {
    fn append(&self, line: &str) {
        self.lines.lock().push(line.to_string());
    }

    fn load(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

/// File-backed log (backend tier) — survives process restarts.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl FileWal {
    /// Open (creating or appending to) the log at `path`.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(FileWal {
            path,
            file: Mutex::new(file),
        })
    }
}

impl WalSink for FileWal {
    fn append(&self, line: &str) {
        let mut f = self.file.lock();
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
    }

    fn load(&self) -> Vec<String> {
        std::fs::read_to_string(&self.path)
            .map(|s| s.lines().map(str::to_string).collect())
            .unwrap_or_default()
    }
}

/// The logging service handle used by the engine.
pub struct Wal {
    sink: Box<dyn WalSink>,
    telemetry: Option<MetricSet>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").finish_non_exhaustive()
    }
}

impl Wal {
    /// A log over the given sink.
    pub fn new(sink: Box<dyn WalSink>) -> Self {
        Wal {
            sink,
            telemetry: None,
        }
    }

    /// An in-memory log.
    pub fn in_memory() -> Self {
        Wal::new(Box::new(MemWal::new()))
    }

    /// Attach a telemetry handle; every subsequent [`Wal::record`] times
    /// its append (encode + write + flush, real wall time) into the
    /// `wal.append` histogram.
    pub fn set_telemetry(&mut self, telemetry: MetricSet) {
        self.telemetry = Some(telemetry);
    }

    /// Record an event.
    pub fn record(&self, event: &WalEvent) {
        // lint:allow(direct-clock) — times the real encode+write+flush I/O
        // into the `wal.append` histogram; virtual time would read as zero
        let start = Instant::now();
        self.sink.append(&event.encode());
        if let Some(t) = &self.telemetry {
            t.histogram("wal.append").record(start.elapsed());
        }
    }

    /// Load and decode every recorded event, skipping corrupt lines.
    pub fn events(&self) -> Vec<WalEvent> {
        self.sink
            .load()
            .iter()
            .filter_map(|l| WalEvent::decode(l))
            .collect()
    }
}

/// A job reconstructed from the log.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// Original job id.
    pub job_id: u64,
    /// The xRSL it was submitted with.
    pub rsl: String,
    /// Owner DN string.
    pub owner: String,
    /// Local account.
    pub account: String,
    /// Terminal state, if the job finished before the crash.
    pub finished: Option<(JobStateCode, Option<i32>)>,
}

/// Everything recovery needs from a log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredState {
    /// Highest epoch seen (the restarted service uses `epoch + 1`).
    pub last_epoch: u64,
    /// Highest job id seen (ids continue from here).
    pub last_job_id: u64,
    /// All jobs, in submission order.
    pub jobs: Vec<RecoveredJob>,
}

impl RecoveredState {
    /// Rebuild from events.
    pub fn from_events(events: &[WalEvent]) -> RecoveredState {
        let mut state = RecoveredState::default();
        let mut index: BTreeMap<u64, usize> = BTreeMap::new();
        for ev in events {
            match ev {
                WalEvent::ServiceStarted { epoch } => {
                    state.last_epoch = state.last_epoch.max(*epoch);
                }
                WalEvent::Submitted {
                    job_id,
                    rsl,
                    owner,
                    account,
                } => {
                    state.last_job_id = state.last_job_id.max(*job_id);
                    index.insert(*job_id, state.jobs.len());
                    state.jobs.push(RecoveredJob {
                        job_id: *job_id,
                        rsl: rsl.clone(),
                        owner: owner.clone(),
                        account: account.clone(),
                        finished: None,
                    });
                }
                WalEvent::StateChanged { .. } | WalEvent::InfoQueried { .. } => {}
                WalEvent::Finished {
                    job_id,
                    state: s,
                    exit_code,
                    ..
                } => {
                    if let Some(&i) = index.get(job_id) {
                        state.jobs[i].finished = Some((*s, *exit_code));
                    }
                }
            }
        }
        state
    }

    /// Jobs that were in flight when the service died — the ones restart
    /// must resubmit.
    pub fn unfinished(&self) -> Vec<&RecoveredJob> {
        self.jobs.iter().filter(|j| j.finished.is_none()).collect()
    }
}

/// Per-account usage derived from the log — the paper's "simple Grid
/// accounting".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccountUsage {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs that failed or were cancelled.
    pub failed: u64,
    /// Total wall seconds of finished jobs.
    pub wall_seconds: f64,
    /// Information queries served (the §7 query log).
    pub info_queries: u64,
}

/// Summarize the log per local account.
pub fn accounting_summary(events: &[WalEvent]) -> BTreeMap<String, AccountUsage> {
    let mut by_account: BTreeMap<String, AccountUsage> = BTreeMap::new();
    let mut job_account: BTreeMap<u64, String> = BTreeMap::new();
    for ev in events {
        match ev {
            WalEvent::Submitted {
                job_id, account, ..
            } => {
                job_account.insert(*job_id, account.clone());
                by_account.entry(account.clone()).or_default().submitted += 1;
            }
            WalEvent::Finished {
                job_id,
                state,
                wall_seconds,
                ..
            } => {
                if let Some(account) = job_account.get(job_id) {
                    let usage = by_account.entry(account.clone()).or_default();
                    usage.wall_seconds += wall_seconds;
                    if *state == JobStateCode::Done {
                        usage.completed += 1;
                    } else {
                        usage.failed += 1;
                    }
                }
            }
            WalEvent::InfoQueried { account, .. } => {
                by_account.entry(account.clone()).or_default().info_queries += 1;
            }
            _ => {}
        }
    }
    by_account
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<WalEvent> {
        vec![
            WalEvent::ServiceStarted { epoch: 1 },
            WalEvent::Submitted {
                job_id: 1,
                rsl: "&(executable=/bin/date)(arguments=-u)".to_string(),
                owner: "/O=Grid/CN=Alice".to_string(),
                account: "alice".to_string(),
            },
            WalEvent::StateChanged {
                job_id: 1,
                state: JobStateCode::Active,
            },
            WalEvent::Submitted {
                job_id: 2,
                rsl: "(executable=simwork 500)".to_string(),
                owner: "/O=Grid/CN=Bob".to_string(),
                account: "bob".to_string(),
            },
            WalEvent::Finished {
                job_id: 1,
                state: JobStateCode::Done,
                exit_code: Some(0),
                wall_seconds: 1.25,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for ev in sample_events() {
            let line = ev.encode();
            assert!(!line.contains('\n'));
            assert_eq!(WalEvent::decode(&line), Some(ev));
        }
        // Finished with no exit code.
        let ev = WalEvent::Finished {
            job_id: 3,
            state: JobStateCode::Canceled,
            exit_code: None,
            wall_seconds: 0.5,
        };
        assert_eq!(WalEvent::decode(&ev.encode()), Some(ev));
        // Info query log entries.
        let ev = WalEvent::InfoQueried {
            owner: "/O=Grid/CN=Alice".to_string(),
            account: "alice".to_string(),
            keywords: "Memory,CPU".to_string(),
        };
        assert_eq!(WalEvent::decode(&ev.encode()), Some(ev));
    }

    #[test]
    fn decode_rejects_corrupt_lines() {
        assert_eq!(WalEvent::decode(""), None);
        assert_eq!(WalEvent::decode("NOISE"), None);
        assert_eq!(WalEvent::decode("STATE\x1fabc\x1fACTIVE"), None);
        assert_eq!(WalEvent::decode("STATE\x1f1\x1fDANCING"), None);
    }

    #[test]
    fn mem_wal_roundtrip() {
        let wal = Wal::in_memory();
        for ev in sample_events() {
            wal.record(&ev);
        }
        assert_eq!(wal.events(), sample_events());
    }

    #[test]
    fn file_wal_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("infogram-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test-survive.log");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::new(Box::new(FileWal::open(&path).unwrap()));
            for ev in sample_events() {
                wal.record(&ev);
            }
        }
        let wal = Wal::new(Box::new(FileWal::open(&path).unwrap()));
        assert_eq!(wal.events(), sample_events());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_finds_unfinished_jobs() {
        let state = RecoveredState::from_events(&sample_events());
        assert_eq!(state.last_epoch, 1);
        assert_eq!(state.last_job_id, 2);
        assert_eq!(state.jobs.len(), 2);
        let unfinished = state.unfinished();
        assert_eq!(unfinished.len(), 1);
        assert_eq!(unfinished[0].job_id, 2);
        assert_eq!(unfinished[0].account, "bob");
        // Job 1 finished before the crash.
        assert_eq!(state.jobs[0].finished, Some((JobStateCode::Done, Some(0))));
    }

    #[test]
    fn recovery_skips_corrupt_lines() {
        let wal = Wal::in_memory();
        wal.record(&sample_events()[0]);
        wal.sink.append("CORRUPT LINE");
        wal.record(&sample_events()[1]);
        assert_eq!(wal.events().len(), 2);
    }

    #[test]
    fn accounting_per_account() {
        let mut events = sample_events();
        events.push(WalEvent::Finished {
            job_id: 2,
            state: JobStateCode::Failed,
            exit_code: Some(3),
            wall_seconds: 0.75,
        });
        let summary = accounting_summary(&events);
        let alice = &summary["alice"];
        assert_eq!(alice.submitted, 1);
        assert_eq!(alice.completed, 1);
        assert_eq!(alice.failed, 0);
        assert!((alice.wall_seconds - 1.25).abs() < 1e-9);
        let bob = &summary["bob"];
        assert_eq!(bob.submitted, 1);
        assert_eq!(bob.failed, 1);
    }

    #[test]
    fn accounting_counts_info_queries() {
        let events = vec![
            WalEvent::InfoQueried {
                owner: "/O=Grid/CN=Alice".to_string(),
                account: "alice".to_string(),
                keywords: "Memory".to_string(),
            },
            WalEvent::InfoQueried {
                owner: "/O=Grid/CN=Alice".to_string(),
                account: "alice".to_string(),
                keywords: "CPU,CPULoad".to_string(),
            },
        ];
        let summary = accounting_summary(&events);
        assert_eq!(summary["alice"].info_queries, 2);
        assert_eq!(summary["alice"].submitted, 0);
    }

    #[test]
    fn epoch_tracking_across_restarts() {
        let events = vec![
            WalEvent::ServiceStarted { epoch: 1 },
            WalEvent::ServiceStarted { epoch: 2 },
            WalEvent::ServiceStarted { epoch: 3 },
        ];
        assert_eq!(RecoveredState::from_events(&events).last_epoch, 3);
    }
}
