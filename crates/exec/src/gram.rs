//! The wire-facing GRAM server: gatekeeper + per-connection service loop.
//!
//! §2 of the paper: "the gatekeeper is responsible for authentication
//! with the client, performing a simple authorization based on mapping
//! the authentication information into a local security context (e.g., a
//! Unix login). After this initial security check, it starts up a job
//! manager that interacts thereafter with the client."
//!
//! This server is the **baseline** of Figure 2: it serves job requests
//! only. An `(info=...)` query is answered with
//! [`codes::UNSUPPORTED`] — in the baseline world the client must open a
//! second connection, to a second service, speaking a second protocol
//! (the MDS, in `infogram-mds`). InfoGram (in `infogram-core`) removes
//! exactly this refusal.

use crate::engine::{JobEngine, SubmitError};
use infogram_gsi::{wire_server_respond, wire_server_verify, Authorizer, Certificate, Credential};
use infogram_proto::message::{codes, JobStateCode, Reply, Request};
use infogram_proto::transport::{Conn, Listener, ProtoError, Transport};
use infogram_proto::Outbox;
use infogram_rsl::{RequestKind, XrslRequest};
use infogram_sim::clock::SharedClock;
use infogram_sim::SplitMix64;
use parking_lot::{lock_class, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How many frames a connection's outbox buffers before a push
/// subscriber is declared a slow consumer and evicted.
pub const DEFAULT_OUTBOX_CAPACITY: usize = 256;

/// Per-connection dispatch state, owned by the connection's service loop
/// and threaded through every [`RequestDispatcher::dispatch`] call.
///
/// It carries the three things a reply path may need beyond the request
/// itself: the connection's bounded [`Outbox`] (absent for *detached*
/// dispatch — the WS gateway and unit tests — where unsolicited pushes
/// have nowhere to go), the job-callback map the event watcher consults,
/// and the push-subscription ids registered over this connection so the
/// dispatcher can drop them from the hub at teardown.
pub struct ConnCtx {
    outbox: Option<Arc<Outbox>>,
    job_subs: Arc<Mutex<HashMap<u64, JobStateCode>>>,
    /// Push-subscription ids (`(action=subscribe)`) registered over this
    /// connection, in registration order.
    pub sub_ids: Vec<u64>,
}

impl ConnCtx {
    /// A context bound to a live connection's outbox.
    pub fn new(outbox: Arc<Outbox>) -> Self {
        ConnCtx {
            outbox: Some(outbox),
            // Held across the outbox send in the job-event watcher so
            // Events reach the wire in transition order — one of the two
            // allowed holds at the `proto.outbox.send` blocking point
            // (DESIGN §13).
            job_subs: Arc::new(Mutex::with_class(
                HashMap::new(),
                lock_class!("exec.gram.job_subs"),
            )),
            sub_ids: Vec::new(),
        }
    }

    /// A context with no push channel: `(action=subscribe)` must be
    /// refused, job callbacks are recorded but never delivered. Used by
    /// the WS gateway (request/response only) and by tests.
    pub fn detached() -> Self {
        ConnCtx {
            outbox: None,
            job_subs: Arc::new(Mutex::with_class(
                HashMap::new(),
                lock_class!("exec.gram.job_subs"),
            )),
            sub_ids: Vec::new(),
        }
    }

    /// The connection's outbox, if this context can push unsolicited
    /// frames.
    pub fn outbox(&self) -> Option<&Arc<Outbox>> {
        self.outbox.as_ref()
    }

    /// Register a job for state-change callbacks over this connection.
    pub fn subscribe_job(&self, job_id: u64) {
        self.job_subs.lock().insert(job_id, JobStateCode::Pending);
    }

    /// The job-callback map shared with the connection's event watcher.
    pub fn job_subs(&self) -> Arc<Mutex<HashMap<u64, JobStateCode>>> {
        Arc::clone(&self.job_subs)
    }
}

/// A running GRAM (or GRAM-shaped) server.
pub struct GramServer {
    engine: Arc<JobEngine>,
    credential: Credential,
    trust_roots: Vec<Certificate>,
    authorizer: Arc<Authorizer>,
    clock: SharedClock,
    addr: String,
    listener: Arc<Box<dyn Listener>>,
    running: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for GramServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GramServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// How a server answers one already-authorized request. The GRAM baseline
/// and the InfoGram service share the gatekeeper and differ only here.
pub trait RequestDispatcher: Send + Sync + 'static {
    /// Answer one request from an authenticated `(owner, account)` pair.
    /// `ctx` is the per-connection state: job-callback registration and
    /// (when the transport supports pushes) the connection's outbox for
    /// `(action=subscribe)` streams.
    fn dispatch(&self, owner: &str, account: &str, request: Request, ctx: &mut ConnCtx) -> Reply;

    /// Called exactly once when a connection's request loop exits, with
    /// the same `ctx` every `dispatch` on that connection saw. Default:
    /// nothing to clean up.
    fn connection_closed(&self, _ctx: &mut ConnCtx) {}
}

/// The baseline dispatcher: jobs only, info refused.
pub struct JobsOnlyDispatcher {
    engine: Arc<JobEngine>,
}

impl JobsOnlyDispatcher {
    /// Wrap an engine.
    pub fn new(engine: Arc<JobEngine>) -> Arc<Self> {
        Arc::new(JobsOnlyDispatcher { engine })
    }
}

/// Job-contact authorization (§2: a handle can be used "from other remote
/// clients with appropriate authorization"): the owning grid identity, or
/// any identity mapped to the same local account, may poll and cancel.
fn may_contact(engine: &JobEngine, job_id: u64, owner: &str, account: &str) -> bool {
    match engine.job_owner(job_id) {
        Some((job_owner, job_account)) => job_owner == owner || job_account == account,
        None => true, // unknown job: fall through to NO_SUCH_JOB
    }
}

/// Shared submit/status/cancel handling used by both the baseline GRAM
/// dispatcher and the InfoGram dispatcher in `infogram-core`.
pub fn dispatch_job_request(
    engine: &JobEngine,
    owner: &str,
    account: &str,
    request: &Request,
    ctx: &mut ConnCtx,
) -> Option<Reply> {
    match request {
        Request::Submit { rsl, callback } => {
            let parsed = match XrslRequest::parse_all(rsl) {
                Ok(p) => p,
                Err(e) => {
                    return Some(Reply::Error {
                        code: codes::BAD_RSL,
                        message: e.to_string(),
                    })
                }
            };
            if parsed.len() != 1 {
                // DUROC multi-requests are not supported, exactly as the
                // paper states for J-GRAM.
                return Some(Reply::Error {
                    code: codes::UNSUPPORTED,
                    message: "multi-request (+) submission is not supported (no DUROC)".to_string(),
                });
            }
            let req = &parsed[0];
            match req.kind() {
                RequestKind::Job => {
                    // lint:allow(unwrap) — kind() returns Job only when the job spec is present
                    let spec = req.job.clone().expect("kind Job implies job");
                    match engine.submit(rsl, spec, owner, account) {
                        Ok(handle) => {
                            if *callback {
                                ctx.subscribe_job(handle.job_id);
                            }
                            Some(Reply::JobAccepted { handle })
                        }
                        Err(SubmitError::Backend(e)) => Some(Reply::Error {
                            code: codes::EXECUTION_FAILED,
                            message: e.to_string(),
                        }),
                        // WAL degraded: honest read-only refusal with a
                        // machine-readable retry hint (PR 5 taxonomy),
                        // never a silent ack of a submission the log
                        // could not make durable.
                        Err(e @ SubmitError::WalUnavailable { .. }) => Some(Reply::Error {
                            code: codes::UNAVAILABLE,
                            message: e.to_string(),
                        }),
                        Err(e) => Some(Reply::Error {
                            code: codes::EXECUTION_FAILED,
                            message: e.to_string(),
                        }),
                    }
                }
                RequestKind::Both => Some(Reply::Error {
                    code: codes::AMBIGUOUS_REQUEST,
                    message: "specification mixes (executable=) and (info=)".to_string(),
                }),
                // Info and Empty are not job requests: let the caller
                // decide (GRAM refuses, InfoGram answers).
                RequestKind::Info | RequestKind::Empty => None,
            }
        }
        Request::Status { handle } => Some(match engine.status(handle.job_id) {
            Some(_) if !may_contact(engine, handle.job_id, owner, account) => Reply::Error {
                code: codes::AUTHORIZATION,
                message: format!("job {} belongs to another identity", handle.job_id),
            },
            Some(view) => {
                if view.timeout_exceeded {
                    Reply::Error {
                        code: codes::TIMEOUT_EXCEPTION,
                        message: format!(
                            "job {} exceeded its timeout (action=exception); it continues to run",
                            handle.job_id
                        ),
                    }
                } else {
                    Reply::JobStatus {
                        handle: handle.clone(),
                        state: view.state,
                        exit_code: view.exit_code,
                        output: view.output,
                    }
                }
            }
            None => Reply::Error {
                code: codes::NO_SUCH_JOB,
                message: format!("no job {}", handle.job_id),
            },
        }),
        Request::Cancel { handle }
            if engine.job_owner(handle.job_id).is_some()
                && !may_contact(engine, handle.job_id, owner, account) =>
        {
            Some(Reply::Error {
                code: codes::AUTHORIZATION,
                message: format!("job {} belongs to another identity", handle.job_id),
            })
        }
        Request::Cancel { handle } => Some(if engine.cancel(handle.job_id) {
            Reply::JobStatus {
                handle: handle.clone(),
                state: JobStateCode::Canceled,
                exit_code: None,
                output: String::new(),
            }
        } else {
            Reply::Error {
                code: codes::NO_SUCH_JOB,
                message: format!("no cancellable job {}", handle.job_id),
            }
        }),
        Request::Ping => Some(Reply::Pong),
    }
}

impl RequestDispatcher for JobsOnlyDispatcher {
    fn dispatch(&self, owner: &str, account: &str, request: Request, ctx: &mut ConnCtx) -> Reply {
        match dispatch_job_request(&self.engine, owner, account, &request, ctx) {
            Some(reply) => reply,
            None => Reply::Error {
                code: codes::UNSUPPORTED,
                message: "this GRAM serves job requests only; query the MDS for information"
                    .to_string(),
            },
        }
    }
}

impl GramServer {
    /// Start a server: bind, spawn the accept loop, serve until
    /// [`GramServer::shutdown`].
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        engine: Arc<JobEngine>,
        dispatcher: Arc<dyn RequestDispatcher>,
        transport: &dyn Transport,
        bind_addr: &str,
        credential: Credential,
        trust_roots: Vec<Certificate>,
        authorizer: Arc<Authorizer>,
        clock: SharedClock,
    ) -> Result<Arc<Self>, ProtoError> {
        let listener: Arc<Box<dyn Listener>> = Arc::new(transport.listen(bind_addr)?);
        let addr = listener.local_addr();
        let server = Arc::new(GramServer {
            engine,
            credential,
            trust_roots,
            authorizer,
            clock,
            addr,
            listener: Arc::clone(&listener),
            running: Arc::new(AtomicBool::new(true)),
            accept_thread: Mutex::new(None),
        });
        let accept_server = Arc::clone(&server);
        let dispatcher = Arc::clone(&dispatcher);
        // lint:allow(thread-spawn) — long-lived accept loop; joined via
        // accept_thread on shutdown, so sim::par's scoped join is the
        // wrong shape.
        let handle = std::thread::spawn(move || {
            while accept_server.running.load(Ordering::SeqCst) {
                match accept_server.listener.accept() {
                    Ok(conn) => {
                        let conn: Arc<dyn Conn> = Arc::from(conn);
                        let server = Arc::clone(&accept_server);
                        let dispatcher = Arc::clone(&dispatcher);
                        // lint:allow(thread-spawn) — per-connection server
                        // thread detaches for the connection's lifetime
                        // (client-paced, no bounded join point).
                        std::thread::spawn(move || {
                            server.serve_connection(conn, dispatcher);
                        });
                    }
                    Err(_) => break,
                }
            }
        });
        *server.accept_thread.lock() = Some(handle);
        Ok(server)
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<JobEngine> {
        &self.engine
    }

    /// Stop accepting and unblock the accept loop.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        self.listener.close();
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
    }

    fn serve_connection(&self, conn: Arc<dyn Conn>, dispatcher: Arc<dyn RequestDispatcher>) {
        let telemetry = self.engine.metrics().clone();
        telemetry.counter("gram.connections").incr();
        telemetry.gauge("gram.connections.active").add(1.0);
        // Balance the active-connections gauge on every exit path.
        struct ActiveGuard(infogram_sim::metrics::MetricSet);
        impl Drop for ActiveGuard {
            fn drop(&mut self) {
                self.0.gauge("gram.connections.active").add(-1.0);
            }
        }
        let _active = ActiveGuard(telemetry.clone());

        // ---- gatekeeper: 3-message mutual authentication ----
        let now = self.clock.now();
        let mut rng = SplitMix64::new(now.as_nanos() ^ 0x6a7e_5eed);
        let Ok(hello) = conn.recv() else { return };
        let (resp, pending) =
            match wire_server_respond(&self.credential, &self.trust_roots, &hello, now, &mut rng) {
                Ok(x) => x,
                Err(e) => {
                    telemetry.counter("gram.auth_failures").incr();
                    let _ = conn.send(
                        &Reply::Error {
                            code: codes::AUTHENTICATION,
                            message: e.to_string(),
                        }
                        .encode(),
                    );
                    return;
                }
            };
        if conn.send(&resp).is_err() {
            return;
        }
        let Ok(fin) = conn.recv() else { return };
        let ctx = match wire_server_verify(&pending, &fin) {
            Ok(ctx) => ctx,
            Err(e) => {
                telemetry.counter("gram.auth_failures").incr();
                let _ = conn.send(
                    &Reply::Error {
                        code: codes::AUTHENTICATION,
                        message: e.to_string(),
                    }
                    .encode(),
                );
                return;
            }
        };

        // ---- authorization: gridmap (+ contracts) ----
        let resource = self.engine.config().service_name.clone();
        let decision = match self.authorizer.authorize(&ctx.peer, &resource, now) {
            Ok(d) => d,
            Err(e) => {
                telemetry.counter("gram.auth_failures").incr();
                let _ = conn.send(
                    &Reply::Error {
                        code: codes::AUTHORIZATION,
                        message: e.to_string(),
                    }
                    .encode(),
                );
                return;
            }
        };
        let _ = conn.send(&Reply::Pong.encode()); // authorization ack
        let owner = decision.grid_identity.to_string();
        let account = decision.local_account;

        // ---- per-connection push state: outbox + dispatch context ----
        // All frames the server originates after authorization — replies,
        // job Events, subscription Updates — flow through one bounded
        // outbox so they interleave in FIFO order on the wire and a stuck
        // peer surfaces as backpressure instead of an unbounded buffer.
        let outbox = Outbox::new(Arc::clone(&conn), DEFAULT_OUTBOX_CAPACITY);
        let mut ctx = ConnCtx::new(Arc::clone(&outbox));

        // ---- event callbacks: watcher pushing Events over this conn ----
        let watcher_id = {
            let subscriptions = ctx.job_subs();
            let event_outbox = Arc::clone(&outbox);
            self.engine.on_state_change(move |handle, state| {
                // `job_subs` stays held across the send on purpose:
                // dropping it first would let two racing transitions
                // deliver their Events out of order. The outbox is
                // bounded and fail-fast, so the hold is short — this is
                // the `exec.gram.job_subs` exception at the
                // `proto.outbox.send` blocking point (DESIGN §13).
                let mut subs = subscriptions.lock();
                if let Some(last) = subs.get_mut(&handle.job_id) {
                    if *last != state {
                        *last = state;
                        let _ = event_outbox.send(Reply::Event { handle, state }.encode());
                    }
                }
            })
        };

        // ---- request loop (ends when the client hangs up) ----
        while let Ok(bytes) = conn.recv() {
            telemetry.counter("gram.requests").incr();
            let reply = match Request::decode(&bytes) {
                Ok(request) => dispatcher.dispatch(&owner, &account, request, &mut ctx),
                Err(e) => Reply::Error {
                    code: codes::BAD_RSL,
                    message: e.to_string(),
                },
            };
            if outbox.send(reply.encode()).is_err() {
                break;
            }
        }
        self.engine.remove_watcher(watcher_id);
        dispatcher.connection_closed(&mut ctx);
        outbox.close();
    }
}
