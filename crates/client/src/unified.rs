//! The unified InfoGram client.
//!
//! "Querying the information is handled by clients much as the execution
//! of jobs" (§6.6): both travel as submits over the same authenticated
//! connection. [`QueryBuilder`] assembles the xRSL extension tags.

use crate::gram::{ClientError, GramClient};
use infogram_gsi::{Certificate, Credential};
use infogram_proto::delta::RecordDelta;
use infogram_proto::handle::JobHandle;
use infogram_proto::message::{codes, JobStateCode, Reply, Request};
use infogram_proto::record::InfoRecord;
use infogram_proto::render::{dsml, ldif, xml};
use infogram_proto::transport::Transport;
use infogram_rsl::{OutputFormat, ResponseMode};
use infogram_sim::clock::SharedClock;
use infogram_sim::SplitMix64;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Builder for information-query xRSL: the tags of §6.6.
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    selectors: Vec<String>,
    response: Option<ResponseMode>,
    quality: Option<f64>,
    performance: bool,
    format: Option<OutputFormat>,
    filter: Option<String>,
}

impl QueryBuilder {
    /// An empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one `(info=keyword)` selector.
    pub fn keyword(mut self, kw: &str) -> Self {
        self.selectors.push(kw.to_string());
        self
    }

    /// `(info=all)`.
    pub fn all(mut self) -> Self {
        self.selectors.push("all".to_string());
        self
    }

    /// `(info=schema)` — service reflection.
    pub fn schema(mut self) -> Self {
        self.selectors.push("schema".to_string());
        self
    }

    /// `(response=immediate|cached|last)`.
    pub fn response(mut self, mode: ResponseMode) -> Self {
        self.response = Some(mode);
        self
    }

    /// `(quality=N)` — percentage threshold.
    pub fn quality(mut self, percent: f64) -> Self {
        self.quality = Some(percent);
        self
    }

    /// `(performance=true)`.
    pub fn performance(mut self) -> Self {
        self.performance = true;
        self
    }

    /// `(format=ldif|xml|dsml|plain)`.
    pub fn format(mut self, format: OutputFormat) -> Self {
        self.format = Some(format);
        self
    }

    /// `(filter=...)`.
    pub fn filter(mut self, filter: &str) -> Self {
        self.filter = Some(filter.to_string());
        self
    }

    /// Render the xRSL text.
    pub fn to_rsl(&self) -> String {
        let mut out = String::new();
        for s in &self.selectors {
            out.push_str(&format!("(info={s})"));
        }
        if let Some(mode) = self.response {
            let m = match mode {
                ResponseMode::Immediate => "immediate",
                ResponseMode::Cached => "cached",
                ResponseMode::Last => "last",
            };
            out.push_str(&format!("(response={m})"));
        }
        if let Some(q) = self.quality {
            out.push_str(&format!("(quality={q})"));
        }
        if self.performance {
            out.push_str("(performance=true)");
        }
        if let Some(f) = self.format {
            out.push_str(&format!("(format={f})"));
        }
        if let Some(f) = &self.filter {
            out.push_str(&format!("(filter={f})"));
        }
        out
    }
}

/// The result of an information query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The raw rendered body as the service produced it.
    pub body: String,
    /// Parsed records (LDIF and XML parse back; plain stays raw).
    pub records: Vec<InfoRecord>,
    /// Record count as reported by the service.
    pub record_count: u32,
}

impl QueryResult {
    /// Whether any record is a last-known-good stale serve (the
    /// provider failed or its breaker is open; see the wire-level
    /// `infogram-degraded` annotation).
    pub fn degraded(&self) -> bool {
        self.records.iter().any(|r| r.degraded)
    }

    /// The oldest stale age among degraded records, if any reported one.
    pub fn stale_age_secs(&self) -> Option<f64> {
        self.records
            .iter()
            .filter(|r| r.degraded)
            .filter_map(|r| r.stale_age_secs)
            .fold(None, |acc, a| Some(acc.map_or(a, |m: f64| m.max(a))))
    }

    /// Only the records produced by a live provider run.
    pub fn fresh_records(&self) -> impl Iterator<Item = &InfoRecord> {
        self.records.iter().filter(|r| !r.degraded)
    }

    /// The records, but only if *none* of them are degraded — callers
    /// that cannot tolerate stale data get [`ClientError::Degraded`]
    /// instead of silently consuming last-known-good values.
    pub fn require_fresh(&self) -> Result<&[InfoRecord], ClientError> {
        if self.degraded() {
            return Err(ClientError::Degraded {
                stale_age_secs: self.stale_age_secs(),
            });
        }
        Ok(&self.records)
    }
}

/// How the client retries connection-level failures and breaker-open
/// (`UNAVAILABLE`) rejections.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included).
    pub max_attempts: u32,
    /// First backoff delay; doubled per subsequent attempt.
    pub backoff_base: Duration,
    /// Hard cap on any single delay, including honored server hints.
    pub backoff_max: Duration,
    /// Relative jitter applied to backoff delays, in `[0, 1)`.
    pub jitter: f64,
    /// Whether to sleep out the server's `retry-after-ms=` hint and
    /// retry on a breaker-open rejection (otherwise it surfaces as
    /// [`ClientError::Server`]).
    pub honor_retry_after: bool,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            jitter: 0.2,
            honor_retry_after: true,
            seed: 0x0072_6574_7279, // "retry"
        }
    }
}

/// Everything needed to re-establish a dropped session.
struct ReconnectState {
    transport: Arc<dyn Transport>,
    addr: String,
    credential: Credential,
    trust_roots: Vec<Certificate>,
    clock: SharedClock,
    policy: RetryPolicy,
    rng: SplitMix64,
    reconnects: u64,
}

impl ReconnectState {
    /// Jittered exponential delay before retry number `attempt` (1-based).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let raw = self
            .policy
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.policy.backoff_max);
        let j = self.policy.jitter.clamp(0.0, 0.99);
        if j == 0.0 {
            return raw;
        }
        let unit = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - j + 2.0 * j * unit;
        Duration::from_nanos((raw.as_nanos() as f64 * factor) as u64)
    }
}

/// One delivered subscription batch, deltas already applied: the full
/// per-keyword records as the service now sees them.
#[derive(Debug, Clone)]
pub struct SubUpdate {
    /// The subscription the batch belongs to.
    pub id: u64,
    /// Full records after applying the deltas to the prior snapshots.
    pub records: Vec<InfoRecord>,
    /// The raw deltas as received (changed attributes only, unless a
    /// full snapshot).
    pub deltas: Vec<RecordDelta>,
}

/// Client-side state of the one tracked push subscription: per-keyword
/// last-applied version and snapshot, for delta application and
/// missed-update detection.
struct SubState {
    id: u64,
    keywords: Vec<String>,
    /// Lowercased keyword → (last applied version, full record).
    snapshots: HashMap<String, (u64, InfoRecord)>,
}

impl SubState {
    /// Apply one received batch: verify version contiguity per keyword
    /// (the service bumps each channel's version by exactly one per
    /// push, so `prev + 1` is the only acceptable compact successor),
    /// then fold each delta into the running snapshot.
    fn apply(&mut self, deltas: Vec<RecordDelta>) -> Result<SubUpdate, ClientError> {
        let mut records = Vec::with_capacity(deltas.len());
        for d in &deltas {
            let key = d.keyword.to_ascii_lowercase();
            let prev = self.snapshots.get(&key);
            if !d.full {
                match prev {
                    Some((v, _)) if v + 1 == d.version => {}
                    Some((v, _)) => {
                        return Err(ClientError::Protocol(format!(
                            "missed update on '{}': have version {v}, received {}",
                            d.keyword, d.version
                        )))
                    }
                    None => {
                        return Err(ClientError::Protocol(format!(
                            "compact delta for '{}' without a prior snapshot",
                            d.keyword
                        )))
                    }
                }
            }
            let rec = d
                .apply(prev.map(|(_, r)| r))
                .map_err(|e| ClientError::Protocol(e.to_string()))?;
            self.snapshots.insert(key, (d.version, rec.clone()));
            records.push(rec);
        }
        Ok(SubUpdate {
            id: self.id,
            records,
            deltas,
        })
    }
}

/// One connection, both behaviours.
pub struct InfoGramClient {
    gram: GramClient,
    reconnect: Option<ReconnectState>,
    subscription: Option<SubState>,
}

impl std::fmt::Debug for InfoGramClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InfoGramClient").finish_non_exhaustive()
    }
}

impl InfoGramClient {
    /// Connect and authenticate to an InfoGram service.
    pub fn connect(
        transport: &dyn Transport,
        addr: &str,
        credential: &Credential,
        trust_roots: &[Certificate],
        clock: SharedClock,
    ) -> Result<InfoGramClient, ClientError> {
        Ok(InfoGramClient {
            gram: GramClient::connect(transport, addr, credential, trust_roots, clock)?,
            reconnect: None,
            subscription: None,
        })
    }

    /// Connect with transparent reconnect-and-retry: connection-level
    /// failures re-establish the session (handshake included) after a
    /// capped, jittered exponential backoff, and breaker-open
    /// rejections honor the server's `retry-after-ms=` hint. The
    /// transport is owned so the session can be rebuilt at any time.
    pub fn connect_with_retry(
        transport: Arc<dyn Transport>,
        addr: &str,
        credential: &Credential,
        trust_roots: &[Certificate],
        clock: SharedClock,
        policy: RetryPolicy,
    ) -> Result<InfoGramClient, ClientError> {
        let gram = GramClient::connect(&*transport, addr, credential, trust_roots, clock.clone())?;
        let rng = SplitMix64::new(policy.seed);
        Ok(InfoGramClient {
            gram,
            subscription: None,
            reconnect: Some(ReconnectState {
                transport,
                addr: addr.to_string(),
                credential: credential.clone(),
                trust_roots: trust_roots.to_vec(),
                clock,
                policy,
                rng,
                reconnects: 0,
            }),
        })
    }

    /// How many times the session was transparently re-established.
    pub fn reconnect_count(&self) -> u64 {
        self.reconnect.as_ref().map_or(0, |s| s.reconnects)
    }

    /// Fault injection: drop the underlying connection so the next
    /// operation observes a transport failure, as a crashed link
    /// would. Reconnect tests use this to exercise the transparent
    /// resubscribe path.
    pub fn sever(&mut self) {
        self.gram.sever();
    }

    /// Issue one request, transparently reconnecting on transport
    /// failures and sleeping out breaker-open rejections, per the
    /// [`RetryPolicy`]. Without a policy this is a plain request.
    fn request_resilient(&mut self, request: &Request) -> Result<Reply, ClientError> {
        if self.reconnect.is_none() {
            return self.gram.request(request);
        }
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let outcome = self.gram.request(request);
            // lint:allow(unwrap) — reconnect checked Some on entry and is never cleared
            let st = self.reconnect.as_mut().expect("reconnect state present");
            let max = st.policy.max_attempts.max(1);
            match outcome {
                Err(ClientError::Transport(_)) if attempt < max => {
                    let delay = st.backoff(attempt);
                    st.clock.sleep(delay);
                    match GramClient::connect(
                        &*st.transport,
                        &st.addr,
                        &st.credential,
                        &st.trust_roots,
                        st.clock.clone(),
                    ) {
                        Ok(gram) => {
                            st.reconnects += 1;
                            self.gram = gram;
                        }
                        // Still unreachable: fall through and let the
                        // next attempt fail fast on the dead session
                        // until the budget runs out.
                        Err(ClientError::Transport(_)) => {}
                        Err(other) => return Err(other),
                    }
                }
                Ok(Reply::Error { code, ref message })
                    if code == codes::UNAVAILABLE
                        && st.policy.honor_retry_after
                        && attempt < max =>
                {
                    // A millisecond of margin on top of the hint: the
                    // wire hint has millisecond resolution, so sleeping
                    // it exactly can land the retry a hair inside the
                    // still-closed window.
                    let hint = parse_retry_after(message)
                        .map(|h| h + Duration::from_millis(1))
                        .unwrap_or_else(|| st.backoff(attempt))
                        .min(st.policy.backoff_max);
                    st.clock.sleep(hint);
                }
                other => return other,
            }
        }
    }

    /// Submit a job.
    pub fn submit(&mut self, rsl: &str, callback: bool) -> Result<JobHandle, ClientError> {
        self.gram.submit(rsl, callback)
    }

    /// Poll a job.
    pub fn status(
        &mut self,
        handle: &JobHandle,
    ) -> Result<(JobStateCode, Option<i32>, String), ClientError> {
        self.gram.status(handle)
    }

    /// Cancel a job.
    pub fn cancel(&mut self, handle: &JobHandle) -> Result<(), ClientError> {
        self.gram.cancel(handle)
    }

    /// Wait for a job to finish.
    pub fn wait_terminal(
        &mut self,
        handle: &JobHandle,
        poll_every: Duration,
        deadline: Duration,
    ) -> Result<(JobStateCode, Option<i32>, String), ClientError> {
        self.gram.wait_terminal(handle, poll_every, deadline)
    }

    /// Pop a buffered event.
    pub fn next_event(&mut self) -> Option<(JobHandle, JobStateCode)> {
        self.gram.next_event()
    }

    /// Block for the next event.
    pub fn wait_event(&mut self) -> Result<(JobHandle, JobStateCode), ClientError> {
        self.gram.wait_event()
    }

    /// Issue a raw xRSL information query. Queries are idempotent, so a
    /// retry policy (see [`InfoGramClient::connect_with_retry`]) applies
    /// here — unlike job submission, which is never replayed.
    pub fn query_rsl(&mut self, rsl: &str) -> Result<QueryResult, ClientError> {
        let format = detect_format(rsl);
        match self.request_resilient(&Request::Submit {
            rsl: rsl.to_string(),
            callback: false,
        })? {
            Reply::InfoResult { body, record_count } => {
                let records = match format {
                    OutputFormat::Ldif => ldif::parse(&body),
                    OutputFormat::Xml => xml::parse(&body),
                    OutputFormat::Dsml => dsml::parse(&body),
                    OutputFormat::Plain => Vec::new(),
                };
                Ok(QueryResult {
                    body,
                    records,
                    record_count,
                })
            }
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Issue a built query.
    pub fn query(&mut self, builder: &QueryBuilder) -> Result<QueryResult, ClientError> {
        self.query_rsl(&builder.to_rsl())
    }

    /// Convenience: fetch one keyword with defaults.
    pub fn info(&mut self, keyword: &str) -> Result<QueryResult, ClientError> {
        self.query(&QueryBuilder::new().keyword(keyword))
    }

    /// Convenience: the service's live telemetry — `(info=metrics)`,
    /// answered by the built-in self-describing `Metrics:` keyword.
    pub fn metrics(&mut self) -> Result<QueryResult, ClientError> {
        self.info("metrics")
    }

    /// Open a persistent query over `keywords`
    /// (`(action=subscribe)(info=K)...`): the service streams an
    /// incremental delta whenever one of them refreshes (use the
    /// virtual keyword `jobs` for job-state transitions). Returns the
    /// server-assigned subscription id. One subscription is tracked per
    /// client; subscribing again replaces it.
    pub fn subscribe(&mut self, keywords: &[&str]) -> Result<u64, ClientError> {
        if let Some(old) = self.subscription.take() {
            // Replace: close the previous stream first (best effort —
            // the server also reaps it at connection teardown).
            let _ = self.gram.unsubscribe(old.id);
        }
        let (id, _count) = self.gram.subscribe(keywords)?;
        self.subscription = Some(SubState {
            id,
            keywords: keywords.iter().map(|k| k.to_string()).collect(),
            snapshots: HashMap::new(),
        });
        Ok(id)
    }

    /// Close the tracked subscription.
    pub fn unsubscribe(&mut self) -> Result<(), ClientError> {
        match self.subscription.take() {
            Some(sub) => self.gram.unsubscribe(sub.id),
            None => Ok(()),
        }
    }

    /// The tracked subscription's server-assigned id, if one is open.
    /// Changes when a reconnect resubscribes.
    pub fn subscription_id(&self) -> Option<u64> {
        self.subscription.as_ref().map(|s| s.id)
    }

    /// The last applied `(version, record)` for a subscribed keyword.
    pub fn subscribed_snapshot(&self, keyword: &str) -> Option<(u64, InfoRecord)> {
        self.subscription
            .as_ref()
            .and_then(|s| s.snapshots.get(&keyword.to_ascii_lowercase()).cloned())
    }

    /// Block until the next update batch on the tracked subscription,
    /// with deltas applied into full records and per-keyword version
    /// contiguity verified (a gap is a protocol error — the delivery
    /// pipeline promises none).
    ///
    /// With a retry policy, a dropped connection transparently
    /// reconnects *and resubscribes*: the fresh subscription starts
    /// with full snapshots at the channels' current versions, so the
    /// client observes no gap across the reconnect.
    pub fn wait_update(&mut self) -> Result<SubUpdate, ClientError> {
        loop {
            if self.subscription.is_none() {
                return Err(ClientError::Protocol(
                    "no subscription open on this client".to_string(),
                ));
            }
            match self.gram.wait_update() {
                Ok((id, deltas)) => {
                    // lint:allow(unwrap) — checked Some at loop entry
                    let sub = self.subscription.as_mut().expect("subscription present");
                    if id != sub.id {
                        // A frame from a pre-reconnect incarnation of
                        // the stream; the fresh full snapshot follows.
                        continue;
                    }
                    return sub.apply(deltas);
                }
                Err(ClientError::SubscriptionEnded { id, code, message }) => {
                    if self.subscription.as_ref().is_some_and(|s| s.id == id) {
                        self.subscription = None;
                    }
                    return Err(ClientError::SubscriptionEnded { id, code, message });
                }
                Err(ClientError::Transport(e)) => {
                    if self.reconnect.is_none() {
                        return Err(ClientError::Transport(e));
                    }
                    self.resubscribe()?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Pop an already-buffered update on the tracked subscription, if
    /// any (non-blocking).
    pub fn next_update(&mut self) -> Option<Result<SubUpdate, ClientError>> {
        loop {
            match self.gram.next_update()? {
                Ok((id, deltas)) => {
                    let sub = self.subscription.as_mut()?;
                    if id != sub.id {
                        continue;
                    }
                    return Some(sub.apply(deltas));
                }
                Err(ClientError::SubscriptionEnded { id, code, message }) => {
                    if self.subscription.as_ref().is_some_and(|s| s.id == id) {
                        self.subscription = None;
                    }
                    return Some(Err(ClientError::SubscriptionEnded { id, code, message }));
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }

    /// Re-establish the session after a drop and re-issue the tracked
    /// subscription. Snapshot state is cleared: the fresh stream opens
    /// with full snapshots, so delta application restarts cleanly.
    fn resubscribe(&mut self) -> Result<(), ClientError> {
        // lint:allow(unwrap) — caller checked reconnect.is_some()
        let st = self.reconnect.as_mut().expect("reconnect state present");
        let max = st.policy.max_attempts.max(1);
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let delay = st.backoff(attempt);
            st.clock.sleep(delay);
            match GramClient::connect(
                &*st.transport,
                &st.addr,
                &st.credential,
                &st.trust_roots,
                st.clock.clone(),
            ) {
                Ok(gram) => {
                    st.reconnects += 1;
                    self.gram = gram;
                    break;
                }
                Err(ClientError::Transport(_)) if attempt < max => {}
                Err(e) => return Err(e),
            }
        }
        let keywords = match &self.subscription {
            Some(sub) => sub.keywords.clone(),
            None => return Ok(()),
        };
        let kws: Vec<&str> = keywords.iter().map(|k| k.as_str()).collect();
        let (id, _count) = self.gram.subscribe(&kws)?;
        // lint:allow(unwrap) — checked Some just above
        let sub = self.subscription.as_mut().expect("subscription present");
        sub.id = id;
        sub.snapshots.clear();
        Ok(())
    }

    /// Requests issued on this session.
    pub fn requests_sent(&self) -> u64 {
        self.gram.requests_sent()
    }

    /// The underlying GRAM session (for protocol-level tests).
    pub fn gram(&mut self) -> &mut GramClient {
        &mut self.gram
    }
}

/// Extract the machine-readable `retry-after-ms=<n>` hint a breaker-open
/// rejection carries in its message.
fn parse_retry_after(message: &str) -> Option<Duration> {
    let rest = message.split("retry-after-ms=").nth(1)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse::<u64>().ok().map(Duration::from_millis)
}

/// The client knows which format it asked for; mirror the service-side
/// default (LDIF).
fn detect_format(rsl: &str) -> OutputFormat {
    if rsl.contains("(format=xml)") {
        OutputFormat::Xml
    } else if rsl.contains("(format=dsml)") {
        OutputFormat::Dsml
    } else if rsl.contains("(format=plain)") {
        OutputFormat::Plain
    } else {
        OutputFormat::Ldif
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_builder_renders_tags() {
        let rsl = QueryBuilder::new()
            .keyword("memory")
            .keyword("cpu")
            .response(ResponseMode::Immediate)
            .quality(75.0)
            .performance()
            .format(OutputFormat::Xml)
            .filter("Memory:free")
            .to_rsl();
        assert_eq!(
            rsl,
            "(info=memory)(info=cpu)(response=immediate)(quality=75)\
             (performance=true)(format=xml)(filter=Memory:free)"
        );
        // And it parses as valid xRSL.
        let req = infogram_rsl::XrslRequest::from_text(&rsl).unwrap();
        assert_eq!(req.info.len(), 2);
        assert_eq!(req.quality, Some(75.0));
        assert!(req.performance);
    }

    #[test]
    fn builder_defaults_are_empty() {
        assert_eq!(QueryBuilder::new().keyword("cpu").to_rsl(), "(info=cpu)");
    }

    #[test]
    fn format_detection() {
        assert_eq!(detect_format("(info=x)"), OutputFormat::Ldif);
        assert_eq!(detect_format("(info=x)(format=xml)"), OutputFormat::Xml);
        assert_eq!(detect_format("(info=x)(format=plain)"), OutputFormat::Plain);
        assert_eq!(detect_format("(info=x)(format=dsml)"), OutputFormat::Dsml);
    }

    #[test]
    fn retry_after_hint_parses() {
        assert_eq!(
            parse_retry_after("provider unavailable (breaker open); retry-after-ms=500"),
            Some(Duration::from_millis(500))
        );
        assert_eq!(
            parse_retry_after("retry-after-ms=42 trailing words"),
            Some(Duration::from_millis(42))
        );
        assert_eq!(parse_retry_after("no hint here"), None);
        assert_eq!(parse_retry_after("retry-after-ms=junk"), None);
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let mk = || ReconnectState {
            transport: Arc::new(infogram_proto::transport::mem::MemNetwork::ideal()),
            addr: "h:1".into(),
            credential: test_credential(),
            trust_roots: Vec::new(),
            clock: infogram_sim::ManualClock::new(),
            policy: RetryPolicy {
                jitter: 0.0,
                ..RetryPolicy::default()
            },
            rng: SplitMix64::new(1),
            reconnects: 0,
        };
        let mut st = mk();
        assert_eq!(st.backoff(1), Duration::from_millis(50));
        assert_eq!(st.backoff(2), Duration::from_millis(100));
        assert_eq!(st.backoff(20), Duration::from_secs(2), "capped");
        // With jitter, the stream is seed-deterministic.
        let mut a = mk();
        let mut b = mk();
        a.policy.jitter = 0.2;
        b.policy.jitter = 0.2;
        for attempt in 1..6 {
            let d = a.backoff(attempt);
            assert_eq!(d, b.backoff(attempt));
            let raw = Duration::from_millis(50) * (1 << (attempt - 1));
            assert!(d >= raw.mul_f64(0.8) && d <= raw.mul_f64(1.2));
        }
    }

    #[test]
    fn degraded_accessors_distinguish_fresh_from_stale() {
        let mut fresh = InfoRecord::new("CPU", "n");
        fresh.push("count", "4");
        let mut stale = InfoRecord::new("Memory", "n");
        stale.push("total", "4096");
        stale.degraded = true;
        stale.stale_age_secs = Some(17.5);
        let result = QueryResult {
            body: String::new(),
            records: vec![fresh, stale],
            record_count: 2,
        };
        assert!(result.degraded());
        assert_eq!(result.stale_age_secs(), Some(17.5));
        assert_eq!(result.fresh_records().count(), 1);
        match result.require_fresh() {
            Err(ClientError::Degraded { stale_age_secs }) => {
                assert_eq!(stale_age_secs, Some(17.5));
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        let all_fresh = QueryResult {
            body: String::new(),
            records: vec![InfoRecord::new("CPU", "n")],
            record_count: 1,
        };
        assert!(!all_fresh.degraded());
        assert_eq!(all_fresh.require_fresh().unwrap().len(), 1);
    }

    fn test_credential() -> Credential {
        use infogram_gsi::{CertificateAuthority, Dn};
        use infogram_sim::SimTime;
        let mut rng = SplitMix64::new(7);
        let hour = Duration::from_secs(3600);
        let ca = CertificateAuthority::new_root(
            &Dn::parse("/o=Grid/cn=TestCA").unwrap(),
            &mut rng,
            SimTime::ZERO,
            hour,
        );
        ca.issue(
            &Dn::parse("/o=Grid/cn=user").unwrap(),
            &mut rng,
            SimTime::ZERO,
            hour,
        )
    }
}
