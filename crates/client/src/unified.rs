//! The unified InfoGram client.
//!
//! "Querying the information is handled by clients much as the execution
//! of jobs" (§6.6): both travel as submits over the same authenticated
//! connection. [`QueryBuilder`] assembles the xRSL extension tags.

use crate::gram::{ClientError, GramClient};
use infogram_gsi::{Certificate, Credential};
use infogram_proto::handle::JobHandle;
use infogram_proto::message::{JobStateCode, Reply, Request};
use infogram_proto::record::InfoRecord;
use infogram_proto::render::{dsml, ldif, xml};
use infogram_proto::transport::Transport;
use infogram_rsl::{OutputFormat, ResponseMode};
use infogram_sim::clock::SharedClock;
use std::time::Duration;

/// Builder for information-query xRSL: the tags of §6.6.
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    selectors: Vec<String>,
    response: Option<ResponseMode>,
    quality: Option<f64>,
    performance: bool,
    format: Option<OutputFormat>,
    filter: Option<String>,
}

impl QueryBuilder {
    /// An empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one `(info=keyword)` selector.
    pub fn keyword(mut self, kw: &str) -> Self {
        self.selectors.push(kw.to_string());
        self
    }

    /// `(info=all)`.
    pub fn all(mut self) -> Self {
        self.selectors.push("all".to_string());
        self
    }

    /// `(info=schema)` — service reflection.
    pub fn schema(mut self) -> Self {
        self.selectors.push("schema".to_string());
        self
    }

    /// `(response=immediate|cached|last)`.
    pub fn response(mut self, mode: ResponseMode) -> Self {
        self.response = Some(mode);
        self
    }

    /// `(quality=N)` — percentage threshold.
    pub fn quality(mut self, percent: f64) -> Self {
        self.quality = Some(percent);
        self
    }

    /// `(performance=true)`.
    pub fn performance(mut self) -> Self {
        self.performance = true;
        self
    }

    /// `(format=ldif|xml|dsml|plain)`.
    pub fn format(mut self, format: OutputFormat) -> Self {
        self.format = Some(format);
        self
    }

    /// `(filter=...)`.
    pub fn filter(mut self, filter: &str) -> Self {
        self.filter = Some(filter.to_string());
        self
    }

    /// Render the xRSL text.
    pub fn to_rsl(&self) -> String {
        let mut out = String::new();
        for s in &self.selectors {
            out.push_str(&format!("(info={s})"));
        }
        if let Some(mode) = self.response {
            let m = match mode {
                ResponseMode::Immediate => "immediate",
                ResponseMode::Cached => "cached",
                ResponseMode::Last => "last",
            };
            out.push_str(&format!("(response={m})"));
        }
        if let Some(q) = self.quality {
            out.push_str(&format!("(quality={q})"));
        }
        if self.performance {
            out.push_str("(performance=true)");
        }
        if let Some(f) = self.format {
            out.push_str(&format!("(format={f})"));
        }
        if let Some(f) = &self.filter {
            out.push_str(&format!("(filter={f})"));
        }
        out
    }
}

/// The result of an information query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The raw rendered body as the service produced it.
    pub body: String,
    /// Parsed records (LDIF and XML parse back; plain stays raw).
    pub records: Vec<InfoRecord>,
    /// Record count as reported by the service.
    pub record_count: u32,
}

/// One connection, both behaviours.
pub struct InfoGramClient {
    gram: GramClient,
}

impl std::fmt::Debug for InfoGramClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InfoGramClient").finish_non_exhaustive()
    }
}

impl InfoGramClient {
    /// Connect and authenticate to an InfoGram service.
    pub fn connect(
        transport: &dyn Transport,
        addr: &str,
        credential: &Credential,
        trust_roots: &[Certificate],
        clock: SharedClock,
    ) -> Result<InfoGramClient, ClientError> {
        Ok(InfoGramClient {
            gram: GramClient::connect(transport, addr, credential, trust_roots, clock)?,
        })
    }

    /// Submit a job.
    pub fn submit(&mut self, rsl: &str, callback: bool) -> Result<JobHandle, ClientError> {
        self.gram.submit(rsl, callback)
    }

    /// Poll a job.
    pub fn status(
        &mut self,
        handle: &JobHandle,
    ) -> Result<(JobStateCode, Option<i32>, String), ClientError> {
        self.gram.status(handle)
    }

    /// Cancel a job.
    pub fn cancel(&mut self, handle: &JobHandle) -> Result<(), ClientError> {
        self.gram.cancel(handle)
    }

    /// Wait for a job to finish.
    pub fn wait_terminal(
        &mut self,
        handle: &JobHandle,
        poll_every: Duration,
        deadline: Duration,
    ) -> Result<(JobStateCode, Option<i32>, String), ClientError> {
        self.gram.wait_terminal(handle, poll_every, deadline)
    }

    /// Pop a buffered event.
    pub fn next_event(&mut self) -> Option<(JobHandle, JobStateCode)> {
        self.gram.next_event()
    }

    /// Block for the next event.
    pub fn wait_event(&mut self) -> Result<(JobHandle, JobStateCode), ClientError> {
        self.gram.wait_event()
    }

    /// Issue a raw xRSL information query.
    pub fn query_rsl(&mut self, rsl: &str) -> Result<QueryResult, ClientError> {
        let format = detect_format(rsl);
        match self.gram.request(&Request::Submit {
            rsl: rsl.to_string(),
            callback: false,
        })? {
            Reply::InfoResult { body, record_count } => {
                let records = match format {
                    OutputFormat::Ldif => ldif::parse(&body),
                    OutputFormat::Xml => xml::parse(&body),
                    OutputFormat::Dsml => dsml::parse(&body),
                    OutputFormat::Plain => Vec::new(),
                };
                Ok(QueryResult {
                    body,
                    records,
                    record_count,
                })
            }
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Issue a built query.
    pub fn query(&mut self, builder: &QueryBuilder) -> Result<QueryResult, ClientError> {
        self.query_rsl(&builder.to_rsl())
    }

    /// Convenience: fetch one keyword with defaults.
    pub fn info(&mut self, keyword: &str) -> Result<QueryResult, ClientError> {
        self.query(&QueryBuilder::new().keyword(keyword))
    }

    /// Convenience: the service's live telemetry — `(info=metrics)`,
    /// answered by the built-in self-describing `Metrics:` keyword.
    pub fn metrics(&mut self) -> Result<QueryResult, ClientError> {
        self.info("metrics")
    }

    /// Requests issued on this session.
    pub fn requests_sent(&self) -> u64 {
        self.gram.requests_sent()
    }

    /// The underlying GRAM session (for protocol-level tests).
    pub fn gram(&mut self) -> &mut GramClient {
        &mut self.gram
    }
}

/// The client knows which format it asked for; mirror the service-side
/// default (LDIF).
fn detect_format(rsl: &str) -> OutputFormat {
    if rsl.contains("(format=xml)") {
        OutputFormat::Xml
    } else if rsl.contains("(format=dsml)") {
        OutputFormat::Dsml
    } else if rsl.contains("(format=plain)") {
        OutputFormat::Plain
    } else {
        OutputFormat::Ldif
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_builder_renders_tags() {
        let rsl = QueryBuilder::new()
            .keyword("memory")
            .keyword("cpu")
            .response(ResponseMode::Immediate)
            .quality(75.0)
            .performance()
            .format(OutputFormat::Xml)
            .filter("Memory:free")
            .to_rsl();
        assert_eq!(
            rsl,
            "(info=memory)(info=cpu)(response=immediate)(quality=75)\
             (performance=true)(format=xml)(filter=Memory:free)"
        );
        // And it parses as valid xRSL.
        let req = infogram_rsl::XrslRequest::from_text(&rsl).unwrap();
        assert_eq!(req.info.len(), 2);
        assert_eq!(req.quality, Some(75.0));
        assert!(req.performance);
    }

    #[test]
    fn builder_defaults_are_empty() {
        assert_eq!(QueryBuilder::new().keyword("cpu").to_rsl(), "(info=cpu)");
    }

    #[test]
    fn format_detection() {
        assert_eq!(detect_format("(info=x)"), OutputFormat::Ldif);
        assert_eq!(detect_format("(info=x)(format=xml)"), OutputFormat::Xml);
        assert_eq!(detect_format("(info=x)(format=plain)"), OutputFormat::Plain);
        assert_eq!(detect_format("(info=x)(format=dsml)"), OutputFormat::Dsml);
    }
}
