//! The baseline dual client: GRAM for jobs, MDS for information.
//!
//! §4 of the paper, implemented as code: "In order for a client to
//! perform a job execution and an information query, two different
//! mechanisms for contacting these services must be used." The
//! [`DualClient`] opens two connections (paying two GSI handshakes),
//! speaks two protocols, and needs format-conversion glue between them —
//! the complexity Figure 4 removes.

use crate::gram::{ClientError, GramClient};
use infogram_gsi::{Certificate, Credential};
use infogram_mds::client::{MdsClient, MdsClientError};
use infogram_mds::dit::Scope;
use infogram_proto::handle::JobHandle;
use infogram_proto::message::JobStateCode;
use infogram_proto::record::InfoRecord;
use infogram_proto::transport::Transport;
use infogram_sim::clock::SharedClock;
use std::time::Duration;

/// Why a dual-client operation failed.
#[derive(Debug)]
pub enum DualError {
    /// The GRAM side failed.
    Gram(ClientError),
    /// The MDS side failed.
    Mds(MdsClientError),
}

impl std::fmt::Display for DualError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DualError::Gram(e) => write!(f, "GRAM: {e}"),
            DualError::Mds(e) => write!(f, "MDS: {e}"),
        }
    }
}

impl std::error::Error for DualError {}

/// A client of the two-service baseline world.
pub struct DualClient {
    gram: GramClient,
    mds: MdsClient,
}

impl std::fmt::Debug for DualClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DualClient").finish_non_exhaustive()
    }
}

impl DualClient {
    /// Connect to *both* services — two connections, two handshakes.
    pub fn connect(
        transport: &dyn Transport,
        gram_addr: &str,
        mds_addr: &str,
        credential: &Credential,
        trust_roots: &[Certificate],
        clock: SharedClock,
    ) -> Result<DualClient, DualError> {
        let gram =
            GramClient::connect(transport, gram_addr, credential, trust_roots, clock.clone())
                .map_err(DualError::Gram)?;
        let mds = MdsClient::bind(transport, mds_addr, credential, trust_roots, &clock)
            .map_err(DualError::Mds)?;
        Ok(DualClient { gram, mds })
    }

    /// Submit a job — over the GRAM connection.
    pub fn submit(&mut self, rsl: &str, callback: bool) -> Result<JobHandle, DualError> {
        self.gram.submit(rsl, callback).map_err(DualError::Gram)
    }

    /// Poll a job — over the GRAM connection.
    pub fn status(
        &mut self,
        handle: &JobHandle,
    ) -> Result<(JobStateCode, Option<i32>, String), DualError> {
        self.gram.status(handle).map_err(DualError::Gram)
    }

    /// Wait for a job to finish.
    pub fn wait_terminal(
        &mut self,
        handle: &JobHandle,
        poll_every: Duration,
        deadline: Duration,
    ) -> Result<(JobStateCode, Option<i32>, String), DualError> {
        self.gram
            .wait_terminal(handle, poll_every, deadline)
            .map_err(DualError::Gram)
    }

    /// Query one keyword's information — over the *other* connection,
    /// in the *other* protocol, with the LDAP query model. The glue code
    /// below (keyword → filter, entries → records) is exactly the "code
    /// sharing for interpreting return values" burden §4 complains about.
    pub fn info(&mut self, keyword: &str) -> Result<Vec<InfoRecord>, DualError> {
        let entries = self
            .mds
            .search("/o=Grid", Scope::Sub, &format!("(kw={keyword})"))
            .map_err(DualError::Mds)?;
        let mut records = Vec::with_capacity(entries.len());
        for e in entries {
            let keyword = e.first("kw").unwrap_or_default();
            let host = e.first("hn").unwrap_or_default();
            let mut rec = InfoRecord::new(&keyword, &host);
            for (k, v) in &e.attributes {
                if k == "objectclass" || k == "kw" || k == "hn" {
                    continue;
                }
                // Undo the LDAP-safe renaming: `Memory-total` →
                // `Memory:total`.
                let name = match k.strip_prefix(&format!("{keyword}-")) {
                    Some(rest) => format!("{keyword}:{rest}"),
                    None => k.clone(),
                };
                rec.attributes
                    .push(infogram_proto::record::Attribute::new(&name, v));
            }
            records.push(rec);
        }
        Ok(records)
    }

    /// Raw MDS search access for LDAP-style queries.
    pub fn mds(&mut self) -> &mut MdsClient {
        &mut self.mds
    }

    /// Raw GRAM access.
    pub fn gram(&mut self) -> &mut GramClient {
        &mut self.gram
    }
}
