#![warn(missing_docs)]

//! Client APIs for the InfoGram reproduction.
//!
//! Two clients embody the paper's comparison:
//!
//! * [`InfoGramClient`] — one connection, one protocol (Figure 4): job
//!   submission *and* information queries through the same xRSL channel,
//!   with a typed [`QueryBuilder`] for the extension tags.
//! * [`DualClient`] — the baseline (Figure 2): "two different mechanisms
//!   for contacting these services must be used. Not only do the services
//!   operate through different ports, but they also use different
//!   protocols." It holds a GRAM connection for jobs and an MDS session
//!   for information.
//!
//! Both are built on [`GramClient`], the GRAMP-level client (connect,
//! authenticate, submit/status/cancel, asynchronous event callbacks).

pub mod dual;
pub mod gram;
pub mod unified;

pub use dual::DualClient;
pub use gram::{ClientError, GramClient};
pub use unified::{InfoGramClient, QueryBuilder, QueryResult, RetryPolicy, SubUpdate};
