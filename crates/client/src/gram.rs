//! The GRAM-protocol client.
//!
//! Connects, runs the GSI handshake, and then speaks the request/reply
//! protocol. Asynchronous job events (registered with `callback=true` at
//! submit) may arrive interleaved with replies; they are buffered and
//! retrievable with [`GramClient::next_event`] / [`GramClient::wait_event`].

use infogram_gsi::{
    wire_client_finish, wire_client_hello, Certificate, Credential, SecurityContext,
};
use infogram_proto::handle::JobHandle;
use infogram_proto::message::{JobStateCode, Reply, Request};
use infogram_proto::transport::{Conn, ProtoError, Transport};
use infogram_sim::clock::SharedClock;
use infogram_sim::SplitMix64;
use std::collections::VecDeque;
use std::time::Duration;

/// Why a client operation failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Transport(ProtoError),
    /// Authentication or authorization rejected.
    Denied {
        /// Protocol error code.
        code: u32,
        /// Explanation.
        message: String,
    },
    /// The service answered with an error.
    Server {
        /// Protocol error code.
        code: u32,
        /// Explanation.
        message: String,
    },
    /// Handshake or decode failure.
    Protocol(String),
    /// A wait exceeded its deadline.
    Timeout,
    /// The reply carried only last-known-good (stale) data and the
    /// caller required fresh data.
    Degraded {
        /// True age of the served data in seconds, if reported.
        stale_age_secs: Option<f64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Denied { code, message } => {
                write!(f, "denied (code {code}): {message}")
            }
            ClientError::Server { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Timeout => write!(f, "timed out"),
            ClientError::Degraded { stale_age_secs } => match stale_age_secs {
                Some(age) => write!(f, "degraded answer: stale data aged {age:.3}s"),
                None => write!(f, "degraded answer: stale data of unknown age"),
            },
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Transport(e)
    }
}

/// A connected, authenticated GRAM-protocol session.
pub struct GramClient {
    conn: Box<dyn Conn>,
    context: SecurityContext,
    clock: SharedClock,
    events: VecDeque<(JobHandle, JobStateCode)>,
    requests_sent: u64,
}

impl std::fmt::Debug for GramClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GramClient")
            .field("peer", &self.context.peer.to_string())
            .finish_non_exhaustive()
    }
}

impl GramClient {
    /// Connect and authenticate.
    pub fn connect(
        transport: &dyn Transport,
        addr: &str,
        credential: &Credential,
        trust_roots: &[Certificate],
        clock: SharedClock,
    ) -> Result<GramClient, ClientError> {
        let conn = transport.connect(addr)?;
        let now = clock.now();
        let mut rng = SplitMix64::new(now.as_nanos() ^ 0x6772_616d); // "gram"
        let (hello, nonce) = wire_client_hello(credential, &mut rng);
        conn.send(&hello)?;
        let resp = conn.recv()?;
        // The server may answer the HELLO with a protocol-level error.
        if let Ok(Reply::Error { code, message }) = Reply::decode(&resp) {
            return Err(ClientError::Denied { code, message });
        }
        let (fin, context) = wire_client_finish(credential, trust_roots, &resp, nonce, now)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        conn.send(&fin)?;
        // Authorization ack: Pong, or Error for gridmap/contract denial.
        let ack = conn.recv()?;
        match Reply::decode(&ack) {
            Ok(Reply::Pong) => {}
            Ok(Reply::Error { code, message }) => {
                return Err(ClientError::Denied { code, message })
            }
            Ok(other) => {
                return Err(ClientError::Protocol(format!(
                    "unexpected authorization ack: {other:?}"
                )))
            }
            Err(e) => return Err(ClientError::Protocol(e.to_string())),
        }
        Ok(GramClient {
            conn,
            context,
            clock,
            events: VecDeque::new(),
            requests_sent: 0,
        })
    }

    /// The authenticated service identity.
    pub fn context(&self) -> &SecurityContext {
        &self.context
    }

    /// Requests issued on this session.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// Issue one request, buffering any events that arrive before the
    /// reply.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        self.conn.send(&request.encode())?;
        self.requests_sent += 1;
        loop {
            let bytes = self.conn.recv()?;
            match Reply::decode(&bytes) {
                Ok(Reply::Event { handle, state }) => {
                    self.events.push_back((handle, state));
                }
                Ok(reply) => return Ok(reply),
                Err(e) => return Err(ClientError::Protocol(e.to_string())),
            }
        }
    }

    /// Submit an xRSL job; `callback=true` subscribes to events.
    pub fn submit(&mut self, rsl: &str, callback: bool) -> Result<JobHandle, ClientError> {
        match self.request(&Request::Submit {
            rsl: rsl.to_string(),
            callback,
        })? {
            Reply::JobAccepted { handle } => Ok(handle),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Poll a job's status.
    pub fn status(
        &mut self,
        handle: &JobHandle,
    ) -> Result<(JobStateCode, Option<i32>, String), ClientError> {
        match self.request(&Request::Status {
            handle: handle.clone(),
        })? {
            Reply::JobStatus {
                state,
                exit_code,
                output,
                ..
            } => Ok((state, exit_code, output)),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Cancel a job.
    pub fn cancel(&mut self, handle: &JobHandle) -> Result<(), ClientError> {
        match self.request(&Request::Cancel {
            handle: handle.clone(),
        })? {
            Reply::JobStatus { .. } => Ok(()),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Poll until the job reaches a terminal state or `deadline` passes.
    pub fn wait_terminal(
        &mut self,
        handle: &JobHandle,
        poll_every: Duration,
        deadline: Duration,
    ) -> Result<(JobStateCode, Option<i32>, String), ClientError> {
        let start = self.clock.now();
        loop {
            let (state, exit, output) = self.status(handle)?;
            if state.is_terminal() {
                return Ok((state, exit, output));
            }
            if self.clock.now().since(start) > deadline {
                return Err(ClientError::Timeout);
            }
            self.clock.sleep(poll_every);
        }
    }

    /// Pop an already-buffered event, if any (non-blocking).
    pub fn next_event(&mut self) -> Option<(JobHandle, JobStateCode)> {
        self.events.pop_front()
    }

    /// Block until an event arrives (callback delivery, §2: "through
    /// event notification to the client through the GRAM Service").
    pub fn wait_event(&mut self) -> Result<(JobHandle, JobStateCode), ClientError> {
        if let Some(ev) = self.events.pop_front() {
            return Ok(ev);
        }
        let bytes = self.conn.recv()?;
        match Reply::decode(&bytes) {
            Ok(Reply::Event { handle, state }) => Ok((handle, state)),
            Ok(other) => Err(ClientError::Protocol(format!(
                "expected event, got {other:?}"
            ))),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }
}
