//! The GRAM-protocol client.
//!
//! Connects, runs the GSI handshake, and then speaks the request/reply
//! protocol. Asynchronous job events (registered with `callback=true` at
//! submit) may arrive interleaved with replies; they are buffered and
//! retrievable with [`GramClient::next_event`] / [`GramClient::wait_event`].
//! Subscription update frames (`(action=subscribe)`) interleave the same
//! way and are buffered for [`GramClient::next_update`] /
//! [`GramClient::wait_update`].

use infogram_gsi::{
    wire_client_finish, wire_client_hello, Certificate, Credential, SecurityContext,
};
use infogram_proto::delta::RecordDelta;
use infogram_proto::handle::JobHandle;
use infogram_proto::message::{JobStateCode, Reply, Request};
use infogram_proto::transport::{Conn, ProtoError, Transport};
use infogram_sim::clock::SharedClock;
use infogram_sim::SplitMix64;
use std::collections::VecDeque;
use std::time::Duration;

/// Why a client operation failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Transport(ProtoError),
    /// Authentication or authorization rejected.
    Denied {
        /// Protocol error code.
        code: u32,
        /// Explanation.
        message: String,
    },
    /// The service answered with an error.
    Server {
        /// Protocol error code.
        code: u32,
        /// Explanation.
        message: String,
    },
    /// Handshake or decode failure.
    Protocol(String),
    /// A wait exceeded its deadline.
    Timeout,
    /// The reply carried only last-known-good (stale) data and the
    /// caller required fresh data.
    Degraded {
        /// True age of the served data in seconds, if reported.
        stale_age_secs: Option<f64>,
    },
    /// The service ended a push subscription — eviction (e.g.
    /// [`codes::SLOW_CONSUMER`](infogram_proto::message::codes)) or a
    /// service-side shutdown.
    SubscriptionEnded {
        /// The subscription the service closed.
        id: u64,
        /// Protocol error code explaining why (0 = clean close).
        code: u32,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Denied { code, message } => {
                write!(f, "denied (code {code}): {message}")
            }
            ClientError::Server { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Timeout => write!(f, "timed out"),
            ClientError::Degraded { stale_age_secs } => match stale_age_secs {
                Some(age) => write!(f, "degraded answer: stale data aged {age:.3}s"),
                None => write!(f, "degraded answer: stale data of unknown age"),
            },
            ClientError::SubscriptionEnded { id, code, message } => {
                write!(f, "subscription {id} ended (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Transport(e)
    }
}

/// A connected, authenticated GRAM-protocol session.
pub struct GramClient {
    conn: Box<dyn Conn>,
    context: SecurityContext,
    clock: SharedClock,
    events: VecDeque<(JobHandle, JobStateCode)>,
    /// Buffered subscription frames: `Update` batches and unsolicited
    /// `SubEnd` evictions that arrived interleaved with replies.
    pushes: VecDeque<Reply>,
    requests_sent: u64,
}

impl std::fmt::Debug for GramClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GramClient")
            .field("peer", &self.context.peer.to_string())
            .finish_non_exhaustive()
    }
}

impl GramClient {
    /// Connect and authenticate.
    pub fn connect(
        transport: &dyn Transport,
        addr: &str,
        credential: &Credential,
        trust_roots: &[Certificate],
        clock: SharedClock,
    ) -> Result<GramClient, ClientError> {
        let conn = transport.connect(addr)?;
        let now = clock.now();
        let mut rng = SplitMix64::new(now.as_nanos() ^ 0x6772_616d); // "gram"
        let (hello, nonce) = wire_client_hello(credential, &mut rng);
        conn.send(&hello)?;
        let resp = conn.recv()?;
        // The server may answer the HELLO with a protocol-level error.
        if let Ok(Reply::Error { code, message }) = Reply::decode(&resp) {
            return Err(ClientError::Denied { code, message });
        }
        let (fin, context) = wire_client_finish(credential, trust_roots, &resp, nonce, now)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        conn.send(&fin)?;
        // Authorization ack: Pong, or Error for gridmap/contract denial.
        let ack = conn.recv()?;
        match Reply::decode(&ack) {
            Ok(Reply::Pong) => {}
            Ok(Reply::Error { code, message }) => {
                return Err(ClientError::Denied { code, message })
            }
            Ok(other) => {
                return Err(ClientError::Protocol(format!(
                    "unexpected authorization ack: {other:?}"
                )))
            }
            Err(e) => return Err(ClientError::Protocol(e.to_string())),
        }
        Ok(GramClient {
            conn,
            context,
            clock,
            events: VecDeque::new(),
            pushes: VecDeque::new(),
            requests_sent: 0,
        })
    }

    /// The authenticated service identity.
    pub fn context(&self) -> &SecurityContext {
        &self.context
    }

    /// Requests issued on this session.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// Issue one request, buffering any events or subscription frames
    /// that arrive before the reply.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        self.request_inner(request, false)
    }

    /// `expect_subend` distinguishes the one request whose *reply* is a
    /// `SubEnd` (unsubscribe) from an unsolicited eviction notice, which
    /// is buffered like any push frame.
    fn request_inner(
        &mut self,
        request: &Request,
        expect_subend: bool,
    ) -> Result<Reply, ClientError> {
        self.conn.send(&request.encode())?;
        self.requests_sent += 1;
        loop {
            let bytes = self.conn.recv()?;
            match Reply::decode(&bytes) {
                Ok(Reply::Event { handle, state }) => {
                    self.events.push_back((handle, state));
                }
                Ok(push @ Reply::Update { .. }) => self.pushes.push_back(push),
                Ok(push @ Reply::SubEnd { .. }) if !expect_subend => self.pushes.push_back(push),
                Ok(reply) => return Ok(reply),
                Err(e) => return Err(ClientError::Protocol(e.to_string())),
            }
        }
    }

    /// Submit an xRSL job; `callback=true` subscribes to events.
    pub fn submit(&mut self, rsl: &str, callback: bool) -> Result<JobHandle, ClientError> {
        match self.request(&Request::Submit {
            rsl: rsl.to_string(),
            callback,
        })? {
            Reply::JobAccepted { handle } => Ok(handle),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Poll a job's status.
    pub fn status(
        &mut self,
        handle: &JobHandle,
    ) -> Result<(JobStateCode, Option<i32>, String), ClientError> {
        match self.request(&Request::Status {
            handle: handle.clone(),
        })? {
            Reply::JobStatus {
                state,
                exit_code,
                output,
                ..
            } => Ok((state, exit_code, output)),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Cancel a job.
    pub fn cancel(&mut self, handle: &JobHandle) -> Result<(), ClientError> {
        match self.request(&Request::Cancel {
            handle: handle.clone(),
        })? {
            Reply::JobStatus { .. } => Ok(()),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Poll until the job reaches a terminal state or `deadline` passes.
    pub fn wait_terminal(
        &mut self,
        handle: &JobHandle,
        poll_every: Duration,
        deadline: Duration,
    ) -> Result<(JobStateCode, Option<i32>, String), ClientError> {
        let start = self.clock.now();
        loop {
            let (state, exit, output) = self.status(handle)?;
            if state.is_terminal() {
                return Ok((state, exit, output));
            }
            if self.clock.now().since(start) > deadline {
                return Err(ClientError::Timeout);
            }
            self.clock.sleep(poll_every);
        }
    }

    /// Pop an already-buffered event, if any (non-blocking).
    pub fn next_event(&mut self) -> Option<(JobHandle, JobStateCode)> {
        self.events.pop_front()
    }

    /// Block until an event arrives (callback delivery, §2: "through
    /// event notification to the client through the GRAM Service").
    pub fn wait_event(&mut self) -> Result<(JobHandle, JobStateCode), ClientError> {
        if let Some(ev) = self.events.pop_front() {
            return Ok(ev);
        }
        let bytes = self.conn.recv()?;
        match Reply::decode(&bytes) {
            Ok(Reply::Event { handle, state }) => Ok((handle, state)),
            Ok(other) => Err(ClientError::Protocol(format!(
                "expected event, got {other:?}"
            ))),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// Open a persistent query over the listed keywords:
    /// `(action=subscribe)(info=K)...`. Returns the server-assigned
    /// subscription id and the number of keyword channels joined.
    pub fn subscribe(&mut self, keywords: &[&str]) -> Result<(u64, u32), ClientError> {
        let rsl: String = keywords
            .iter()
            .fold("(action=subscribe)".to_string(), |mut acc, k| {
                acc.push_str(&format!("(info={k})"));
                acc
            });
        match self.request(&Request::Submit {
            rsl,
            callback: false,
        })? {
            Reply::Subscribed { id, count } => Ok((id, count)),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Close a subscription opened on this session.
    pub fn unsubscribe(&mut self, id: u64) -> Result<(), ClientError> {
        match self.request_inner(
            &Request::Submit {
                rsl: format!("(action=unsubscribe)(subscription={id})"),
                callback: false,
            },
            true,
        )? {
            Reply::SubEnd { .. } => Ok(()),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Pop an already-buffered update batch, if any (non-blocking). A
    /// buffered eviction notice surfaces as
    /// [`ClientError::SubscriptionEnded`].
    pub fn next_update(&mut self) -> Option<Result<(u64, Vec<RecordDelta>), ClientError>> {
        match self.pushes.pop_front() {
            Some(Reply::Update { id, deltas }) => Some(Ok((id, deltas))),
            Some(Reply::SubEnd { id, code, message }) => {
                Some(Err(ClientError::SubscriptionEnded { id, code, message }))
            }
            Some(other) => Some(Err(ClientError::Protocol(format!(
                "unexpected buffered frame {other:?}"
            )))),
            None => None,
        }
    }

    /// Block until the next update batch arrives on any subscription.
    /// An eviction notice surfaces as
    /// [`ClientError::SubscriptionEnded`]; job events arriving meanwhile
    /// are buffered as usual.
    pub fn wait_update(&mut self) -> Result<(u64, Vec<RecordDelta>), ClientError> {
        loop {
            if let Some(res) = self.next_update() {
                return res;
            }
            let bytes = self.conn.recv()?;
            match Reply::decode(&bytes) {
                Ok(push @ (Reply::Update { .. } | Reply::SubEnd { .. })) => {
                    self.pushes.push_back(push)
                }
                Ok(Reply::Event { handle, state }) => self.events.push_back((handle, state)),
                Ok(other) => {
                    return Err(ClientError::Protocol(format!(
                        "expected update, got {other:?}"
                    )))
                }
                Err(e) => return Err(ClientError::Protocol(e.to_string())),
            }
        }
    }

    /// Fault injection: drop the underlying connection so every later
    /// operation fails with a transport error, exactly as a crashed
    /// link would look from this side. The server observes the hangup
    /// through its own `recv` failing. Used by reconnect tests.
    pub fn sever(&mut self) {
        struct Severed;
        impl Conn for Severed {
            fn send(&self, _msg: &[u8]) -> Result<(), ProtoError> {
                Err(ProtoError::Closed)
            }
            fn recv(&self) -> Result<Vec<u8>, ProtoError> {
                Err(ProtoError::Closed)
            }
            fn peer(&self) -> String {
                "severed".to_string()
            }
        }
        self.conn = Box::new(Severed);
    }
}
