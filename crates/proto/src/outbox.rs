//! Bounded per-connection outboxes for push delivery.
//!
//! A push subscription inverts the protocol's flow: the service writes
//! without being asked. A slow consumer therefore becomes the *server's*
//! problem — frames queue up somewhere, and an unbounded somewhere is a
//! memory-exhaustion bug with 100k subscribers. The [`Outbox`] is the
//! bounded somewhere: a fixed-capacity frame queue in front of the
//! connection, with two hard rules that `tests/model_sub.rs` checks
//! under every interleaving:
//!
//! 1. **`push` never sends and never blocks.** The refresh scheduler
//!    calls `push` during fan-out; if it could block on a peer's TCP
//!    window the whole refresh pipeline would stall behind one slow
//!    subscriber (and a lock cycle with the drain path could deadlock).
//!    `push` is a single atomic capacity-check-and-insert under one
//!    lock acquisition — checking and inserting under *separate*
//!    acquisitions is the seeded bug the model explorer must catch.
//! 2. **Overflow is eviction, not waiting.** A full outbox fails the
//!    push; the subscription layer converts that into a
//!    [`crate::message::codes::SLOW_CONSUMER`] eviction via
//!    [`Outbox::close_with`], which discards the backlog (the consumer
//!    was not reading it anyway) and leaves exactly one final frame —
//!    the `SubEnd` notice — to be flushed.
//!
//! Draining is decoupled from pushing: any thread may call
//! [`Outbox::drain`], exactly one at a time wins the `draining` flag,
//! and the winner performs the actual `Conn::send` calls *outside* the
//! state lock.

use crate::transport::Conn;
use parking_lot::{lock_class, lockdep, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// Why a push or drain failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutboxError {
    /// The bounded queue is full: the consumer is not keeping up.
    Overflow {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The outbox was closed (evicted subscription or dead connection).
    Closed,
}

impl std::fmt::Display for OutboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutboxError::Overflow { capacity } => {
                write!(f, "outbox overflow: consumer fell {capacity} frames behind")
            }
            OutboxError::Closed => write!(f, "outbox closed"),
        }
    }
}

impl std::error::Error for OutboxError {}

struct OutboxState {
    queue: VecDeque<Vec<u8>>,
    /// Exactly one drainer at a time; the winner sends outside the lock.
    draining: bool,
    closed: bool,
}

/// A bounded frame queue in front of a shared connection.
pub struct Outbox {
    conn: Arc<dyn Conn>,
    capacity: usize,
    state: Mutex<OutboxState>,
}

impl std::fmt::Debug for Outbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Outbox")
            .field("capacity", &self.capacity)
            .field("queued", &st.queue.len())
            .field("closed", &st.closed)
            .finish()
    }
}

impl Outbox {
    /// A bounded outbox over `conn`. `capacity` is the maximum number of
    /// undelivered frames before pushes start failing with
    /// [`OutboxError::Overflow`].
    pub fn new(conn: Arc<dyn Conn>, capacity: usize) -> Arc<Outbox> {
        Arc::new(Outbox {
            conn,
            capacity: capacity.max(1),
            state: Mutex::with_class(
                OutboxState {
                    queue: VecDeque::new(),
                    draining: false,
                    closed: false,
                },
                lock_class!("proto.outbox.state"),
            ),
        })
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently queued (pushed but not yet drained) frames.
    pub fn queued(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether the outbox was closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Enqueue one frame. Never sends, never blocks: the capacity check
    /// and the insert happen under a single lock acquisition, so two
    /// concurrent pushes can never conspire to exceed the bound.
    pub fn push(&self, frame: Vec<u8>) -> Result<(), OutboxError> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(OutboxError::Closed);
        }
        if st.queue.len() >= self.capacity {
            return Err(OutboxError::Overflow {
                capacity: self.capacity,
            });
        }
        st.queue.push_back(frame);
        Ok(())
    }

    /// Flush queued frames to the connection. Exactly one drainer runs
    /// at a time (a loser returns `Ok(0)` immediately — its frames are
    /// the winner's to deliver); the winner sends with no lock held.
    /// A send failure closes the outbox and discards the backlog.
    pub fn drain(&self) -> Result<usize, OutboxError> {
        {
            let mut st = self.state.lock();
            if st.draining {
                return Ok(0);
            }
            st.draining = true;
        }
        let mut sent = 0usize;
        loop {
            let frame = {
                let mut st = self.state.lock();
                match st.queue.pop_front() {
                    Some(f) => f,
                    None => {
                        st.draining = false;
                        return Ok(sent);
                    }
                }
            };
            // A sink delivery can block on the peer's transport for as
            // long as the transport likes. Two documented exceptions may
            // be held here (DESIGN §13): the per-channel delivery lock
            // (DESIGN §12: it exists to serialize exactly this send) and
            // the per-connection job-event dedup lock, which serializes
            // job Events into transition order the same way. The outbox's
            // own state lock is released above, and nothing else may be
            // held.
            lockdep::blocking_point(
                "proto.outbox.send",
                &["info.sub.delivery", "exec.gram.job_subs"],
            );
            if self.conn.send(&frame).is_err() {
                let mut st = self.state.lock();
                st.draining = false;
                st.closed = true;
                st.queue.clear();
                return Err(OutboxError::Closed);
            }
            sent += 1;
        }
    }

    /// Push-then-drain convenience for request/reply traffic that shares
    /// the outbox with pushed frames (ordering stays FIFO through the
    /// queue).
    pub fn send(&self, frame: Vec<u8>) -> Result<(), OutboxError> {
        self.push(frame)?;
        self.drain()?;
        Ok(())
    }

    /// Close the outbox, discarding the backlog and replacing it with
    /// one `final_frame` (the `SubEnd` eviction notice), then attempt to
    /// flush it. Subsequent pushes fail with [`OutboxError::Closed`].
    pub fn close_with(&self, final_frame: Vec<u8>) {
        {
            let mut st = self.state.lock();
            if st.closed {
                return;
            }
            // The backlog is what the slow consumer failed to read;
            // delivering it now would only delay the eviction notice.
            st.queue.clear();
            st.queue.push_back(final_frame);
            st.closed = true;
        }
        let _ = self.drain();
    }

    /// Close without a final frame (connection teardown).
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        st.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::mem::MemNetwork;
    use crate::transport::Transport;

    fn pair() -> (Arc<dyn Conn>, Box<dyn Conn>) {
        let net = MemNetwork::ideal();
        let listener = net.listen("svc:1").unwrap();
        let client = net.connect("svc:1").unwrap();
        let server = listener.accept().unwrap();
        (Arc::from(server), client)
    }

    #[test]
    fn push_then_drain_delivers_in_order() {
        let (server, client) = pair();
        let ob = Outbox::new(server, 8);
        for i in 0..3u8 {
            ob.push(vec![i]).unwrap();
        }
        assert_eq!(ob.queued(), 3);
        assert_eq!(ob.drain().unwrap(), 3);
        for i in 0..3u8 {
            assert_eq!(client.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn overflow_fails_the_push_not_the_queue() {
        let (server, _client) = pair();
        let ob = Outbox::new(server, 2);
        ob.push(vec![0]).unwrap();
        ob.push(vec![1]).unwrap();
        assert_eq!(
            ob.push(vec![2]),
            Err(OutboxError::Overflow { capacity: 2 }),
            "the bound is hard"
        );
        assert_eq!(ob.queued(), 2, "the failed push did not corrupt the queue");
    }

    #[test]
    fn close_with_discards_backlog_and_flushes_final_frame() {
        let (server, client) = pair();
        let ob = Outbox::new(server, 4);
        ob.push(vec![1]).unwrap();
        ob.push(vec![2]).unwrap();
        ob.close_with(vec![9]);
        assert_eq!(
            client.recv().unwrap(),
            vec![9],
            "the eviction notice jumps the discarded backlog"
        );
        assert!(ob.is_closed());
        assert_eq!(ob.push(vec![3]), Err(OutboxError::Closed));
    }

    #[test]
    fn dead_connection_closes_the_outbox() {
        let (server, client) = pair();
        let ob = Outbox::new(server, 4);
        drop(client);
        ob.push(vec![1]).unwrap();
        assert_eq!(ob.drain(), Err(OutboxError::Closed));
        assert_eq!(ob.push(vec![2]), Err(OutboxError::Closed));
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let (server, _client) = pair();
        let ob = Outbox::new(server, 64);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ob = Arc::clone(&ob);
            handles.push(std::thread::spawn(move || {
                let mut accepted = 0usize;
                for i in 0..32u8 {
                    if ob.push(vec![i]).is_ok() {
                        accepted += 1;
                    }
                }
                accepted
            }));
        }
        let accepted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(accepted, 64, "exactly capacity pushes are admitted");
        assert_eq!(ob.queued(), 64);
    }
}
