//! Information records.
//!
//! One record is the output of one *key information provider* (§6.3): a
//! keyword plus its attributes, each namespaced `Keyword:attr` ("the
//! attribute total in the Memory information provider would be referred to
//! as Memory:total"), optionally annotated with a quality-of-information
//! value (§6.4) and its age.

use std::fmt;

/// One attribute of a record.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Namespaced name, e.g. `Memory:total`.
    pub name: String,
    /// String value.
    pub value: String,
    /// Quality of information in `[0, 1]`, if assessed (§6.4).
    pub quality: Option<f64>,
    /// Seconds since the value was produced, if known.
    pub age_secs: Option<f64>,
}

impl Attribute {
    /// A plain attribute with no annotations.
    pub fn new(name: &str, value: &str) -> Self {
        Attribute {
            name: name.to_string(),
            value: value.to_string(),
            quality: None,
            age_secs: None,
        }
    }

    /// Attach a quality annotation.
    pub fn with_quality(mut self, q: f64) -> Self {
        self.quality = Some(q);
        self
    }

    /// Attach an age annotation.
    pub fn with_age(mut self, age_secs: f64) -> Self {
        self.age_secs = Some(age_secs);
        self
    }
}

/// The output of one information provider.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InfoRecord {
    /// The keyword (provider name), e.g. `Memory`.
    pub keyword: String,
    /// Host the information describes.
    pub host: String,
    /// The attributes, in provider order.
    pub attributes: Vec<Attribute>,
    /// Whether this record is a *degraded* answer: the provider failed
    /// or was breaker-gated, and the last-known-good value was served
    /// instead. The per-attribute quality/age annotations carry the
    /// honest degradation; this flag tells the client the value is not
    /// fresh *because of a fault*, not merely TTL caching.
    pub degraded: bool,
    /// When degraded: seconds since the served value was produced (its
    /// true age, the input to the degradation function).
    pub stale_age_secs: Option<f64>,
}

impl InfoRecord {
    /// An empty record for a keyword on a host.
    pub fn new(keyword: &str, host: &str) -> Self {
        InfoRecord {
            keyword: keyword.to_string(),
            host: host.to_string(),
            attributes: Vec::new(),
            degraded: false,
            stale_age_secs: None,
        }
    }

    /// Append an attribute, namespacing a bare name with the keyword
    /// (`total` → `Memory:total`). Already-namespaced names pass through.
    pub fn push(&mut self, name: &str, value: &str) -> &mut Attribute {
        let full = if name.contains(':') {
            name.to_string()
        } else {
            format!("{}:{}", self.keyword, name)
        };
        self.attributes.push(Attribute::new(&full, value));
        // lint:allow(unwrap) — last_mut on the element pushed one line up
        self.attributes.last_mut().expect("just pushed")
    }

    /// Look up an attribute by full or bare name.
    pub fn get(&self, name: &str) -> Option<&Attribute> {
        let full = if name.contains(':') {
            name.to_string()
        } else {
            format!("{}:{}", self.keyword, name)
        };
        self.attributes.iter().find(|a| a.name == full)
    }

    /// Keep only attributes whose name matches `filter` — an exact
    /// namespaced name, a bare attribute name, or a `Keyword:*` prefix
    /// pattern (the xRSL `filter` tag).
    pub fn retain_matching(&mut self, filter: &str) {
        let keyword = self.keyword.clone();
        self.attributes.retain(|a| {
            if let Some(prefix) = filter.strip_suffix(":*") {
                a.name.starts_with(&format!("{prefix}:"))
            } else if filter.contains(':') {
                a.name == filter
            } else {
                a.name == format!("{keyword}:{filter}")
            }
        });
    }
}

impl fmt::Display for InfoRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{} @ {}]", self.keyword, self.host)?;
        for a in &self.attributes {
            write!(f, "  {} = {}", a.name, a.value)?;
            if let Some(q) = a.quality {
                write!(f, " (quality {q:.2})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespacing_on_push() {
        let mut r = InfoRecord::new("Memory", "node0");
        r.push("total", "4096");
        r.push("Memory:free", "1024");
        assert_eq!(r.attributes[0].name, "Memory:total");
        assert_eq!(r.attributes[1].name, "Memory:free");
    }

    #[test]
    fn get_by_bare_or_full_name() {
        let mut r = InfoRecord::new("CPU", "node0");
        r.push("count", "4");
        assert_eq!(r.get("count").unwrap().value, "4");
        assert_eq!(r.get("CPU:count").unwrap().value, "4");
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn annotations() {
        let a = Attribute::new("CPULoad:load", "0.93")
            .with_quality(0.8)
            .with_age(12.5);
        assert_eq!(a.quality, Some(0.8));
        assert_eq!(a.age_secs, Some(12.5));
    }

    #[test]
    fn filter_exact_and_bare() {
        let mut r = InfoRecord::new("Memory", "n");
        r.push("total", "1");
        r.push("free", "2");
        let mut by_full = r.clone();
        by_full.retain_matching("Memory:free");
        assert_eq!(by_full.attributes.len(), 1);
        assert_eq!(by_full.attributes[0].value, "2");

        let mut by_bare = r.clone();
        by_bare.retain_matching("total");
        assert_eq!(by_bare.attributes.len(), 1);
        assert_eq!(by_bare.attributes[0].name, "Memory:total");
    }

    #[test]
    fn filter_prefix_pattern() {
        let mut r = InfoRecord::new("Memory", "n");
        r.push("total", "1");
        r.push("free", "2");
        r.retain_matching("Memory:*");
        assert_eq!(r.attributes.len(), 2);
        r.retain_matching("Disk:*");
        assert!(r.attributes.is_empty());
    }

    #[test]
    fn display_contains_values() {
        let mut r = InfoRecord::new("Date", "n0");
        r.push("value", "2002-07-24").quality = Some(1.0);
        let s = r.to_string();
        assert!(s.contains("Date:value = 2002-07-24"));
        assert!(s.contains("quality 1.00"));
    }
}
