//! Transports: how frames get between client and service.
//!
//! Two implementations of the same [`Transport`] trait:
//!
//! * [`mem::MemNetwork`] — an in-process network of crossbeam channels
//!   with a latency/loss model from `infogram-sim` and built-in traffic
//!   accounting. Deterministic, fast, used by tests and by the
//!   protocol-overhead experiments.
//! * [`tcp::TcpTransport`] — real `std::net` TCP with length-prefixed
//!   frames, used by the runnable examples.
//!
//! Both count connections, messages, and bytes into a
//! [`infogram_sim::metrics::MetricSet`], which is how Figures 2–4 get
//! their connection/handshake/byte columns.

use std::fmt;

pub mod mem;
pub mod tcp;

/// Transport-level failure.
#[derive(Debug)]
pub enum ProtoError {
    /// The connection or listener is closed.
    Closed,
    /// No service is listening at the address.
    ConnectionRefused(String),
    /// The address string could not be used.
    BadAddress(String),
    /// An OS-level I/O failure.
    Io(String),
    /// A frame exceeded the size limit.
    TooLarge(usize),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::ConnectionRefused(a) => write!(f, "connection refused: {a}"),
            ProtoError::BadAddress(a) => write!(f, "bad address: {a}"),
            ProtoError::Io(e) => write!(f, "transport I/O error: {e}"),
            ProtoError::TooLarge(n) => write!(f, "message of {n} bytes too large"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<crate::frame::FrameError> for ProtoError {
    fn from(e: crate::frame::FrameError) -> Self {
        match e {
            crate::frame::FrameError::Closed => ProtoError::Closed,
            crate::frame::FrameError::Io(e) => ProtoError::Io(e.to_string()),
            crate::frame::FrameError::TooLarge(n) => ProtoError::TooLarge(n),
        }
    }
}

/// A bidirectional message connection.
pub trait Conn: Send + Sync {
    /// Send one message. `&self`: connections are internally
    /// synchronized so a request loop and an asynchronous event pusher
    /// can share one connection.
    fn send(&self, msg: &[u8]) -> Result<(), ProtoError>;
    /// Receive the next message, blocking. Only one thread should recv.
    fn recv(&self) -> Result<Vec<u8>, ProtoError>;
    /// A printable peer address.
    fn peer(&self) -> String;
}

/// A listening endpoint.
pub trait Listener: Send + Sync {
    /// Accept the next incoming connection, blocking.
    fn accept(&self) -> Result<Box<dyn Conn>, ProtoError>;
    /// The bound address (with any `:0` port resolved).
    fn local_addr(&self) -> String;
    /// Unblock pending and future `accept` calls with
    /// [`ProtoError::Closed`].
    fn close(&self);
}

/// A way of listening and connecting.
pub trait Transport: Send + Sync {
    /// Bind a listener. `host:0` picks a fresh port.
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, ProtoError>;
    /// Connect to a listener.
    fn connect(&self, addr: &str) -> Result<Box<dyn Conn>, ProtoError>;
}
