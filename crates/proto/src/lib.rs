#![warn(missing_docs)]

//! Wire protocol for the InfoGram reproduction.
//!
//! The paper's central architectural claim is that job execution and
//! information query are "based on the same principle: a query formulated
//! and submitted to a server followed by a stream of information that
//! returns the result" — so **one** protocol suffices where Globus used
//! two (GRAMP for GRAM, LDAP for MDS). This crate is that one protocol:
//!
//! * [`message`] — the GRAMP-shaped request/reply vocabulary (submit,
//!   status, cancel, callback registration, events) with a compact binary
//!   encoding. Info queries travel as ordinary submits whose RSL carries
//!   `(info=...)` tags.
//! * [`handle`] — GlobusID-style job contact handles
//!   (`x-infogram://host:port/jobid/epoch`).
//! * [`record`] — information records: namespaced attributes with
//!   quality-of-information annotations.
//! * [`render`] — LDIF, XML, and plain renderers for records (§6.6
//!   `format` tag), including a from-scratch base64 for LDIF-unsafe
//!   values.
//! * [`delta`] — changed-attributes-only payloads for push
//!   subscriptions (`(action=subscribe)`): versioned, gap-detectable,
//!   renderer-round-trippable.
//! * [`outbox`] — bounded per-connection frame queues with
//!   slow-consumer eviction, the backpressure half of the push path.
//! * [`frame`] — length-prefixed framing.
//! * [`transport`] — the [`transport::Transport`] abstraction with an
//!   in-memory channel network (deterministic, latency-modelled) and a
//!   real TCP implementation.
//!
//! The separate LDAP-flavoured protocol of the MDS baseline lives in
//! `infogram-mds` — its existence *is* the baseline condition of
//! Figures 2 and 4.

pub mod delta;
pub mod frame;
pub mod handle;
pub mod message;
pub mod outbox;
pub mod record;
pub mod render;
pub mod transport;

pub use delta::{encode_deltas, DeltaError, RecordDelta};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use handle::JobHandle;
pub use message::{codes, JobStateCode, Reply, Request, WireError};
pub use outbox::{Outbox, OutboxError};
pub use record::{Attribute, InfoRecord};
pub use transport::{Conn, Listener, ProtoError, Transport};
