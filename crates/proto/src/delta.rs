//! Changed-attributes-only payloads for push subscriptions.
//!
//! A persistent query (`(action=subscribe)` in xRSL) streams record
//! updates to its subscribers whenever a keyword refreshes. Shipping
//! the full record on every refresh would make the push path cost the
//! same as the polling it replaces, so the wire carries a
//! [`RecordDelta`]: the attributes that changed since the previous
//! version, the names that disappeared, and the record-level
//! degraded/stale-age annotations (which must survive the push path
//! exactly as they survive a poll — a stale-served value is still
//! stale when it is pushed).
//!
//! The contract, proptested in `tests/properties.rs`: for any two
//! snapshots `prev → next`, `diff(prev, next).apply(prev)` reproduces
//! `next` byte-for-byte (field-for-field, and therefore byte-for-byte
//! through every renderer). When the delta cannot represent the
//! transition compactly — first delivery, or the provider reordered
//! its attributes — `diff` degrades to a full snapshot (`full=true`)
//! rather than approximate.

use crate::record::{Attribute, InfoRecord};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A delta failed to decode or apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaError {
    /// Explanation.
    pub reason: String,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delta error: {}", self.reason)
    }
}

impl std::error::Error for DeltaError {}

fn err(reason: &str) -> DeltaError {
    DeltaError {
        reason: reason.to_string(),
    }
}

/// An incremental record update: version `version` of `keyword`,
/// expressed against version `version - 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordDelta {
    /// The information keyword this delta belongs to.
    pub keyword: String,
    /// The producing host.
    pub host: String,
    /// Per-keyword version, monotonically increasing by 1 per refresh.
    /// Subscribers detect gaps (missed updates) by contiguity.
    pub version: u64,
    /// When true, `changed` holds *every* attribute of the record and
    /// `removed` is empty: the delta is a self-contained snapshot.
    /// Every subscription starts with one, so a fresh subscriber (or a
    /// resubscribe after reconnect) never needs server history.
    pub full: bool,
    /// Attributes added or modified since the previous version, in
    /// record order.
    pub changed: Vec<Attribute>,
    /// Attribute names present in the previous version but absent now.
    pub removed: Vec<String>,
    /// Record-level fault-domain annotation: the value is a stale serve.
    pub degraded: bool,
    /// Age of the stale value, if degraded.
    pub stale_age_secs: Option<f64>,
}

impl RecordDelta {
    /// Compute the delta that turns `prev` into `next`.
    ///
    /// With no `prev` (first delivery) the delta is a full snapshot.
    /// If the attribute order of the surviving attributes differs
    /// between the two snapshots, a compact delta could not reproduce
    /// `next` exactly, so the diff degrades to a full snapshot too.
    pub fn diff(prev: Option<&InfoRecord>, next: &InfoRecord, version: u64) -> RecordDelta {
        let full_snapshot = |rec: &InfoRecord| RecordDelta {
            keyword: rec.keyword.clone(),
            host: rec.host.clone(),
            version,
            full: true,
            changed: rec.attributes.clone(),
            removed: Vec::new(),
            degraded: rec.degraded,
            stale_age_secs: rec.stale_age_secs,
        };
        let Some(prev) = prev else {
            return full_snapshot(next);
        };
        // A compact delta replays as: keep prev's order for surviving
        // attributes, append genuinely new ones at the tail. If that
        // replay would not reproduce next's exact attribute order —
        // survivors reordered, or a new attribute inserted mid-record —
        // only a snapshot is faithful.
        let survives = |name: &str| next.attributes.iter().any(|a| a.name == name);
        let mut replay_order: Vec<&str> = prev
            .attributes
            .iter()
            .filter(|a| survives(&a.name))
            .map(|a| a.name.as_str())
            .collect();
        for a in &next.attributes {
            if !prev.attributes.iter().any(|p| p.name == a.name) {
                replay_order.push(a.name.as_str());
            }
        }
        let next_names: Vec<&str> = next.attributes.iter().map(|a| a.name.as_str()).collect();
        if replay_order != next_names {
            return full_snapshot(next);
        }
        let changed: Vec<Attribute> = next
            .attributes
            .iter()
            .filter(|a| prev.attributes.iter().all(|p| p != *a))
            .cloned()
            .collect();
        let removed: Vec<String> = prev
            .attributes
            .iter()
            .filter(|p| !survives(&p.name))
            .map(|p| p.name.clone())
            .collect();
        RecordDelta {
            keyword: next.keyword.clone(),
            host: next.host.clone(),
            version,
            full: false,
            changed,
            removed,
            degraded: next.degraded,
            stale_age_secs: next.stale_age_secs,
        }
    }

    /// Apply this delta to the previous snapshot, reproducing the full
    /// record. A `full` delta ignores `prev`; a compact delta requires
    /// it.
    pub fn apply(&self, prev: Option<&InfoRecord>) -> Result<InfoRecord, DeltaError> {
        let mut rec = if self.full {
            InfoRecord::new(&self.keyword, &self.host)
        } else {
            let prev = prev.ok_or_else(|| err("compact delta without a prior snapshot"))?;
            if prev.keyword != self.keyword {
                return Err(err(&format!(
                    "delta for '{}' applied to snapshot of '{}'",
                    self.keyword, prev.keyword
                )));
            }
            let mut rec = prev.clone();
            rec.host = self.host.clone();
            rec.attributes.retain(|a| !self.removed.contains(&a.name));
            rec
        };
        for attr in &self.changed {
            match rec.attributes.iter_mut().find(|a| a.name == attr.name) {
                Some(existing) => *existing = attr.clone(),
                None => rec.attributes.push(attr.clone()),
            }
        }
        rec.degraded = self.degraded;
        rec.stale_age_secs = self.stale_age_secs;
        Ok(rec)
    }

    /// Whether the delta carries no attribute changes at all (the
    /// refresh produced an identical record — still delivered, because
    /// the version must stay contiguous for gap detection).
    pub fn is_empty(&self) -> bool {
        !self.full && self.changed.is_empty() && self.removed.is_empty()
    }

    // -- renderer bridge ------------------------------------------------

    /// Project the delta into an [`InfoRecord`] so it can travel through
    /// the LDIF/XML renderers. Delta-specific structure (version, the
    /// full flag, removals) rides as `infogram-delta-*` attributes next
    /// to the changed ones; the degraded/stale-age annotations use the
    /// record-level fields the renderers already serialize.
    pub fn to_record(&self) -> InfoRecord {
        let mut rec = InfoRecord::new(&self.keyword, &self.host);
        rec.degraded = self.degraded;
        rec.stale_age_secs = self.stale_age_secs;
        rec.attributes.push(Attribute::new(
            "infogram-delta-version",
            &self.version.to_string(),
        ));
        if self.full {
            rec.attributes
                .push(Attribute::new("infogram-delta-full", "TRUE"));
        }
        for name in &self.removed {
            rec.attributes
                .push(Attribute::new("infogram-delta-removed", name));
        }
        rec.attributes.extend(self.changed.iter().cloned());
        rec
    }

    /// Recover a delta from its [`Self::to_record`] projection.
    pub fn from_record(rec: &InfoRecord) -> Result<RecordDelta, DeltaError> {
        let mut version = None;
        let mut full = false;
        let mut removed = Vec::new();
        let mut changed = Vec::new();
        for a in &rec.attributes {
            match a.name.as_str() {
                "infogram-delta-version" => {
                    version = Some(
                        a.value
                            .parse::<u64>()
                            .map_err(|_| err("bad delta version"))?,
                    );
                }
                "infogram-delta-full" => full = a.value == "TRUE",
                "infogram-delta-removed" => removed.push(a.value.clone()),
                _ => changed.push(a.clone()),
            }
        }
        Ok(RecordDelta {
            keyword: rec.keyword.clone(),
            host: rec.host.clone(),
            version: version.ok_or_else(|| err("record carries no delta version"))?,
            full,
            changed,
            removed,
            degraded: rec.degraded,
            stale_age_secs: rec.stale_age_secs,
        })
    }

    // -- binary codec ---------------------------------------------------

    /// Append the wire encoding to `buf` (used by the `Reply::Update`
    /// frame codec).
    pub(crate) fn encode_into(&self, buf: &mut BytesMut) {
        crate::message::put_str(buf, &self.keyword);
        crate::message::put_str(buf, &self.host);
        buf.put_u64(self.version);
        let mut flags = 0u8;
        if self.full {
            flags |= 1;
        }
        if self.degraded {
            flags |= 2;
        }
        if self.stale_age_secs.is_some() {
            flags |= 4;
        }
        buf.put_u8(flags);
        if let Some(age) = self.stale_age_secs {
            buf.put_f64(age);
        }
        buf.put_u32(self.changed.len() as u32);
        for a in &self.changed {
            crate::message::put_str(buf, &a.name);
            crate::message::put_str(buf, &a.value);
            let mut aflags = 0u8;
            if a.quality.is_some() {
                aflags |= 1;
            }
            if a.age_secs.is_some() {
                aflags |= 2;
            }
            buf.put_u8(aflags);
            if let Some(q) = a.quality {
                buf.put_f64(q);
            }
            if let Some(age) = a.age_secs {
                buf.put_f64(age);
            }
        }
        buf.put_u32(self.removed.len() as u32);
        for name in &self.removed {
            crate::message::put_str(buf, name);
        }
    }

    /// Decode one delta from `buf` (inverse of [`Self::encode_into`]).
    pub(crate) fn decode_from(buf: &mut Bytes) -> Result<RecordDelta, DeltaError> {
        let get_str =
            |buf: &mut Bytes| crate::message::get_str(buf).map_err(|e| err(&e.to_string()));
        let keyword = get_str(buf)?;
        let host = get_str(buf)?;
        if buf.remaining() < 9 {
            return Err(err("truncated delta header"));
        }
        let version = buf.get_u64();
        let flags = buf.get_u8();
        if flags & !7 != 0 {
            return Err(err("unknown delta flags"));
        }
        let full = flags & 1 != 0;
        let degraded = flags & 2 != 0;
        let stale_age_secs = if flags & 4 != 0 {
            if buf.remaining() < 8 {
                return Err(err("truncated stale age"));
            }
            Some(buf.get_f64())
        } else {
            None
        };
        if buf.remaining() < 4 {
            return Err(err("truncated changed count"));
        }
        let n_changed = buf.get_u32() as usize;
        let mut changed = Vec::new();
        for _ in 0..n_changed {
            let name = get_str(buf)?;
            let value = get_str(buf)?;
            if buf.remaining() < 1 {
                return Err(err("truncated attribute flags"));
            }
            let aflags = buf.get_u8();
            if aflags & !3 != 0 {
                return Err(err("unknown attribute flags"));
            }
            let mut attr = Attribute::new(&name, &value);
            if aflags & 1 != 0 {
                if buf.remaining() < 8 {
                    return Err(err("truncated quality"));
                }
                attr.quality = Some(buf.get_f64());
            }
            if aflags & 2 != 0 {
                if buf.remaining() < 8 {
                    return Err(err("truncated age"));
                }
                attr.age_secs = Some(buf.get_f64());
            }
            changed.push(attr);
        }
        if buf.remaining() < 4 {
            return Err(err("truncated removed count"));
        }
        let n_removed = buf.get_u32() as usize;
        let mut removed = Vec::new();
        for _ in 0..n_removed {
            removed.push(get_str(buf)?);
        }
        Ok(RecordDelta {
            keyword,
            host,
            version,
            full,
            changed,
            removed,
            degraded,
            stale_age_secs,
        })
    }
}

/// Encode a batch of deltas to a standalone payload. Combined with
/// [`crate::message::update_frame`], a fan-out encodes the payload once
/// and stamps each subscriber's id into a cheap per-subscriber copy.
pub fn encode_deltas(deltas: &[RecordDelta]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(128);
    buf.put_u32(deltas.len() as u32);
    for d in deltas {
        d.encode_into(&mut buf);
    }
    buf.to_vec()
}

/// Decode a batch encoded by [`encode_deltas`], consuming from `buf`.
pub(crate) fn decode_deltas(buf: &mut Bytes) -> Result<Vec<RecordDelta>, DeltaError> {
    if buf.remaining() < 4 {
        return Err(err("truncated delta count"));
    }
    let n = buf.get_u32() as usize;
    let mut deltas = Vec::new();
    for _ in 0..n {
        deltas.push(RecordDelta::decode_from(buf)?);
    }
    Ok(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::ldif;

    fn snapshot(vals: &[(&str, &str)]) -> InfoRecord {
        let mut rec = InfoRecord::new("Memory", "node0.grid");
        for (name, value) in vals {
            rec.push(name, value);
        }
        rec
    }

    #[test]
    fn first_delivery_is_a_full_snapshot() {
        let next = snapshot(&[("total", "4096"), ("free", "1024")]);
        let d = RecordDelta::diff(None, &next, 1);
        assert!(d.full);
        assert_eq!(d.changed.len(), 2);
        assert_eq!(d.apply(None).unwrap(), next);
    }

    #[test]
    fn compact_delta_carries_only_changes() {
        let prev = snapshot(&[("total", "4096"), ("free", "1024"), ("cached", "7")]);
        let next = snapshot(&[("total", "4096"), ("free", "512"), ("buffers", "3")]);
        let d = RecordDelta::diff(Some(&prev), &next, 2);
        assert!(!d.full);
        let names: Vec<&str> = d.changed.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["Memory:free", "Memory:buffers"]);
        assert_eq!(d.removed, ["Memory:cached"]);
        assert_eq!(d.apply(Some(&prev)).unwrap(), next);
    }

    #[test]
    fn unchanged_record_yields_empty_delta() {
        let prev = snapshot(&[("total", "4096")]);
        let d = RecordDelta::diff(Some(&prev), &prev, 3);
        assert!(d.is_empty());
        assert_eq!(d.apply(Some(&prev)).unwrap(), prev);
    }

    #[test]
    fn reordered_attributes_degrade_to_snapshot() {
        let prev = snapshot(&[("a", "1"), ("b", "2")]);
        let next = snapshot(&[("b", "2"), ("a", "1")]);
        let d = RecordDelta::diff(Some(&prev), &next, 2);
        assert!(d.full, "a reorder cannot be expressed compactly");
        assert_eq!(d.apply(Some(&prev)).unwrap(), next);
    }

    #[test]
    fn compact_delta_requires_prior_snapshot() {
        let prev = snapshot(&[("total", "4096")]);
        let next = snapshot(&[("total", "2048")]);
        let d = RecordDelta::diff(Some(&prev), &next, 2);
        assert!(d.apply(None).is_err());
        assert!(d
            .apply(Some(&InfoRecord::new("CPU", "node0.grid")))
            .is_err());
    }

    #[test]
    fn degraded_annotations_survive_diff_apply() {
        let prev = snapshot(&[("total", "4096")]);
        let mut next = snapshot(&[("total", "4096")]);
        next.degraded = true;
        next.stale_age_secs = Some(12.5);
        next.attributes[0].quality = Some(0.25);
        next.attributes[0].age_secs = Some(12.5);
        let d = RecordDelta::diff(Some(&prev), &next, 2);
        assert!(d.degraded);
        assert_eq!(d.stale_age_secs, Some(12.5));
        assert_eq!(d.apply(Some(&prev)).unwrap(), next);
    }

    #[test]
    fn binary_roundtrip() {
        let prev = snapshot(&[("total", "4096"), ("free", "1024")]);
        let mut next = snapshot(&[("total", "4096"), ("free", "99")]);
        next.degraded = true;
        next.stale_age_secs = Some(0.75);
        let deltas = vec![
            RecordDelta::diff(None, &prev, 1),
            RecordDelta::diff(Some(&prev), &next, 2),
        ];
        let bytes = encode_deltas(&deltas);
        let mut buf = Bytes::copy_from_slice(&bytes);
        let decoded = decode_deltas(&mut buf).unwrap();
        assert!(!buf.has_remaining());
        assert_eq!(decoded, deltas);
    }

    #[test]
    fn binary_rejects_truncations() {
        let mut next = snapshot(&[("total", "4096")]);
        next.attributes[0].quality = Some(0.5);
        let bytes = encode_deltas(&[RecordDelta::diff(None, &next, 1)]);
        for cut in 0..bytes.len() {
            let mut buf = Bytes::copy_from_slice(&bytes[..cut]);
            assert!(
                decode_deltas(&mut buf).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn renderer_roundtrip_preserves_delta_and_annotations() {
        let prev = snapshot(&[("total", "4096"), ("free", "1024"), ("cached", "7")]);
        let mut next = snapshot(&[("total", "4096"), ("free", "512")]);
        next.degraded = true;
        next.stale_age_secs = Some(3.25);
        let d = RecordDelta::diff(Some(&prev), &next, 5);
        let text = ldif::render(&[d.to_record()]);
        assert!(text.contains("infogram-degraded: TRUE"));
        assert!(text.contains("infogram-delta-version: 5"));
        let parsed = ldif::parse(&text);
        assert_eq!(parsed.len(), 1);
        let back = RecordDelta::from_record(&parsed[0]).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.apply(Some(&prev)).unwrap(), next);
    }
}
