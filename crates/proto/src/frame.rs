//! Length-prefixed framing.
//!
//! Every protocol message travels as a 4-byte big-endian length followed
//! by the payload. Used directly by the TCP transport; the in-memory
//! transport passes whole messages and only charges the frame overhead to
//! its byte accounting.

use std::io::{Read, Write};

/// Upper bound on a frame payload (16 MiB) — a malformed or hostile
/// length prefix must not drive an allocation.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Bytes of framing overhead per message.
pub const FRAME_OVERHEAD: usize = 4;

/// A framing failure.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failed.
    Io(std::io::Error),
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. [`FrameError::Closed`] means the peer hung up cleanly
/// before a new frame began.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes of a new frame) from truncation.
    match r.read(&mut len_buf)? {
        0 => return Err(FrameError::Closed),
        mut n => {
            while n < 4 {
                let more = r.read(&mut len_buf[n..])?;
                if more == 0 {
                    return Err(FrameError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "truncated frame header",
                    )));
                }
                n += more;
            }
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xffu8; 100]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xffu8; 100]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversize_write_rejected() {
        let mut buf = Vec::new();
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            write_frame(&mut buf, &huge),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut r = Cursor::new(u32::MAX.to_be_bytes().to_vec());
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn truncated_header_is_io_error() {
        let mut r = Cursor::new(vec![0u8, 0u8]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }
}
