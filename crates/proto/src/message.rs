//! Protocol messages and their binary encoding.
//!
//! The vocabulary is GRAMP-shaped (§2 of the paper): submit / status /
//! cancel / callback registration, plus asynchronous status events. The
//! unification trick of InfoGram is that *information queries are ordinary
//! submits* — the RSL inside carries `(info=...)` instead of
//! `(executable=...)`, and the reply is an [`Reply::InfoResult`] instead
//! of a job handle. One protocol, two behaviours.

use crate::handle::JobHandle;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol version carried in every request.
pub const PROTOCOL_VERSION: u8 = 2;

/// GRAM-flavoured error codes.
pub mod codes {
    /// Malformed request or RSL.
    pub const BAD_RSL: u32 = 1;
    /// Authentication failed.
    pub const AUTHENTICATION: u32 = 7;
    /// Authorization (gridmap / contract) denied.
    pub const AUTHORIZATION: u32 = 8;
    /// No such job.
    pub const NO_SUCH_JOB: u32 = 12;
    /// Unknown information keyword.
    pub const NO_SUCH_KEYWORD: u32 = 31;
    /// The request combined job and info halves.
    pub const AMBIGUOUS_REQUEST: u32 = 33;
    /// Executable not found / backend failure.
    pub const EXECUTION_FAILED: u32 = 17;
    /// The job hit its `(timeout=...)` with `(action=exception)`.
    pub const TIMEOUT_EXCEPTION: u32 = 24;
    /// Internal service error.
    pub const INTERNAL: u32 = 99;
    /// The service does not serve this request type (e.g. info query to a
    /// plain GRAM).
    pub const UNSUPPORTED: u32 = 40;
    /// The service cannot serve the request right now but expects to
    /// recover: a keyword's fault-domain breaker is open with no
    /// last-known-good snapshot, or the job log (WAL) is degraded and the
    /// engine is read-only for submissions. The message carries a
    /// machine-readable `retry-after-ms=<n>` hint telling the client when
    /// the supervisor will admit another provider execution / when the
    /// WAL will probe its sink again.
    pub const UNAVAILABLE: u32 = 35;
    /// A push subscriber fell too far behind: its bounded outbox
    /// overflowed and the service evicted the subscription rather than
    /// buffer without bound. Carried in the final [`super::Reply::SubEnd`]
    /// frame of the evicted subscription.
    pub const SLOW_CONSUMER: u32 = 36;

    /// Every assigned error code with its name — the single place a new
    /// code must be added. `tests::wire_tags_are_unique` fails if a
    /// future change reuses a number or forgets to list one here.
    pub const CATALOG: &[(u32, &str)] = &[
        (BAD_RSL, "BAD_RSL"),
        (AUTHENTICATION, "AUTHENTICATION"),
        (AUTHORIZATION, "AUTHORIZATION"),
        (NO_SUCH_JOB, "NO_SUCH_JOB"),
        (NO_SUCH_KEYWORD, "NO_SUCH_KEYWORD"),
        (AMBIGUOUS_REQUEST, "AMBIGUOUS_REQUEST"),
        (EXECUTION_FAILED, "EXECUTION_FAILED"),
        (TIMEOUT_EXCEPTION, "TIMEOUT_EXCEPTION"),
        (INTERNAL, "INTERNAL"),
        (UNSUPPORTED, "UNSUPPORTED"),
        (UNAVAILABLE, "UNAVAILABLE"),
        (SLOW_CONSUMER, "SLOW_CONSUMER"),
    ];
}

/// Canonical wire-tag catalog: the byte after the protocol version that
/// selects the message variant. The `encode`/`decode` arms below are
/// hand-written against these numbers; `tests::wire_tags_are_unique`
/// and `tests::encoders_agree_with_the_tag_catalog` fail if a future PR
/// reuses a tag, renumbers a variant, or adds one without extending the
/// catalog.
pub mod tags {
    /// [`super::Request`] variant tags.
    pub const REQUEST: &[(u8, &str)] = &[(0, "Submit"), (1, "Status"), (2, "Cancel"), (3, "Ping")];
    /// [`super::Reply`] variant tags.
    pub const REPLY: &[(u8, &str)] = &[
        (0, "JobAccepted"),
        (1, "JobStatus"),
        (2, "InfoResult"),
        (3, "Event"),
        (4, "Error"),
        (5, "Pong"),
        (6, "Subscribed"),
        (7, "Update"),
        (8, "SubEnd"),
    ];
}

/// Client → service messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit an xRSL specification — a job, an info query, or (in a
    /// multi-request) several. `credential` names the authenticated
    /// security context established at connect time.
    Submit {
        /// The xRSL text.
        rsl: String,
        /// Whether the client wants asynchronous [`Reply::Event`]s.
        callback: bool,
    },
    /// Poll a job's status.
    Status {
        /// The job contact handle.
        handle: JobHandle,
    },
    /// Cancel a job.
    Cancel {
        /// The job contact handle.
        handle: JobHandle,
    },
    /// Liveness probe.
    Ping,
}

/// Job lifecycle states on the wire (mirrors GRAM's job states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStateCode {
    /// Accepted, waiting for resources.
    Pending,
    /// Running.
    Active,
    /// Temporarily suspended.
    Suspended,
    /// Finished successfully.
    Done,
    /// Finished unsuccessfully.
    Failed,
    /// Cancelled by request.
    Canceled,
}

impl JobStateCode {
    /// Whether this is a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStateCode::Done | JobStateCode::Failed | JobStateCode::Canceled
        )
    }

    fn to_u8(self) -> u8 {
        match self {
            JobStateCode::Pending => 0,
            JobStateCode::Active => 1,
            JobStateCode::Suspended => 2,
            JobStateCode::Done => 3,
            JobStateCode::Failed => 4,
            JobStateCode::Canceled => 5,
        }
    }

    /// Parse the display name back into a state (`"DONE"` → `Done`).
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "PENDING" => JobStateCode::Pending,
            "ACTIVE" => JobStateCode::Active,
            "SUSPENDED" => JobStateCode::Suspended,
            "DONE" => JobStateCode::Done,
            "FAILED" => JobStateCode::Failed,
            "CANCELED" => JobStateCode::Canceled,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => JobStateCode::Pending,
            1 => JobStateCode::Active,
            2 => JobStateCode::Suspended,
            3 => JobStateCode::Done,
            4 => JobStateCode::Failed,
            5 => JobStateCode::Canceled,
            _ => return None,
        })
    }
}

impl std::fmt::Display for JobStateCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobStateCode::Pending => "PENDING",
            JobStateCode::Active => "ACTIVE",
            JobStateCode::Suspended => "SUSPENDED",
            JobStateCode::Done => "DONE",
            JobStateCode::Failed => "FAILED",
            JobStateCode::Canceled => "CANCELED",
        };
        write!(f, "{s}")
    }
}

/// Service → client messages.
///
/// `PartialEq` only (not `Eq`): [`Reply::Update`] carries f64 quality
/// annotations.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A job was accepted; here is its contact handle.
    JobAccepted {
        /// The contact handle (GlobusID).
        handle: JobHandle,
    },
    /// Current job status.
    JobStatus {
        /// Which job.
        handle: JobHandle,
        /// Its state.
        state: JobStateCode,
        /// Exit code, once terminal.
        exit_code: Option<i32>,
        /// Captured stdout, once terminal (truncated server-side).
        output: String,
    },
    /// An information query result: the rendered body.
    InfoResult {
        /// Rendered records (LDIF/XML/plain, per the request's format tag).
        body: String,
        /// Number of records in the body.
        record_count: u32,
    },
    /// Asynchronous job state change (callback delivery).
    Event {
        /// Which job.
        handle: JobHandle,
        /// New state.
        state: JobStateCode,
    },
    /// Something went wrong.
    Error {
        /// A [`codes`] value.
        code: u32,
        /// Human-readable explanation.
        message: String,
    },
    /// Liveness response.
    Pong,
    /// A `(action=subscribe)` submit was accepted: the persistent query
    /// is registered under `id` and will stream [`Reply::Update`]s.
    Subscribed {
        /// Server-assigned subscription id, scoped to the connection's
        /// security context.
        id: u64,
        /// Number of keywords the subscription covers.
        count: u32,
    },
    /// An asynchronous batch of record deltas for subscription `id`.
    Update {
        /// Which subscription this delivery belongs to.
        id: u64,
        /// The incremental updates (per-keyword versioned; see
        /// [`crate::delta::RecordDelta`]).
        deltas: Vec<crate::delta::RecordDelta>,
    },
    /// Subscription `id` ended. `code` 0 is a clean unsubscribe; a
    /// [`codes`] value (notably [`codes::SLOW_CONSUMER`]) explains a
    /// server-initiated eviction.
    SubEnd {
        /// Which subscription ended.
        id: u64,
        /// 0, or a [`codes`] value for an eviction.
        code: u32,
        /// Human-readable explanation.
        message: String,
    },
}

/// A message failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Explanation.
    pub reason: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.reason)
    }
}

impl std::error::Error for WireError {}

fn err(reason: &str) -> WireError {
    WireError {
        reason: reason.to_string(),
    }
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut Bytes) -> Result<String, WireError> {
    if buf.remaining() < 4 {
        return Err(err("truncated string length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(err("truncated string body"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| err("invalid utf-8"))
}

fn put_handle(buf: &mut BytesMut, h: &JobHandle) {
    put_str(buf, &h.to_string());
}

fn get_handle(buf: &mut Bytes) -> Result<JobHandle, WireError> {
    let s = get_str(buf)?;
    JobHandle::parse(&s).map_err(|e| err(&e.to_string()))
}

impl Request {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(PROTOCOL_VERSION);
        match self {
            Request::Submit { rsl, callback } => {
                buf.put_u8(0);
                put_str(&mut buf, rsl);
                buf.put_u8(u8::from(*callback));
            }
            Request::Status { handle } => {
                buf.put_u8(1);
                put_handle(&mut buf, handle);
            }
            Request::Cancel { handle } => {
                buf.put_u8(2);
                put_handle(&mut buf, handle);
            }
            Request::Ping => buf.put_u8(3),
        }
        buf.to_vec()
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<Request, WireError> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 2 {
            return Err(err("truncated request"));
        }
        let version = buf.get_u8();
        if version != PROTOCOL_VERSION {
            return Err(err(&format!("unsupported protocol version {version}")));
        }
        let tag = buf.get_u8();
        let req = match tag {
            0 => Request::Submit {
                rsl: get_str(&mut buf)?,
                callback: {
                    if buf.remaining() < 1 {
                        return Err(err("truncated callback flag"));
                    }
                    buf.get_u8() != 0
                },
            },
            1 => Request::Status {
                handle: get_handle(&mut buf)?,
            },
            2 => Request::Cancel {
                handle: get_handle(&mut buf)?,
            },
            3 => Request::Ping,
            other => return Err(err(&format!("unknown request tag {other}"))),
        };
        if buf.has_remaining() {
            return Err(err("trailing bytes in request"));
        }
        Ok(req)
    }
}

impl Reply {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(PROTOCOL_VERSION);
        match self {
            Reply::JobAccepted { handle } => {
                buf.put_u8(0);
                put_handle(&mut buf, handle);
            }
            Reply::JobStatus {
                handle,
                state,
                exit_code,
                output,
            } => {
                buf.put_u8(1);
                put_handle(&mut buf, handle);
                buf.put_u8(state.to_u8());
                match exit_code {
                    Some(c) => {
                        buf.put_u8(1);
                        buf.put_i32(*c);
                    }
                    None => buf.put_u8(0),
                }
                put_str(&mut buf, output);
            }
            Reply::InfoResult { body, record_count } => {
                buf.put_u8(2);
                put_str(&mut buf, body);
                buf.put_u32(*record_count);
            }
            Reply::Event { handle, state } => {
                buf.put_u8(3);
                put_handle(&mut buf, handle);
                buf.put_u8(state.to_u8());
            }
            Reply::Error { code, message } => {
                buf.put_u8(4);
                buf.put_u32(*code);
                put_str(&mut buf, message);
            }
            Reply::Pong => buf.put_u8(5),
            Reply::Subscribed { id, count } => {
                buf.put_u8(6);
                buf.put_u64(*id);
                buf.put_u32(*count);
            }
            Reply::Update { id, deltas } => {
                buf.put_u8(7);
                buf.put_u64(*id);
                buf.put_slice(&crate::delta::encode_deltas(deltas));
            }
            Reply::SubEnd { id, code, message } => {
                buf.put_u8(8);
                buf.put_u64(*id);
                buf.put_u32(*code);
                put_str(&mut buf, message);
            }
        }
        buf.to_vec()
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<Reply, WireError> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 2 {
            return Err(err("truncated reply"));
        }
        let version = buf.get_u8();
        if version != PROTOCOL_VERSION {
            return Err(err(&format!("unsupported protocol version {version}")));
        }
        let tag = buf.get_u8();
        let reply = match tag {
            0 => Reply::JobAccepted {
                handle: get_handle(&mut buf)?,
            },
            1 => {
                let handle = get_handle(&mut buf)?;
                if buf.remaining() < 2 {
                    return Err(err("truncated status"));
                }
                let state =
                    JobStateCode::from_u8(buf.get_u8()).ok_or_else(|| err("bad job state"))?;
                let exit_code = match buf.get_u8() {
                    0 => None,
                    1 => {
                        if buf.remaining() < 4 {
                            return Err(err("truncated exit code"));
                        }
                        Some(buf.get_i32())
                    }
                    _ => return Err(err("bad exit-code flag")),
                };
                let output = get_str(&mut buf)?;
                Reply::JobStatus {
                    handle,
                    state,
                    exit_code,
                    output,
                }
            }
            2 => {
                let body = get_str(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(err("truncated record count"));
                }
                Reply::InfoResult {
                    body,
                    record_count: buf.get_u32(),
                }
            }
            3 => {
                let handle = get_handle(&mut buf)?;
                if buf.remaining() < 1 {
                    return Err(err("truncated event"));
                }
                let state =
                    JobStateCode::from_u8(buf.get_u8()).ok_or_else(|| err("bad job state"))?;
                Reply::Event { handle, state }
            }
            4 => {
                if buf.remaining() < 4 {
                    return Err(err("truncated error code"));
                }
                let code = buf.get_u32();
                Reply::Error {
                    code,
                    message: get_str(&mut buf)?,
                }
            }
            5 => Reply::Pong,
            6 => {
                if buf.remaining() < 12 {
                    return Err(err("truncated subscription ack"));
                }
                Reply::Subscribed {
                    id: buf.get_u64(),
                    count: buf.get_u32(),
                }
            }
            7 => {
                if buf.remaining() < 8 {
                    return Err(err("truncated update"));
                }
                let id = buf.get_u64();
                let deltas =
                    crate::delta::decode_deltas(&mut buf).map_err(|e| err(&e.to_string()))?;
                Reply::Update { id, deltas }
            }
            8 => {
                if buf.remaining() < 12 {
                    return Err(err("truncated subscription end"));
                }
                Reply::SubEnd {
                    id: buf.get_u64(),
                    code: buf.get_u32(),
                    message: get_str(&mut buf)?,
                }
            }
            other => return Err(err(&format!("unknown reply tag {other}"))),
        };
        if buf.has_remaining() {
            return Err(err("trailing bytes in reply"));
        }
        Ok(reply)
    }
}

/// Build a `Reply::Update` frame from a pre-encoded delta payload
/// (see [`crate::delta::encode_deltas`]).
///
/// A refresh fan-out delivers the *same* deltas to every subscriber of
/// a keyword, but each frame carries the receiver's own subscription
/// id. Encoding the payload once and stamping the id per subscriber
/// turns the per-subscriber cost into a memcpy — the difference between
/// O(N) and O(N·record-size-diffing) at 100k subscriptions.
pub fn update_frame(id: u64, delta_payload: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(10 + delta_payload.len());
    buf.put_u8(PROTOCOL_VERSION);
    buf.put_u8(7);
    buf.put_u64(id);
    buf.put_slice(delta_payload);
    buf.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle() -> JobHandle {
        JobHandle::new("gk.anl.gov", 2119, 17, 3)
    }

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Submit {
                rsl: "&(executable=/bin/date)(arguments=-u)".to_string(),
                callback: true,
            },
            Request::Submit {
                rsl: "(info=memory)(info=cpu)".to_string(),
                callback: false,
            },
            Request::Status { handle: handle() },
            Request::Cancel { handle: handle() },
            Request::Ping,
        ];
        for r in reqs {
            let decoded = Request::decode(&r.encode()).unwrap();
            assert_eq!(decoded, r);
        }
    }

    #[test]
    fn reply_roundtrips() {
        let replies = [
            Reply::JobAccepted { handle: handle() },
            Reply::JobStatus {
                handle: handle(),
                state: JobStateCode::Active,
                exit_code: None,
                output: String::new(),
            },
            Reply::JobStatus {
                handle: handle(),
                state: JobStateCode::Done,
                exit_code: Some(0),
                output: "value: ok\n".to_string(),
            },
            Reply::InfoResult {
                body: "dn: kw=Memory\nMemory-total: 42\n".to_string(),
                record_count: 1,
            },
            Reply::Event {
                handle: handle(),
                state: JobStateCode::Failed,
            },
            Reply::Error {
                code: codes::AUTHORIZATION,
                message: "no gridmap entry".to_string(),
            },
            Reply::Pong,
            Reply::Subscribed { id: 7, count: 2 },
            Reply::SubEnd {
                id: 7,
                code: codes::SLOW_CONSUMER,
                message: "outbox overflow".to_string(),
            },
        ];
        for r in replies {
            let decoded = Reply::decode(&r.encode()).unwrap();
            assert_eq!(decoded, r);
        }
    }

    #[test]
    fn update_roundtrips() {
        let mut rec = crate::record::InfoRecord::new("Memory", "node0.grid");
        rec.push("total", "4096");
        let delta = crate::delta::RecordDelta::diff(None, &rec, 1);
        let r = Reply::Update {
            id: 42,
            deltas: vec![delta],
        };
        assert_eq!(Reply::decode(&r.encode()).unwrap(), r);
        // An empty batch is legal (version keep-alive).
        let empty = Reply::Update {
            id: 42,
            deltas: vec![],
        };
        assert_eq!(Reply::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn update_frame_matches_reply_encoding() {
        let mut rec = crate::record::InfoRecord::new("CPU", "node0.grid");
        rec.push("count", "8");
        let deltas = vec![crate::delta::RecordDelta::diff(None, &rec, 3)];
        let payload = crate::delta::encode_deltas(&deltas);
        for id in [0u64, 9, u64::MAX] {
            assert_eq!(
                update_frame(id, &payload),
                Reply::Update {
                    id,
                    deltas: deltas.clone()
                }
                .encode(),
                "the fast path and the structured encoder must agree"
            );
        }
    }

    #[test]
    fn rejects_truncated_subscription_frames() {
        let mut rec = crate::record::InfoRecord::new("Memory", "node0.grid");
        rec.push("total", "4096");
        let frames = [
            Reply::Subscribed { id: 1, count: 1 }.encode(),
            Reply::Update {
                id: 1,
                deltas: vec![crate::delta::RecordDelta::diff(None, &rec, 1)],
            }
            .encode(),
            Reply::SubEnd {
                id: 1,
                code: 0,
                message: "done".to_string(),
            }
            .encode(),
        ];
        for full in frames {
            for cut in 1..full.len() {
                assert!(
                    Reply::decode(&full[..cut]).is_err(),
                    "truncation at {cut} accepted"
                );
            }
        }
    }

    #[test]
    fn state_name_roundtrip() {
        for state in [
            JobStateCode::Pending,
            JobStateCode::Active,
            JobStateCode::Suspended,
            JobStateCode::Done,
            JobStateCode::Failed,
            JobStateCode::Canceled,
        ] {
            assert_eq!(JobStateCode::from_name(&state.to_string()), Some(state));
        }
        assert_eq!(JobStateCode::from_name("DANCING"), None);
    }

    #[test]
    fn terminal_states() {
        assert!(JobStateCode::Done.is_terminal());
        assert!(JobStateCode::Failed.is_terminal());
        assert!(JobStateCode::Canceled.is_terminal());
        assert!(!JobStateCode::Pending.is_terminal());
        assert!(!JobStateCode::Active.is_terminal());
        assert!(!JobStateCode::Suspended.is_terminal());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[PROTOCOL_VERSION]).is_err());
        assert!(Request::decode(&[PROTOCOL_VERSION, 99]).is_err());
        assert!(Reply::decode(&[PROTOCOL_VERSION, 99]).is_err());
        // Wrong version.
        assert!(Request::decode(&[PROTOCOL_VERSION + 1, 3]).is_err());
        // Trailing bytes.
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncations() {
        let full = Request::Submit {
            rsl: "(info=all)".to_string(),
            callback: true,
        }
        .encode();
        for cut in 1..full.len() {
            assert!(
                Request::decode(&full[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn unicode_rsl_survives() {
        let r = Request::Submit {
            rsl: "(arguments=\"grüße 世界\")".to_string(),
            callback: false,
        };
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    fn assert_unique<T: Copy + Ord + std::fmt::Debug>(table: &[(T, &str)], what: &str) {
        let mut seen = std::collections::BTreeMap::new();
        for (num, name) in table {
            if let Some(prev) = seen.insert(*num, *name) {
                panic!("{what} {num:?} assigned to both {prev} and {name}");
            }
        }
    }

    #[test]
    fn wire_tags_are_unique() {
        assert_unique(tags::REQUEST, "request tag");
        assert_unique(tags::REPLY, "reply tag");
        assert_unique(codes::CATALOG, "error code");
    }

    /// The catalog is only a guard if the hand-written encoders actually
    /// use its numbers: encode one sample of every variant and check the
    /// tag byte (the byte after the version) against the table.
    #[test]
    fn encoders_agree_with_the_tag_catalog() {
        let handle = JobHandle::parse("x-infogram://host:2119/1/1").unwrap();
        let requests = [
            Request::Submit {
                rsl: "(executable=/bin/true)".into(),
                callback: false,
            },
            Request::Status {
                handle: handle.clone(),
            },
            Request::Cancel {
                handle: handle.clone(),
            },
            Request::Ping,
        ];
        assert_eq!(
            requests.len(),
            tags::REQUEST.len(),
            "a Request variant is missing from tags::REQUEST"
        );
        for req in &requests {
            let name = format!("{req:?}");
            let bytes = req.encode();
            let expect = tags::REQUEST
                .iter()
                .find(|(_, n)| name.starts_with(n))
                .unwrap_or_else(|| panic!("{name} not in tags::REQUEST"));
            assert_eq!(bytes[1], expect.0, "request tag drifted for {name}");
        }
        let replies = [
            Reply::JobAccepted {
                handle: handle.clone(),
            },
            Reply::JobStatus {
                handle: handle.clone(),
                state: JobStateCode::Active,
                exit_code: None,
                output: String::new(),
            },
            Reply::InfoResult {
                body: String::new(),
                record_count: 0,
            },
            Reply::Event {
                handle,
                state: JobStateCode::Done,
            },
            Reply::Error {
                code: codes::INTERNAL,
                message: String::new(),
            },
            Reply::Pong,
            Reply::Subscribed { id: 1, count: 1 },
            Reply::Update {
                id: 1,
                deltas: Vec::new(),
            },
            Reply::SubEnd {
                id: 1,
                code: codes::SLOW_CONSUMER,
                message: String::new(),
            },
        ];
        assert_eq!(
            replies.len(),
            tags::REPLY.len(),
            "a Reply variant is missing from tags::REPLY"
        );
        for reply in &replies {
            let name = format!("{reply:?}");
            let bytes = reply.encode();
            let expect = tags::REPLY
                .iter()
                .find(|(_, n)| name.starts_with(n))
                .unwrap_or_else(|| panic!("{name} not in tags::REPLY"));
            assert_eq!(bytes[1], expect.0, "reply tag drifted for {name}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn decode_never_panics_on_noise(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
            let _ = Request::decode(&bytes);
            let _ = Reply::decode(&bytes);
        }

        #[test]
        fn submit_roundtrip(rsl in "\\PC{0,64}", callback in any::<bool>()) {
            let r = Request::Submit { rsl, callback };
            prop_assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }

        #[test]
        fn error_roundtrip(code in any::<u32>(), message in "\\PC{0,64}") {
            let r = Reply::Error { code, message };
            prop_assert_eq!(Reply::decode(&r.encode()).unwrap(), r);
        }
    }
}
