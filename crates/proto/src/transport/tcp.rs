//! Real TCP transport.
//!
//! Length-prefixed frames over `std::net` sockets. Used by the runnable
//! examples so the services can actually be spoken to from another
//! process; the experiments use the deterministic in-memory network.

use super::{Conn, Listener, ProtoError, Transport};
use crate::frame::{read_frame, write_frame, FRAME_OVERHEAD};
use infogram_sim::metrics::MetricSet;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

/// TCP transport with traffic accounting.
#[derive(Debug, Default)]
pub struct TcpTransport {
    metrics: MetricSet,
}

impl TcpTransport {
    /// A transport counting traffic into a fresh metric set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A transport counting into the given metric set.
    pub fn with_metrics(metrics: MetricSet) -> Self {
        TcpTransport { metrics }
    }

    /// The metric sink.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }
}

impl Transport for TcpTransport {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, ProtoError> {
        let listener = TcpListener::bind(addr).map_err(|e| ProtoError::Io(e.to_string()))?;
        Ok(Box::new(TcpListenerWrapper {
            listener,
            metrics: self.metrics.clone(),
            closed: AtomicBool::new(false),
        }))
    }

    fn connect(&self, addr: &str) -> Result<Box<dyn Conn>, ProtoError> {
        let stream = TcpStream::connect(addr).map_err(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                ProtoError::ConnectionRefused(addr.to_string())
            } else {
                ProtoError::Io(e.to_string())
            }
        })?;
        stream
            .set_nodelay(true)
            .map_err(|e| ProtoError::Io(e.to_string()))?;
        self.metrics.counter("net.connections").incr();
        Ok(Box::new(TcpConn {
            stream,
            metrics: self.metrics.clone(),
            write_lock: parking_lot::Mutex::new(()),
        }))
    }
}

struct TcpListenerWrapper {
    listener: TcpListener,
    metrics: MetricSet,
    closed: AtomicBool,
}

impl Listener for TcpListenerWrapper {
    fn accept(&self) -> Result<Box<dyn Conn>, ProtoError> {
        loop {
            let (stream, _peer) = self
                .listener
                .accept()
                .map_err(|e| ProtoError::Io(e.to_string()))?;
            if self.closed.load(Ordering::SeqCst) {
                return Err(ProtoError::Closed);
            }
            if stream.set_nodelay(true).is_err() {
                continue;
            }
            return Ok(Box::new(TcpConn {
                stream,
                metrics: self.metrics.clone(),
                write_lock: parking_lot::Mutex::new(()),
            }));
        }
    }

    fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".to_string())
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Self-connect to unblock a pending accept.
        if let Ok(addr) = self.listener.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }
}

struct TcpConn {
    stream: TcpStream,
    metrics: MetricSet,
    // Serializes frame writes when two threads share the connection.
    write_lock: parking_lot::Mutex<()>,
}

impl Conn for TcpConn {
    fn send(&self, msg: &[u8]) -> Result<(), ProtoError> {
        let _guard = self.write_lock.lock();
        let mut w = &self.stream;
        write_frame(&mut w, msg)?;
        self.metrics.counter("net.messages").incr();
        self.metrics
            .counter("net.bytes")
            .add((msg.len() + FRAME_OVERHEAD) as u64);
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, ProtoError> {
        let mut r = &self.stream;
        Ok(read_frame(&mut r)?)
    }

    fn peer(&self) -> String {
        self.stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_echo_roundtrip() {
        let transport = TcpTransport::new();
        let listener = transport.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let t = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let msg = conn.recv().unwrap();
            conn.send(&msg).unwrap();
        });
        let client = transport.connect(&addr).unwrap();
        client.send(b"over real tcp").unwrap();
        assert_eq!(client.recv().unwrap(), b"over real tcp");
        t.join().unwrap();
        assert_eq!(transport.metrics().counter_value("net.connections"), 1);
        assert!(transport.metrics().counter_value("net.bytes") > 0);
    }

    #[test]
    fn tcp_connect_refused() {
        let transport = TcpTransport::new();
        // Port 1 is essentially never listening.
        let res = transport.connect("127.0.0.1:1");
        assert!(res.is_err());
    }

    #[test]
    fn tcp_close_unblocks_accept() {
        let transport = TcpTransport::new();
        let listener = std::sync::Arc::new(transport.listen("127.0.0.1:0").unwrap());
        let l2 = std::sync::Arc::clone(&listener);
        let t = std::thread::spawn(move || l2.accept());
        std::thread::sleep(std::time::Duration::from_millis(20));
        listener.close();
        assert!(matches!(t.join().unwrap(), Err(ProtoError::Closed)));
    }

    #[test]
    fn tcp_recv_after_close() {
        let transport = TcpTransport::new();
        let listener = transport.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let t = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            drop(conn);
        });
        let client = transport.connect(&addr).unwrap();
        t.join().unwrap();
        assert!(client.recv().is_err());
    }
}
