//! In-memory channel transport with a simulated link.
//!
//! A [`MemNetwork`] is a private universe of named endpoints. Connections
//! are pairs of crossbeam channels; every message is charged a delay (and
//! possibly dropped) by the network's [`Link`] model, and all traffic is
//! counted into a [`MetricSet`] under `net.connections`, `net.messages`,
//! and `net.bytes`.

use super::{Conn, Listener, ProtoError, Transport};
use crate::frame::FRAME_OVERHEAD;
use crossbeam::channel::{unbounded, Receiver, Sender};
use infogram_sim::clock::SharedClock;
use infogram_sim::metrics::MetricSet;
use infogram_sim::net::{Delivery, Link};
use infogram_sim::{SimTime, SystemClock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

enum AcceptMsg {
    Conn(MemConn),
    Shutdown,
}

struct NetworkState {
    endpoints: HashMap<String, Sender<AcceptMsg>>,
}

/// An in-process network.
pub struct MemNetwork {
    clock: SharedClock,
    link: Arc<Link>,
    metrics: MetricSet,
    state: Mutex<NetworkState>,
    next_port: AtomicU16,
}

impl std::fmt::Debug for MemNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemNetwork").finish_non_exhaustive()
    }
}

impl MemNetwork {
    /// An ideal (zero-latency, lossless) network on a fresh system clock.
    pub fn ideal() -> Arc<Self> {
        Self::new(SystemClock::shared(), Link::ideal(), MetricSet::new())
    }

    /// A network with the given clock, link model, and metric sink.
    pub fn new(clock: SharedClock, link: Link, metrics: MetricSet) -> Arc<Self> {
        Arc::new(MemNetwork {
            clock,
            link: Arc::new(link),
            metrics,
            state: Mutex::new(NetworkState {
                endpoints: HashMap::new(),
            }),
            next_port: AtomicU16::new(40_000),
        })
    }

    /// The metric sink traffic is counted into.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// The link model.
    pub fn link(&self) -> &Arc<Link> {
        &self.link
    }
}

impl Transport for Arc<MemNetwork> {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, ProtoError> {
        let addr = if let Some(host) = addr.strip_suffix(":0") {
            format!("{host}:{}", self.next_port.fetch_add(1, Ordering::Relaxed))
        } else {
            addr.to_string()
        };
        let (tx, rx) = unbounded();
        {
            let mut st = self.state.lock();
            if st.endpoints.contains_key(&addr) {
                return Err(ProtoError::BadAddress(format!("{addr} already bound")));
            }
            st.endpoints.insert(addr.clone(), tx.clone());
        }
        Ok(Box::new(MemListener {
            network: Arc::clone(self),
            addr,
            rx,
            tx,
        }))
    }

    fn connect(&self, addr: &str) -> Result<Box<dyn Conn>, ProtoError> {
        let acceptor = {
            let st = self.state.lock();
            st.endpoints
                .get(addr)
                .cloned()
                .ok_or_else(|| ProtoError::ConnectionRefused(addr.to_string()))?
        };
        let (c2s_tx, c2s_rx) = unbounded();
        let (s2c_tx, s2c_rx) = unbounded();
        let client = MemConn {
            clock: self.clock.clone(),
            link: Arc::clone(&self.link),
            metrics: self.metrics.clone(),
            tx: c2s_tx,
            rx: s2c_rx,
            peer: addr.to_string(),
        };
        let server = MemConn {
            clock: self.clock.clone(),
            link: Arc::clone(&self.link),
            metrics: self.metrics.clone(),
            tx: s2c_tx,
            rx: c2s_rx,
            peer: "client".to_string(),
        };
        acceptor
            .send(AcceptMsg::Conn(server))
            .map_err(|_| ProtoError::ConnectionRefused(addr.to_string()))?;
        self.metrics.counter("net.connections").incr();
        Ok(Box::new(client))
    }
}

struct MemListener {
    network: Arc<MemNetwork>,
    addr: String,
    rx: Receiver<AcceptMsg>,
    tx: Sender<AcceptMsg>,
}

impl Listener for MemListener {
    fn accept(&self) -> Result<Box<dyn Conn>, ProtoError> {
        match self.rx.recv() {
            Ok(AcceptMsg::Conn(conn)) => Ok(Box::new(conn)),
            Ok(AcceptMsg::Shutdown) | Err(_) => Err(ProtoError::Closed),
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }

    fn close(&self) {
        // Unregister so new connects are refused, then unblock accept.
        self.network.state.lock().endpoints.remove(&self.addr);
        let _ = self.tx.send(AcceptMsg::Shutdown);
    }
}

impl Drop for MemListener {
    fn drop(&mut self) {
        self.close();
    }
}

struct MemConn {
    clock: SharedClock,
    link: Arc<Link>,
    metrics: MetricSet,
    tx: Sender<(SimTime, Vec<u8>)>,
    rx: Receiver<(SimTime, Vec<u8>)>,
    peer: String,
}

impl Conn for MemConn {
    fn send(&self, msg: &[u8]) -> Result<(), ProtoError> {
        match self.link.transmit(msg.len() + FRAME_OVERHEAD) {
            Delivery::After(delay) => {
                let deliver_at = self.clock.now().plus(delay);
                self.metrics.counter("net.messages").incr();
                self.metrics
                    .counter("net.bytes")
                    .add((msg.len() + FRAME_OVERHEAD) as u64);
                self.tx
                    .send((deliver_at, msg.to_vec()))
                    .map_err(|_| ProtoError::Closed)
            }
            // Loss on a reliable-channel model: the message vanishes, as
            // UDP-style loss would. Request/reply protocols running over a
            // lossy link must apply their own timeouts.
            Delivery::Dropped => Ok(()),
        }
    }

    fn recv(&self) -> Result<Vec<u8>, ProtoError> {
        let (deliver_at, msg) = self.rx.recv().map_err(|_| ProtoError::Closed)?;
        let now = self.clock.now();
        if deliver_at > now {
            self.clock.sleep(deliver_at.since(now));
        }
        Ok(msg)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn connect_send_recv() {
        let net = MemNetwork::ideal();
        let listener = net.listen("svc.grid:0").unwrap();
        let addr = listener.local_addr();
        let net2 = Arc::clone(&net);
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let msg = conn.recv().unwrap();
            conn.send(&[msg.as_slice(), b" back"].concat()).unwrap();
        });
        let client = net2.connect(&addr).unwrap();
        client.send(b"hello").unwrap();
        assert_eq!(client.recv().unwrap(), b"hello back");
        server.join().unwrap();
    }

    #[test]
    fn connect_refused_for_unknown_endpoint() {
        let net = MemNetwork::ideal();
        assert!(matches!(
            net.connect("nobody:1"),
            Err(ProtoError::ConnectionRefused(_))
        ));
    }

    #[test]
    fn port_zero_assigns_unique_ports() {
        let net = MemNetwork::ideal();
        let a = net.listen("h:0").unwrap();
        let b = net.listen("h:0").unwrap();
        assert_ne!(a.local_addr(), b.local_addr());
    }

    #[test]
    fn double_bind_rejected() {
        let net = MemNetwork::ideal();
        let _a = net.listen("svc:7").unwrap();
        assert!(matches!(
            net.listen("svc:7"),
            Err(ProtoError::BadAddress(_))
        ));
    }

    #[test]
    fn close_unblocks_accept_and_refuses_connects() {
        let net = MemNetwork::ideal();
        let listener = Arc::new(net.listen("svc:0").unwrap());
        let addr = listener.local_addr();
        let l2 = Arc::clone(&listener);
        let t = std::thread::spawn(move || l2.accept());
        std::thread::sleep(Duration::from_millis(10));
        listener.close();
        assert!(matches!(t.join().unwrap(), Err(ProtoError::Closed)));
        assert!(matches!(
            net.connect(&addr),
            Err(ProtoError::ConnectionRefused(_))
        ));
    }

    #[test]
    fn traffic_is_metered() {
        let net = MemNetwork::ideal();
        let listener = net.listen("svc:0").unwrap();
        let addr = listener.local_addr();
        let t = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            let _ = c.recv();
        });
        let client = net.connect(&addr).unwrap();
        client.send(&[0u8; 96]).unwrap();
        t.join().unwrap();
        assert_eq!(net.metrics().counter_value("net.connections"), 1);
        assert_eq!(net.metrics().counter_value("net.messages"), 1);
        assert_eq!(
            net.metrics().counter_value("net.bytes"),
            (96 + FRAME_OVERHEAD) as u64
        );
    }

    #[test]
    fn latency_is_charged() {
        let metrics = MetricSet::new();
        let net = MemNetwork::new(
            SystemClock::shared(),
            Link::new(
                infogram_sim::net::LatencyModel::Fixed(Duration::from_millis(20)),
                0.0,
                1,
            ),
            metrics,
        );
        let listener = net.listen("svc:0").unwrap();
        let addr = listener.local_addr();
        let t = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            c.recv().unwrap();
        });
        let client = net.connect(&addr).unwrap();
        let start = std::time::Instant::now();
        client.send(b"delayed").unwrap();
        t.join().unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(18),
            "recv returned before the link delay: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn recv_after_peer_drop_errors() {
        let net = MemNetwork::ideal();
        let listener = net.listen("svc:0").unwrap();
        let addr = listener.local_addr();
        let t = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            drop(conn);
        });
        let client = net.connect(&addr).unwrap();
        t.join().unwrap();
        assert!(matches!(client.recv(), Err(ProtoError::Closed)));
    }
}
