//! LDIF rendering — the MDS-compatible output format.
//!
//! Each information record becomes one LDIF entry whose DN mirrors the
//! MDS 2.0 convention (`kw=<Keyword>, hn=<host>, o=Grid`). Because LDIF
//! attribute names cannot contain `:`, the namespace separator of
//! `Memory:total` is rendered as `Memory-total` and restored on parse
//! (the keyword is known from the DN). Values that LDIF cannot carry
//! verbatim (leading space/colon/'<', embedded newlines, non-ASCII) are
//! base64-encoded with the `attr::` form. Quality and age annotations are
//! emitted as `;quality` / `;age` companion options.

use super::base64;
use crate::record::{Attribute, InfoRecord};

/// Whether an LDIF value must be base64-encoded.
fn needs_base64(v: &str) -> bool {
    v.starts_with(' ')
        || v.starts_with(':')
        || v.starts_with('<')
        || v.ends_with(' ')
        || v.bytes()
            .any(|b| b == b'\n' || b == b'\r' || b == 0 || b > 126)
}

fn push_attr(out: &mut String, name: &str, value: &str) {
    if needs_base64(value) {
        out.push_str(name);
        out.push_str(":: ");
        out.push_str(&base64::encode(value.as_bytes()));
    } else {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
    }
    out.push('\n');
}

/// `Memory:total` → `Memory-total` (LDIF-safe).
fn ldif_name(name: &str) -> String {
    name.replacen(':', "-", 1)
}

/// `Memory-total` → `Memory:total`, given the record's keyword.
fn restore_name(name: &str, keyword: &str) -> String {
    match name.strip_prefix(&format!("{keyword}-")) {
        Some(rest) => format!("{keyword}:{rest}"),
        None => name.to_string(),
    }
}

/// Render records as LDIF entries separated by blank lines.
pub fn render(records: &[InfoRecord]) -> String {
    let mut out = String::new();
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        push_attr(
            &mut out,
            "dn",
            &format!("kw={}, hn={}, o=Grid", rec.keyword, rec.host),
        );
        push_attr(&mut out, "objectclass", "InfoGramProvider");
        if rec.degraded {
            // Fault-domain annotation (§ fault supervisor): the record is
            // a last-known-good stale serve, with its true age.
            push_attr(&mut out, "infogram-degraded", "TRUE");
            if let Some(age) = rec.stale_age_secs {
                push_attr(&mut out, "infogram-stale-age", &format!("{age:.3}"));
            }
        }
        for a in &rec.attributes {
            let name = ldif_name(&a.name);
            push_attr(&mut out, &name, &a.value);
            if let Some(q) = a.quality {
                push_attr(&mut out, &format!("{name};quality"), &format!("{q:.4}"));
            }
            if let Some(age) = a.age_secs {
                push_attr(&mut out, &format!("{name};age"), &format!("{age:.3}"));
            }
        }
    }
    out
}

/// Parse LDIF produced by [`render`] back into records (tests and the
/// MDS-equivalence experiment E12 use this).
pub fn parse(text: &str) -> Vec<InfoRecord> {
    let mut records = Vec::new();
    let mut current: Option<InfoRecord> = None;
    for line in text.lines() {
        if line.is_empty() {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            continue;
        }
        let Some((raw_name, rest)) = line.split_once(':') else {
            continue;
        };
        let value = if let Some(b64) = rest.strip_prefix(": ") {
            String::from_utf8(base64::decode(b64).unwrap_or_default()).unwrap_or_default()
        } else {
            rest.strip_prefix(' ').unwrap_or(rest).to_string()
        };
        if raw_name == "dn" {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            let mut keyword = String::new();
            let mut host = String::new();
            for part in value.split(',') {
                let part = part.trim();
                if let Some(k) = part.strip_prefix("kw=") {
                    keyword = k.to_string();
                } else if let Some(h) = part.strip_prefix("hn=") {
                    host = h.to_string();
                }
            }
            current = Some(InfoRecord::new(&keyword, &host));
        } else if raw_name == "objectclass" {
            continue;
        } else if raw_name == "infogram-degraded" {
            if let Some(rec) = current.as_mut() {
                rec.degraded = value == "TRUE";
            }
        } else if raw_name == "infogram-stale-age" {
            if let Some(rec) = current.as_mut() {
                rec.stale_age_secs = value.parse().ok();
            }
        } else if let Some(rec) = current.as_mut() {
            let keyword = rec.keyword.clone();
            if let Some(base) = raw_name.strip_suffix(";quality") {
                let name = restore_name(base, &keyword);
                if let Some(a) = rec.attributes.iter_mut().rev().find(|a| a.name == name) {
                    a.quality = value.parse().ok();
                }
            } else if let Some(base) = raw_name.strip_suffix(";age") {
                let name = restore_name(base, &keyword);
                if let Some(a) = rec.attributes.iter_mut().rev().find(|a| a.name == name) {
                    a.age_secs = value.parse().ok();
                }
            } else {
                rec.attributes
                    .push(Attribute::new(&restore_name(raw_name, &keyword), &value));
            }
        }
    }
    if let Some(rec) = current.take() {
        records.push(rec);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<InfoRecord> {
        let mut m = InfoRecord::new("Memory", "node0.grid");
        m.push("total", "4294967296");
        m.push("free", "1073741824").quality = Some(0.9);
        let mut d = InfoRecord::new("Date", "node0.grid");
        d.push("value", "2002-07-24 00:00:00 UTC").age_secs = Some(1.5);
        vec![m, d]
    }

    #[test]
    fn render_shape() {
        let out = render(&sample());
        assert!(out.contains("dn: kw=Memory, hn=node0.grid, o=Grid"));
        assert!(out.contains("objectclass: InfoGramProvider"));
        assert!(out.contains("Memory-total: 4294967296"));
        assert!(out.contains("Memory-free;quality: 0.9000"));
        assert!(out.contains("Date-value;age: 1.500"));
        // Two entries, one separator blank line.
        assert_eq!(out.matches("\n\n").count(), 1);
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let parsed = parse(&render(&records));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].keyword, "Memory");
        assert_eq!(parsed[0].host, "node0.grid");
        assert_eq!(parsed[0].get("total").unwrap().value, "4294967296");
        assert_eq!(parsed[0].get("free").unwrap().quality, Some(0.9));
        assert_eq!(parsed[1].get("value").unwrap().age_secs, Some(1.5));
        // Namespaces restored exactly.
        assert_eq!(parsed[0].attributes[0].name, "Memory:total");
    }

    #[test]
    fn degraded_annotation_roundtrips() {
        let mut r = InfoRecord::new("CPULoad", "node0.grid");
        r.push("load", "0.93");
        r.degraded = true;
        r.stale_age_secs = Some(31.25);
        let out = render(&[r]);
        assert!(out.contains("infogram-degraded: TRUE"));
        assert!(out.contains("infogram-stale-age: 31.250"));
        let parsed = parse(&out);
        assert!(parsed[0].degraded);
        assert_eq!(parsed[0].stale_age_secs, Some(31.25));
        // Fresh records carry no annotation at all.
        let fresh = render(&[InfoRecord::new("CPU", "n")]);
        assert!(!fresh.contains("infogram-degraded"));
        assert!(!parse(&fresh)[0].degraded);
    }

    #[test]
    fn base64_for_unsafe_values() {
        let mut r = InfoRecord::new("Odd", "h");
        r.push("multiline", "line1\nline2");
        r.push("leading", " space");
        r.push("unicode", "grüße");
        let out = render(&[r]);
        assert!(out.contains("Odd-multiline:: "));
        assert!(out.contains("Odd-leading:: "));
        assert!(out.contains("Odd-unicode:: "));
        let parsed = parse(&out);
        assert_eq!(parsed[0].get("multiline").unwrap().value, "line1\nline2");
        assert_eq!(parsed[0].get("leading").unwrap().value, " space");
        assert_eq!(parsed[0].get("unicode").unwrap().value, "grüße");
    }

    #[test]
    fn value_containing_colons_survives() {
        let mut r = InfoRecord::new("K", "h");
        r.push("url", "ldap://host:389/o=Grid");
        let parsed = parse(&render(&[r]));
        assert_eq!(
            parsed[0].get("url").unwrap().value,
            "ldap://host:389/o=Grid"
        );
    }

    #[test]
    fn empty_records() {
        assert_eq!(render(&[]), "");
        assert!(parse("").is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ldif_roundtrip_arbitrary_values(
            keyword in "[A-Za-z][A-Za-z0-9]{0,8}",
            values in prop::collection::vec("\\PC{0,24}", 1..6),
        ) {
            let mut rec = InfoRecord::new(&keyword, "host.grid");
            for (i, v) in values.iter().enumerate() {
                rec.push(&format!("attr{i}"), v);
            }
            let parsed = parse(&render(&[rec.clone()]));
            prop_assert_eq!(parsed.len(), 1);
            for (i, v) in values.iter().enumerate() {
                let got = parsed[0].get(&format!("attr{i}")).expect("attr present");
                prop_assert_eq!(&got.value, v);
            }
        }
    }
}
