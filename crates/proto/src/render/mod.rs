//! Output renderers for information records.
//!
//! §6.6: "The format tag defines the format in which the information is
//! returned. The supported formats are LDIF and XML." We add a plain
//! `key: value` format for debugging. Each renderer is paired with enough
//! of a parser to round-trip its own output in tests.

pub mod base64;
pub mod dsml;
pub mod ldif;
pub mod plain;
pub mod xml;

use crate::record::InfoRecord;
use infogram_rsl::OutputFormat;

/// Render records in the requested format.
pub fn render(records: &[InfoRecord], format: OutputFormat) -> String {
    match format {
        OutputFormat::Ldif => ldif::render(records),
        OutputFormat::Xml => xml::render(records),
        OutputFormat::Dsml => dsml::render(records),
        OutputFormat::Plain => plain::render(records),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InfoRecord;

    fn sample() -> Vec<InfoRecord> {
        let mut m = InfoRecord::new("Memory", "node0.grid");
        m.push("total", "4294967296");
        m.push("free", "123456789");
        let mut c = InfoRecord::new("CPULoad", "node0.grid");
        c.push("load", "0.93").quality = Some(0.75);
        vec![m, c]
    }

    #[test]
    fn dispatcher_selects_format() {
        let records = sample();
        let ldif = render(&records, OutputFormat::Ldif);
        assert!(ldif.contains("dn:"));
        let xml = render(&records, OutputFormat::Xml);
        assert!(xml.starts_with("<infogram>"));
        let dsml = render(&records, OutputFormat::Dsml);
        assert!(dsml.starts_with("<dsml>"));
        let plain = render(&records, OutputFormat::Plain);
        assert!(plain.contains("Memory:total: 4294967296"));
    }

    #[test]
    fn all_formats_carry_all_attributes() {
        let records = sample();
        for fmt in [
            OutputFormat::Ldif,
            OutputFormat::Xml,
            OutputFormat::Dsml,
            OutputFormat::Plain,
        ] {
            let out = render(&records, fmt);
            assert!(out.contains("4294967296"), "{fmt}: missing value");
            assert!(out.contains("0.93"), "{fmt}: missing load");
        }
    }
}
