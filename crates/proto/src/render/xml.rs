//! XML rendering.
//!
//! "Our positive experience with the use of XML schemas as basis for the
//! next generation of Information services makes us believe that it
//! provides a viable alternative to the currently used LDAP schemas"
//! (§5.5). Records render as:
//!
//! ```xml
//! <infogram>
//!   <provider keyword="Memory" host="node0.grid">
//!     <attribute name="Memory:total">4294967296</attribute>
//!     <attribute name="CPULoad:load" quality="0.7500" age="3.000">0.93</attribute>
//!   </provider>
//! </infogram>
//! ```

use crate::record::{Attribute, InfoRecord};

/// Escape a string for use in XML text content or attribute values.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverse [`escape`].
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let mapped = [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ]
        .iter()
        .find_map(|(ent, ch)| rest.strip_prefix(ent).map(|r| (r, *ch)));
        match mapped {
            Some((r, ch)) => {
                out.push(ch);
                rest = r;
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// Render records as an `<infogram>` document.
pub fn render(records: &[InfoRecord]) -> String {
    let mut out = String::from("<infogram>\n");
    for rec in records {
        out.push_str(&format!(
            "  <provider keyword=\"{}\" host=\"{}\"",
            escape(&rec.keyword),
            escape(&rec.host)
        ));
        if rec.degraded {
            // Fault-domain annotation: last-known-good stale serve.
            out.push_str(" degraded=\"true\"");
            if let Some(age) = rec.stale_age_secs {
                out.push_str(&format!(" stale-age=\"{age:.3}\""));
            }
        }
        out.push_str(">\n");
        for a in &rec.attributes {
            out.push_str(&format!("    <attribute name=\"{}\"", escape(&a.name)));
            if let Some(q) = a.quality {
                out.push_str(&format!(" quality=\"{q:.4}\""));
            }
            if let Some(age) = a.age_secs {
                out.push_str(&format!(" age=\"{age:.3}\""));
            }
            out.push_str(&format!(">{}</attribute>\n", escape(&a.value)));
        }
        out.push_str("  </provider>\n");
    }
    out.push_str("</infogram>\n");
    out
}

/// Parse documents produced by [`render`]. This is a purpose-built
/// scanner, not a general XML parser; it understands exactly the shape
/// `render` emits (used by tests and the format-equivalence experiment).
pub fn parse(text: &str) -> Vec<InfoRecord> {
    let mut records = Vec::new();
    let mut current: Option<InfoRecord> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("<provider ") {
            let keyword = attr_of(rest, "keyword").unwrap_or_default();
            let host = attr_of(rest, "host").unwrap_or_default();
            let mut rec = InfoRecord::new(&keyword, &host);
            rec.degraded = attr_of(rest, "degraded").as_deref() == Some("true");
            rec.stale_age_secs = attr_of(rest, "stale-age").and_then(|a| a.parse().ok());
            current = Some(rec);
        } else if line == "</provider>" {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
        } else if let Some(rest) = line.strip_prefix("<attribute ") {
            let Some(rec) = current.as_mut() else {
                continue;
            };
            let name = attr_of(rest, "name").unwrap_or_default();
            let quality = attr_of(rest, "quality").and_then(|q| q.parse().ok());
            let age_secs = attr_of(rest, "age").and_then(|a| a.parse().ok());
            let value = rest
                .split_once('>')
                .and_then(|(_, r)| r.rsplit_once("</attribute>"))
                .map(|(v, _)| unescape(v))
                .unwrap_or_default();
            rec.attributes.push(Attribute {
                name,
                value,
                quality,
                age_secs,
            });
        }
    }
    records
}

/// Extract `name="value"` from a tag fragment.
fn attr_of(fragment: &str, name: &str) -> Option<String> {
    let marker = format!("{name}=\"");
    let start = fragment.find(&marker)? + marker.len();
    let end = fragment[start..].find('"')? + start;
    Some(unescape(&fragment[start..end]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<InfoRecord> {
        let mut m = InfoRecord::new("Memory", "node0.grid");
        m.push("total", "4294967296");
        let mut c = InfoRecord::new("CPULoad", "node0.grid");
        c.push("load", "0.93").quality = Some(0.75);
        c.push("load5", "0.90").age_secs = Some(3.0);
        vec![m, c]
    }

    #[test]
    fn render_shape() {
        let out = render(&sample());
        assert!(out.starts_with("<infogram>"));
        assert!(out.trim_end().ends_with("</infogram>"));
        assert!(out.contains("<provider keyword=\"Memory\" host=\"node0.grid\">"));
        assert!(out.contains("<attribute name=\"Memory:total\">4294967296</attribute>"));
        assert!(out.contains("quality=\"0.7500\""));
        assert!(out.contains("age=\"3.000\""));
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let parsed = parse(&render(&records));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].get("total").unwrap().value, "4294967296");
        assert_eq!(parsed[1].get("load").unwrap().quality, Some(0.75));
        assert_eq!(parsed[1].get("load5").unwrap().age_secs, Some(3.0));
    }

    #[test]
    fn degraded_annotation_roundtrips() {
        let mut r = InfoRecord::new("Memory", "node0.grid");
        r.push("total", "4096");
        r.degraded = true;
        r.stale_age_secs = Some(12.5);
        let out = render(&[r]);
        assert!(out.contains("degraded=\"true\""));
        assert!(out.contains("stale-age=\"12.500\""));
        let parsed = parse(&out);
        assert!(parsed[0].degraded);
        assert_eq!(parsed[0].stale_age_secs, Some(12.5));
        let fresh = render(&[InfoRecord::new("CPU", "n")]);
        assert!(!parse(&fresh)[0].degraded);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
        assert_eq!(unescape("a&lt;b&amp;c&gt;&quot;d&apos;"), "a<b&c>\"d'");
        // Lone ampersand survives unescape.
        assert_eq!(unescape("a&b"), "a&b");
    }

    #[test]
    fn hostile_values_roundtrip() {
        let mut r = InfoRecord::new("X", "h<>&");
        r.push("attr", "<script>&\"quotes\"'</script>");
        let parsed = parse(&render(&[r]));
        assert_eq!(parsed[0].host, "h<>&");
        assert_eq!(
            parsed[0].get("attr").unwrap().value,
            "<script>&\"quotes\"'</script>"
        );
    }

    #[test]
    fn empty_document() {
        let out = render(&[]);
        assert_eq!(out, "<infogram>\n</infogram>\n");
        assert!(parse(&out).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn escape_unescape_roundtrip(s in "\\PC{0,64}") {
            prop_assert_eq!(unescape(&escape(&s)), s);
        }

        #[test]
        fn xml_roundtrip_single_line_values(
            // XML rendering is line-oriented; values with newlines are
            // carried by LDIF/base64 instead.
            values in prop::collection::vec("[^\\r\\n]{0,24}", 1..5),
        ) {
            let mut rec = InfoRecord::new("Kw", "host");
            for (i, v) in values.iter().enumerate() {
                rec.push(&format!("a{i}"), v);
            }
            let parsed = parse(&render(&[rec]));
            prop_assert_eq!(parsed.len(), 1);
            for (i, v) in values.iter().enumerate() {
                prop_assert_eq!(&parsed[0].get(&format!("a{i}")).unwrap().value, v);
            }
        }
    }
}
