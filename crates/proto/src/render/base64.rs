//! Minimal base64 (RFC 4648, standard alphabet, with padding).
//!
//! LDIF requires values that start with space/colon/'<', or contain
//! newlines or non-ASCII bytes, to be base64-encoded (`attr:: ...`).
//! Written from scratch to stay within the approved dependency list.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(n >> 6) as usize & 63] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[n as usize & 63] as char);
        } else {
            out.push('=');
        }
    }
    out
}

/// Decode base64; `None` on malformed input.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let s = s.trim();
    if !s.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    let bytes = s.as_bytes();
    let n_chunks = bytes.len() / 4;
    for (ci, chunk) in bytes.chunks(4).enumerate() {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        // Padding may only appear in the final chunk, last 1–2 positions.
        if pad > 2 || (pad > 0 && ci + 1 != n_chunks) {
            return None;
        }
        if chunk[..4 - pad].contains(&b'=') {
            return None;
        }
        let mut n: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' { 0 } else { val(c)? };
            n |= v << (18 - 6 * i);
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("").unwrap(), b"");
    }

    #[test]
    fn reject_malformed() {
        assert!(decode("abc").is_none()); // bad length
        assert!(decode("ab!d").is_none()); // bad character
        assert!(decode("=abc").is_none()); // misplaced padding
        assert!(decode("a===").is_none()); // too much padding
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn encode_decode_roundtrip(data in prop::collection::vec(any::<u8>(), 0..256)) {
            prop_assert_eq!(decode(&encode(&data)).unwrap(), data);
        }
    }
}
