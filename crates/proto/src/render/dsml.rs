//! DSML rendering.
//!
//! §6.6: "Nevertheless, it is straightforward to support other formats
//! such as DSML." The Directory Services Markup Language (v1) expresses
//! LDAP directory entries in XML; records render as:
//!
//! ```xml
//! <dsml>
//!  <directory-entries>
//!   <entry dn="kw=Memory, hn=node0, o=Grid">
//!    <objectclass><oc-value>InfoGramProvider</oc-value></objectclass>
//!    <attr name="Memory-total"><value>4294967296</value></attr>
//!   </entry>
//!  </directory-entries>
//! </dsml>
//! ```
//!
//! Attribute names follow the LDAP-safe convention of the LDIF renderer
//! (`Memory:total` → `Memory-total`), so a DSML consumer sees the same
//! names an LDAP consumer would.

use super::xml::{escape, unescape};
use crate::record::{Attribute, InfoRecord};

/// Render records as a DSML v1 document.
pub fn render(records: &[InfoRecord]) -> String {
    let mut out = String::from("<dsml>\n <directory-entries>\n");
    for rec in records {
        out.push_str(&format!(
            "  <entry dn=\"kw={}, hn={}, o=Grid\">\n",
            escape(&rec.keyword),
            escape(&rec.host)
        ));
        out.push_str("   <objectclass><oc-value>InfoGramProvider</oc-value></objectclass>\n");
        for a in &rec.attributes {
            let name = a.name.replacen(':', "-", 1);
            out.push_str(&format!("   <attr name=\"{}\">", escape(&name)));
            out.push_str(&format!("<value>{}</value>", escape(&a.value)));
            if let Some(q) = a.quality {
                out.push_str(&format!("<quality>{q:.4}</quality>"));
            }
            if let Some(age) = a.age_secs {
                out.push_str(&format!("<age>{age:.3}</age>"));
            }
            out.push_str("</attr>\n");
        }
        out.push_str("  </entry>\n");
    }
    out.push_str(" </directory-entries>\n</dsml>\n");
    out
}

/// Parse documents produced by [`render`] (purpose-built scanner for
/// round-trip tests and the format-equivalence experiment).
pub fn parse(text: &str) -> Vec<InfoRecord> {
    let mut records = Vec::new();
    let mut current: Option<InfoRecord> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("<entry dn=\"") {
            if let Some(e) = current.take() {
                records.push(e);
            }
            let Some(dn_end) = rest.find('"') else {
                continue;
            };
            let dn = unescape(&rest[..dn_end]);
            let mut keyword = String::new();
            let mut host = String::new();
            for part in dn.split(',') {
                let part = part.trim();
                if let Some(k) = part.strip_prefix("kw=") {
                    keyword = k.to_string();
                } else if let Some(h) = part.strip_prefix("hn=") {
                    host = h.to_string();
                }
            }
            current = Some(InfoRecord::new(&keyword, &host));
        } else if line == "</entry>" {
            if let Some(e) = current.take() {
                records.push(e);
            }
        } else if let Some(rest) = line.strip_prefix("<attr name=\"") {
            let Some(rec) = current.as_mut() else {
                continue;
            };
            let Some(name_end) = rest.find('"') else {
                continue;
            };
            let raw_name = unescape(&rest[..name_end]);
            let keyword = rec.keyword.clone();
            let name = match raw_name.strip_prefix(&format!("{keyword}-")) {
                Some(r) => format!("{keyword}:{r}"),
                None => raw_name,
            };
            let field = |tag: &str| -> Option<String> {
                let open = format!("<{tag}>");
                let close = format!("</{tag}>");
                let start = rest.find(&open)? + open.len();
                let end = rest[start..].find(&close)? + start;
                Some(unescape(&rest[start..end]))
            };
            let value = field("value").unwrap_or_default();
            let mut attr = Attribute::new(&name, &value);
            attr.quality = field("quality").and_then(|q| q.parse().ok());
            attr.age_secs = field("age").and_then(|a| a.parse().ok());
            rec.attributes.push(attr);
        }
    }
    if let Some(e) = current.take() {
        records.push(e);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<InfoRecord> {
        let mut m = InfoRecord::new("Memory", "node0.grid");
        m.push("total", "4294967296").quality = Some(0.9);
        m.push("free", "1073741824").age_secs = Some(2.5);
        let mut c = InfoRecord::new("CPU", "node0.grid");
        c.push("count", "4");
        vec![m, c]
    }

    #[test]
    fn render_shape() {
        let out = render(&sample());
        assert!(out.starts_with("<dsml>"));
        assert!(out.trim_end().ends_with("</dsml>"));
        assert!(out.contains("<entry dn=\"kw=Memory, hn=node0.grid, o=Grid\">"));
        assert!(out.contains("<attr name=\"Memory-total\">"));
        assert!(out.contains("<value>4294967296</value>"));
        assert!(out.contains("<quality>0.9000</quality>"));
        assert!(out.contains("<age>2.500</age>"));
        assert!(out.contains("<oc-value>InfoGramProvider</oc-value>"));
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let parsed = parse(&render(&records));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].keyword, "Memory");
        assert_eq!(parsed[0].get("total").unwrap().value, "4294967296");
        assert_eq!(parsed[0].get("total").unwrap().quality, Some(0.9));
        assert_eq!(parsed[0].get("free").unwrap().age_secs, Some(2.5));
        // Namespaced names restored.
        assert_eq!(parsed[0].attributes[0].name, "Memory:total");
        assert_eq!(parsed[1].get("count").unwrap().value, "4");
    }

    #[test]
    fn hostile_values_escaped() {
        let mut r = InfoRecord::new("X", "h");
        r.push("attr", "<value>&\"'</value>");
        let out = render(&[r]);
        assert!(!out.contains("<value><value>"));
        let parsed = parse(&out);
        assert_eq!(parsed[0].get("attr").unwrap().value, "<value>&\"'</value>");
    }

    #[test]
    fn empty_document() {
        let out = render(&[]);
        assert!(parse(&out).is_empty());
    }
}
