//! Plain `key: value` rendering (debugging format).

use crate::record::InfoRecord;

/// Render records as `# keyword @ host` headers followed by
/// `name: value` lines.
pub fn render(records: &[InfoRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&format!("# {} @ {}\n", rec.keyword, rec.host));
        for a in &rec.attributes {
            out.push_str(&format!("{}: {}", a.name, a.value));
            if let Some(q) = a.quality {
                out.push_str(&format!("  [quality={q:.4}]"));
            }
            if let Some(age) = a.age_secs {
                out.push_str(&format!("  [age={age:.3}s]"));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_values() {
        let mut r = InfoRecord::new("CPU", "node1");
        r.push("count", "4");
        r.push("mhz", "1000").quality = Some(1.0);
        let out = render(&[r]);
        assert!(out.contains("# CPU @ node1"));
        assert!(out.contains("CPU:count: 4"));
        assert!(out.contains("CPU:mhz: 1000  [quality=1.0000]"));
    }

    #[test]
    fn empty() {
        assert_eq!(render(&[]), "");
    }
}
