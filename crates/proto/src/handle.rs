//! Job contact handles.
//!
//! "To allow identification of the job, a job handle (often referred to
//! GlobusID) is returned on job startup so that it can be used for later
//! connection, including from other remote clients" (§2). A handle is a
//! small URL naming the service endpoint, the job id, and the service
//! epoch (restart generation — a restarted service can recognize handles
//! it issued in a previous life).

use std::fmt;

/// URL scheme used by handles.
pub const HANDLE_SCHEME: &str = "x-infogram";

/// A job contact handle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobHandle {
    /// Service host name.
    pub host: String,
    /// Service port.
    pub port: u16,
    /// Job id unique within the epoch.
    pub job_id: u64,
    /// Service restart generation that issued the handle.
    pub epoch: u64,
}

/// Error parsing a handle URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandleParseError {
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for HandleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid job handle: {}", self.reason)
    }
}

impl std::error::Error for HandleParseError {}

impl JobHandle {
    /// Construct a handle.
    pub fn new(host: &str, port: u16, job_id: u64, epoch: u64) -> Self {
        JobHandle {
            host: host.to_string(),
            port,
            job_id,
            epoch,
        }
    }

    /// Parse the `x-infogram://host:port/jobid/epoch` form.
    pub fn parse(s: &str) -> Result<Self, HandleParseError> {
        let err = |reason: &str| HandleParseError {
            reason: reason.to_string(),
        };
        let rest = s
            .strip_prefix(HANDLE_SCHEME)
            .and_then(|r| r.strip_prefix("://"))
            .ok_or_else(|| err("missing scheme"))?;
        let (authority, path) = rest.split_once('/').ok_or_else(|| err("missing path"))?;
        let (host, port_str) = authority
            .rsplit_once(':')
            .ok_or_else(|| err("missing port"))?;
        if host.is_empty() {
            return Err(err("empty host"));
        }
        let port: u16 = port_str.parse().map_err(|_| err("bad port"))?;
        let (job_str, epoch_str) = path.split_once('/').ok_or_else(|| err("missing epoch"))?;
        let job_id: u64 = job_str.parse().map_err(|_| err("bad job id"))?;
        let epoch: u64 = epoch_str.parse().map_err(|_| err("bad epoch"))?;
        Ok(JobHandle {
            host: host.to_string(),
            port,
            job_id,
            epoch,
        })
    }

    /// The `host:port` endpoint string.
    pub fn endpoint(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }
}

impl fmt::Display for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{HANDLE_SCHEME}://{}:{}/{}/{}",
            self.host, self.port, self.job_id, self.epoch
        )
    }
}

impl std::str::FromStr for JobHandle {
    type Err = HandleParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        JobHandle::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let h = JobHandle::new("gatekeeper.anl.gov", 2119, 42, 7);
        let s = h.to_string();
        assert_eq!(s, "x-infogram://gatekeeper.anl.gov:2119/42/7");
        assert_eq!(JobHandle::parse(&s).unwrap(), h);
        assert_eq!(h.endpoint(), "gatekeeper.anl.gov:2119");
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "https://host:1/2/3",
            "x-infogram://host/1/2",
            "x-infogram://host:abc/1/2",
            "x-infogram://host:1/xyz/2",
            "x-infogram://host:1/2",
            "x-infogram://:1/2/3",
            "x-infogram://host:1/2/three",
        ] {
            assert!(JobHandle::parse(bad).is_err(), "'{bad}' should fail");
        }
    }

    #[test]
    fn fromstr() {
        let h: JobHandle = "x-infogram://h:1/2/3".parse().unwrap();
        assert_eq!(h.job_id, 2);
        assert_eq!(h.epoch, 3);
    }

    #[test]
    fn handles_hashable() {
        use std::collections::HashSet;
        let a = JobHandle::new("h", 1, 1, 1);
        let b = JobHandle::new("h", 1, 1, 1);
        let c = JobHandle::new("h", 1, 2, 1);
        let set: HashSet<JobHandle> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Display → parse is the identity for any well-formed handle.
        #[test]
        fn handle_roundtrip(
            host in "[a-z][a-z0-9.-]{0,20}",
            port in any::<u16>(),
            job_id in any::<u64>(),
            epoch in any::<u64>(),
        ) {
            let h = JobHandle::new(&host, port, job_id, epoch);
            prop_assert_eq!(JobHandle::parse(&h.to_string()).unwrap(), h);
        }

        /// Parsing never panics on arbitrary input.
        #[test]
        fn parse_total(s in "\\PC{0,64}") {
            let _ = JobHandle::parse(&s);
        }
    }
}
