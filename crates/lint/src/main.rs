//! `infogram-lint` — the workspace lint pass.
//!
//! ```text
//! infogram-lint [ROOT]     lint the workspace rooted at ROOT (default:
//!                          nearest ancestor with a [workspace] Cargo.toml)
//! infogram-lint --rules    list every rule with a one-line summary
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when there are findings, 2 on
//! usage or I/O errors. Suppress a finding with `// lint:allow(<rule>)`
//! on the offending line or the line above.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: infogram-lint [ROOT | --rules]");
        println!("lints the InfoGram workspace; see --rules for the rule set");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--rules") {
        for (id, summary) in infogram_lint::RULES {
            println!("{id:20} {summary}");
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.first() {
        Some(p) => PathBuf::from(p),
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("infogram-lint: no workspace Cargo.toml above the current directory");
                return ExitCode::from(2);
            }
        },
    };
    if !root.is_dir() {
        eprintln!("infogram-lint: {} is not a directory", root.display());
        return ExitCode::from(2);
    }
    match infogram_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("infogram-lint: clean ({})", summarize(&root));
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("infogram-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("infogram-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn summarize(root: &Path) -> String {
    format!(
        "{} rules over {}",
        infogram_lint::RULES.len(),
        root.display()
    )
}
