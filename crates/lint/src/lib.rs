#![warn(missing_docs)]

//! `infogram-lint`: project invariants the compiler cannot enforce.
//!
//! The workspace has a handful of rules that matter for correctness and
//! reproducibility but live below the type system's radar:
//!
//! * **`direct-clock`** — `std::time::Instant::now` / `SystemTime::now`
//!   outside `crates/sim`. Every time-dependent code path must go through
//!   [`Clock`](../infogram_sim/clock/trait.Clock.html) so the deterministic
//!   experiments and the model checker can drive a virtual clock.
//! * **`unwrap`** — `.unwrap()` / `.expect(...)` in non-test library code.
//!   Service code must surface structured errors, not panic.
//! * **`print`** — `println!` / `eprintln!` / `dbg!` in library crates.
//!   Diagnostics belong in the telemetry layer (`crates/obs`), which has a
//!   bounded event ring; stdout belongs to the bench report harness only.
//! * **`guard-across-call`** — a lock guard held across a `produce` /
//!   `fetch` / `dispatch` / `update_state` call boundary. Provider and
//!   dispatch calls can block for a long time (or re-enter the same
//!   entry), so holding a lock across them invites convoys and deadlocks;
//!   the concurrency core always drops its guard first (see
//!   `SystemInformation::update_state`).
//! * **`config-table`** — Table 1 keyword/TTL/command triples (embedded
//!   constants annotated `// lint:config-table`, and standalone `*.cfg`
//!   files) must parse: numeric TTL, unique keyword, non-empty command,
//!   known directives. Checked statically with the real
//!   [`ServiceConfig`] parser.
//! * **`thread-spawn`** — raw `std::thread::spawn` in library crates
//!   outside `crates/sim`. Ad-hoc threads dodge the `sim::par` scoped
//!   pool (bounded fan-out, panic propagation) and the lockdep /
//!   model-checker instrumentation that rides on it; service code should
//!   fan out through `sim::par` or justify the long-lived thread with a
//!   suppression.
//!
//! The linter is deliberately token-oriented: it masks comments and string
//! literals with a tiny lexer and then pattern-matches lines, which keeps
//! a whole-workspace run in the low milliseconds. Findings suppress with a
//! per-line `// lint:allow(<rule>)` on the offending line or the line
//! above — every suppression should carry a justification.

use infogram_info::config::ServiceConfig;
use std::fmt;
use std::path::{Path, PathBuf};

mod mask;

pub use mask::mask_code;

/// Every rule the linter knows, as `(id, summary)` pairs.
pub const RULES: &[(&str, &str)] = &[
    (
        "direct-clock",
        "Instant::now / SystemTime::now outside crates/sim — use the sim Clock",
    ),
    (
        "unwrap",
        ".unwrap() / .expect() in non-test library code — return a structured error",
    ),
    (
        "print",
        "println!/eprintln!/dbg! in library crates — use the obs telemetry layer",
    ),
    (
        "guard-across-call",
        "lock guard held across a produce/fetch/dispatch call boundary",
    ),
    (
        "config-table",
        "malformed TTL/Keyword/Command config table (Table 1 triples)",
    ),
    (
        "thread-spawn",
        "raw std::thread::spawn outside crates/sim — use sim::par or justify",
    ),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in, relative to the lint root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// What kind of source file a path is, for rule applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FileClass {
    /// Library source of the named crate (`crates/<name>/src`, or the
    /// umbrella crate's `src/`).
    Lib(String),
    /// A binary entry point (`main.rs`, `src/bin/...`).
    Bin,
    /// Integration tests, benches, examples: exercised code, panics fine.
    Harness,
    /// Not linted (vendored shims, generated output, VCS internals).
    Skip,
}

fn classify(rel: &Path) -> FileClass {
    let s = rel.to_string_lossy().replace('\\', "/");
    if s.starts_with("shims/") || s.starts_with("target/") || s.starts_with(".git/") {
        return FileClass::Skip;
    }
    if s.ends_with("main.rs") || s.contains("/src/bin/") {
        return FileClass::Bin;
    }
    if s.starts_with("tests/")
        || s.contains("/tests/")
        || s.starts_with("examples/")
        || s.contains("/examples/")
        || s.contains("/benches/")
        || s.starts_with("crates/bench/")
    {
        // `crates/bench` is the report harness: it measures real wall
        // time and prints tables to stdout by design.
        return FileClass::Harness;
    }
    if let Some(rest) = s.strip_prefix("crates/") {
        if let Some((name, tail)) = rest.split_once('/') {
            if tail.starts_with("src/") {
                return FileClass::Lib(name.to_string());
            }
        }
        return FileClass::Skip; // crate-level Cargo.toml etc.
    }
    if s.starts_with("src/") {
        return FileClass::Lib("infogram".to_string());
    }
    FileClass::Skip
}

/// Per-line `in test code` flags: true for lines inside a `#[cfg(test)]`
/// item (the unit-test module convention).
fn test_region_flags(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut flags = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            // Mark everything from the attribute to the end of the next
            // brace-balanced item.
            let mut depth: i64 = 0;
            let mut seen_open = false;
            let mut j = i;
            while j < lines.len() {
                flags[j] = true;
                for ch in lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            seen_open = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if seen_open && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Does line `idx` (0-based) or the line above carry a
/// `lint:allow(<rule>)` for this rule?
fn allowed(original_lines: &[&str], idx: usize, rule: &str) -> bool {
    let carries = |line: &str| {
        line.find("lint:allow(")
            .map(|at| {
                let rest = &line[at + "lint:allow(".len()..];
                match rest.find(')') {
                    Some(end) => rest[..end]
                        .split(',')
                        .any(|r| r.trim().eq_ignore_ascii_case(rule)),
                    None => false,
                }
            })
            .unwrap_or(false)
    };
    if carries(original_lines[idx]) {
        return true;
    }
    // Walk up through the contiguous comment block directly above the
    // flagged line, so a multi-line justification still carries.
    let mut k = idx;
    while k > 0 && original_lines[k - 1].trim_start().starts_with("//") {
        k -= 1;
        if carries(original_lines[k]) {
            return true;
        }
    }
    false
}

/// Lint one Rust source file. `rel` is the path relative to the lint root
/// (used for rule applicability and in findings).
pub fn lint_rust_file(rel: &Path, src: &str) -> Vec<Finding> {
    let class = classify(rel);
    if class == FileClass::Skip {
        return Vec::new();
    }
    let masked = mask_code(src);
    let original_lines: Vec<&str> = src.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let in_test = test_region_flags(&masked);
    let mut findings = Vec::new();
    let mut push = |line_idx: usize, rule: &'static str, message: String| {
        if !allowed(&original_lines, line_idx, rule) {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: line_idx + 1,
                rule,
                message,
            });
        }
    };

    let lib_crate = match &class {
        FileClass::Lib(name) => Some(name.as_str()),
        _ => None,
    };

    for (i, line) in masked_lines.iter().enumerate() {
        let test_line = in_test.get(i).copied().unwrap_or(false);

        // direct-clock: everywhere except crates/sim and test code. Bench
        // harnesses and examples measure real wall time by design, so
        // only library and bin code is held to it.
        if lib_crate.is_some_and(|c| c != "sim") && !test_line {
            for pat in ["Instant::now", "SystemTime::now"] {
                if line.contains(pat) {
                    push(
                        i,
                        "direct-clock",
                        format!("`{pat}` bypasses the sim Clock; take a SharedClock instead"),
                    );
                }
            }
        }

        // unwrap: non-test library code only.
        if lib_crate.is_some() && !test_line {
            if line.contains(".unwrap()") {
                push(
                    i,
                    "unwrap",
                    "`.unwrap()` in library code; return a structured error".to_string(),
                );
            }
            // `.expect("` with a literal message — plain `.expect(` would
            // also catch parser-style `self.expect(&Token::RParen)?`
            // methods, which are ordinary Results.
            if line.contains(".expect(\"") {
                push(
                    i,
                    "unwrap",
                    "`.expect(...)` in library code; return a structured error".to_string(),
                );
            }
        }

        // thread-spawn: library crates except crates/sim (which owns the
        // scoped pool and the deterministic thread wrappers). Tests,
        // benches, and bins spin up scaffolding threads freely.
        if lib_crate.is_some_and(|c| c != "sim") && !test_line && line.contains("thread::spawn") {
            push(
                i,
                "thread-spawn",
                "raw `thread::spawn` bypasses sim::par (bounded fan-out, panic \
                 propagation, lockdep); use the scoped pool or justify the thread"
                    .to_string(),
            );
        }

        // print: library crates except the bench report harness.
        if lib_crate.is_some_and(|c| c != "bench") && !test_line {
            for pat in ["println!", "eprintln!", "print!", "eprint!", "dbg!"] {
                if line.contains(pat) {
                    push(
                        i,
                        "print",
                        format!("`{pat}` in a library crate; route through obs telemetry"),
                    );
                    break;
                }
            }
        }
    }

    // config-table: embedded tables annotated `// lint:config-table`.
    // The annotation must be a plain comment line (not a doc comment
    // talking *about* the annotation, not a string literal containing
    // one — the masked text keeps `//` only for real comments).
    for (i, line) in original_lines.iter().enumerate() {
        if line.trim_start().starts_with("// lint:config-table")
            && masked_lines
                .get(i)
                .is_some_and(|m| m.trim_start().starts_with("//"))
        {
            match extract_string_literal(src, i) {
                Some((text, _)) => {
                    if let Err(e) = ServiceConfig::parse(&text) {
                        push(
                            i,
                            "config-table",
                            format!("embedded config table is malformed: {e}"),
                        );
                    }
                }
                None => push(
                    i,
                    "config-table",
                    "lint:config-table annotation without a following string literal".to_string(),
                ),
            }
        }
    }

    // guard-across-call: track `let <g> = ....lock()/.read()/.write()`
    // bindings and flag blocking calls before the guard is dropped.
    if lib_crate.is_some() {
        findings.extend(guard_across_call(
            rel,
            &masked_lines,
            &original_lines,
            &in_test,
        ));
    }

    findings
}

/// The calls that must never run under a held lock guard: provider
/// executions and request dispatch, all of which can block indefinitely.
const BLOCKING_CALLS: &[&str] = &[".produce(", ".dispatch(", ".fetch(", ".update_state("];

fn guard_across_call(
    rel: &Path,
    masked_lines: &[&str],
    original_lines: &[&str],
    in_test: &[bool],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut depth: i64 = 0;
    // Active guards: (identifier, depth at binding).
    let mut guards: Vec<(String, i64)> = Vec::new();
    for (i, line) in masked_lines.iter().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        // A blocking call while any guard is live?
        for call in BLOCKING_CALLS {
            if line.contains(call) && !allowed(original_lines, i, "guard-across-call") {
                for (g, _) in &guards {
                    findings.push(Finding {
                        file: rel.to_path_buf(),
                        line: i + 1,
                        rule: "guard-across-call",
                        message: format!(
                            "`{}` call while lock guard `{g}` is held; drop the guard first",
                            call.trim_start_matches('.').trim_end_matches('(')
                        ),
                    });
                }
            }
        }
        // New guard bindings on this line.
        if let Some(g) = guard_binding(line) {
            guards.push((g, depth));
        }
        // Explicit drops release a guard.
        for (idx, (g, _)) in guards.iter().enumerate().rev() {
            if line.contains(&format!("drop({g})")) {
                guards.remove(idx);
                break;
            }
        }
        // Track block depth; guards die when their block closes.
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|(_, d)| *d < depth + 1);
                }
                _ => {}
            }
        }
    }
    findings
}

/// `let [mut] <ident> = <expr>.lock()` / `.read()` / `.write()` — the
/// binding's identifier, if this line creates a named guard.
fn guard_binding(masked_line: &str) -> Option<String> {
    let trimmed = masked_line.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() || ident.starts_with('_') {
        return None; // `_g` bindings are deliberate short holds
    }
    // `let delay = *self.delay.lock();` — a deref copies the value out
    // and the temporary guard dies at the semicolon.
    if let Some(rhs) = masked_line.split_once('=').map(|(_, r)| r.trim_start()) {
        if rhs.starts_with('*') || rhs.starts_with("&*") {
            return None;
        }
    }
    let has_guard_call = [".lock()", ".read()", ".write()"]
        .iter()
        .any(|p| masked_line.contains(p));
    // `let x = m.lock().clone()` (or any further projection) does not
    // keep the guard: the temporary dies at the semicolon.
    let projected = [".lock().", ".read().", ".write()."]
        .iter()
        .any(|p| masked_line.contains(p));
    (has_guard_call && !projected).then_some(ident)
}

/// Extract the first string literal at or after 0-based line `start`.
/// Handles plain strings (with `\"`, `\\`, and trailing-`\` line
/// continuations) and raw strings `r"..."` / `r#"..."#`. Returns the
/// unescaped text and the 0-based line it started on.
pub fn extract_string_literal(src: &str, start: usize) -> Option<(String, usize)> {
    let offset: usize = src.lines().take(start).map(|l| l.len() + 1).sum();
    let bytes = src.as_bytes();
    let mut i = offset;
    while i < bytes.len() {
        // Raw string?
        if bytes[i] == b'r' {
            let mut j = i + 1;
            let mut hashes = 0;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'"' {
                let body_start = j + 1;
                let terminator = format!("\"{}", "#".repeat(hashes));
                let end = src[body_start..].find(&terminator)? + body_start;
                let line_no = src[..i].matches('\n').count();
                return Some((src[body_start..end].to_string(), line_no));
            }
        }
        if bytes[i] == b'"' {
            let line_no = src[..i].matches('\n').count();
            let mut out = String::new();
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'"' => return Some((out, line_no)),
                    b'\\' if j + 1 < bytes.len() => {
                        match bytes[j + 1] {
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'\\' => out.push('\\'),
                            b'"' => out.push('"'),
                            b'\n' => {
                                // Trailing-backslash continuation: skip
                                // the newline and leading whitespace.
                                j += 2;
                                while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
                                    j += 1;
                                }
                                continue;
                            }
                            other => out.push(other as char),
                        }
                        j += 2;
                        continue;
                    }
                    b => out.push(b as char),
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// Lint a standalone config file (`*.cfg`): the whole file is a table.
pub fn lint_config_file(rel: &Path, text: &str) -> Vec<Finding> {
    match ServiceConfig::parse(text) {
        Ok(_) => Vec::new(),
        Err(e) => vec![Finding {
            file: rel.to_path_buf(),
            line: e.line,
            rule: "config-table",
            message: format!("config table is malformed: {e}"),
        }],
    }
}

/// Recursively lint a workspace rooted at `root`. Returns findings sorted
/// by path and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if matches!(name.as_str(), "target" | ".git" | "shims" | "node_modules") {
                    continue;
                }
                stack.push(path);
                continue;
            }
            if name.ends_with(".rs") {
                if let Ok(src) = std::fs::read_to_string(&path) {
                    findings.extend(lint_rust_file(&rel, &src));
                }
            } else if name.ends_with(".cfg") {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    findings.extend(lint_config_file(&rel, &text));
                }
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Finding> {
        lint_rust_file(Path::new(rel), src)
    }

    #[test]
    fn direct_clock_flagged_outside_sim() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let f = lint("crates/info/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "direct-clock");
        assert_eq!(f[0].line, 1);
        // The same code inside crates/sim is the implementation itself.
        assert!(lint("crates/sim/src/clock.rs", src).is_empty());
        // Harness code measures wall time by design.
        assert!(lint("examples/demo.rs", src).is_empty());
        assert!(lint("crates/bench/benches/e1.rs", src).is_empty());
    }

    #[test]
    fn unwrap_flagged_only_in_nontest_lib_code() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint("crates/rsl/src/p.rs", src).len(), 1);
        assert!(lint("tests/integration.rs", src).is_empty());
        let with_tests =
            "fn f() -> u8 { 0 }\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(lint("crates/rsl/src/p.rs", with_tests).is_empty());
    }

    #[test]
    fn expect_flagged() {
        let src = "fn f() { x.expect(\"boom\"); }\n";
        assert_eq!(lint("crates/info/src/x.rs", src)[0].rule, "unwrap");
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src =
            "fn f() {\n    let s = \".unwrap() println!\";\n    // Instant::now in prose\n}\n";
        assert!(lint("crates/info/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_suppresses_on_line_or_above() {
        let same = "fn f() { x.unwrap(); } // lint:allow(unwrap) — startup only\n";
        assert!(lint("crates/info/src/x.rs", same).is_empty());
        let above = "// lint:allow(unwrap) — checked by caller\nfn f() { x.unwrap(); }\n";
        assert!(lint("crates/info/src/x.rs", above).is_empty());
        let wrong_rule = "fn f() { x.unwrap(); } // lint:allow(print)\n";
        assert_eq!(lint("crates/info/src/x.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn print_flagged_outside_bench() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert_eq!(lint("crates/info/src/x.rs", src)[0].rule, "print");
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
        assert!(
            lint("crates/lint/src/main.rs", src).is_empty(),
            "bins may print"
        );
    }

    #[test]
    fn thread_spawn_flagged_outside_sim() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "thread-spawn");
        // The sim crate implements the thread wrappers themselves.
        assert!(lint("crates/sim/src/par.rs", src).is_empty());
        // Harness and bin code spin up scaffolding threads freely.
        assert!(lint("tests/integration.rs", src).is_empty());
        assert!(lint("crates/bench/src/mixed.rs", src).is_empty());
        assert!(lint("crates/lint/src/main.rs", src).is_empty());
        // Unit-test modules inside a library file are exempt too.
        let with_tests =
            "fn f() -> u8 { 0 }\n#[cfg(test)]\nmod tests {\n    fn g() { std::thread::spawn(|| {}); }\n}\n";
        assert!(lint("crates/core/src/x.rs", with_tests).is_empty());
    }

    #[test]
    fn thread_spawn_suppression_carries_reason() {
        let src = "// lint:allow(thread-spawn) — long-lived acceptor loop\n\
                   fn f() { std::thread::spawn(|| {}); }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn guard_across_call_flagged() {
        let src = "\
fn f(&self) {
    let st = self.state.lock();
    let r = self.provider.produce();
}
";
        let f = lint("crates/info/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "guard-across-call");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn guard_dropped_before_call_is_clean() {
        let src = "\
fn f(&self) {
    let st = self.state.lock();
    drop(st);
    let r = self.provider.produce();
}
";
        assert!(lint("crates/info/src/x.rs", src).is_empty());
    }

    #[test]
    fn guard_scope_ends_with_block() {
        let src = "\
fn f(&self) {
    {
        let st = self.state.lock();
    }
    let r = self.provider.produce();
}
";
        assert!(lint("crates/info/src/x.rs", src).is_empty());
    }

    #[test]
    fn projected_guard_temporary_is_not_held() {
        let src = "\
fn f(&self) {
    let delay = self.delay.lock().clone();
    let r = self.provider.produce();
}
";
        assert!(lint("crates/info/src/x.rs", src).is_empty());
    }

    #[test]
    fn config_table_annotation_checked() {
        let good = "\
fn f() {}
// lint:config-table
pub const T: &str = \"\\
60 Date date -u
\";
";
        assert!(lint("crates/info/src/x.rs", good).is_empty());
        let bad = "\
// lint:config-table
pub const T: &str = \"\\
60 Date date -u
60 Date date -u
\";
";
        let f = lint("crates/info/src/x.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "config-table");
        assert!(f[0].message.contains("duplicate"), "{}", f[0].message);
    }

    #[test]
    fn config_table_raw_string() {
        let src = "// lint:config-table\nconst T: &str = r\"abc Date date\n\";\n";
        let f = lint("crates/info/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("bad TTL"));
    }

    #[test]
    fn config_file_lint() {
        assert!(lint_config_file(Path::new("a.cfg"), "60 Date date -u\n").is_empty());
        let f = lint_config_file(Path::new("a.cfg"), "60 Date\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn shims_are_skipped() {
        let src = "fn f() { x.unwrap(); println!(\"y\"); }\n";
        assert!(lint("shims/parking_lot/src/lib.rs", src).is_empty());
    }

    #[test]
    fn string_literal_extraction_handles_continuations() {
        let src = "const T: &str = \"\\\n60 Date date -u\n80 Memory m\n\";\n";
        let (text, line) = extract_string_literal(src, 0).unwrap();
        assert_eq!(line, 0);
        assert_eq!(text, "60 Date date -u\n80 Memory m\n");
    }
}
