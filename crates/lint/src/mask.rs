//! A tiny Rust lexer that blanks out the contents of comments and
//! string/char literals so the rule patterns only ever match real code.
//!
//! The masked text has exactly the same length and line structure as the
//! input: every masked character becomes a space (newlines are kept), so
//! line and column numbers carry over unchanged. Attributes, identifiers,
//! and punctuation survive untouched — which is all the token-oriented
//! rules need.

/// Blank out comments and the interiors of string/char literals.
pub fn mask_code(src: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    state = State::LineComment;
                    // Keep the `//` so rules can tell a comment line from
                    // a masked string line (the text is still blanked).
                    out.extend_from_slice(b"//");
                    i += 2;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'"' => {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                }
                b'r' if is_raw_string_start(bytes, i) => {
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    state = State::RawStr(hashes);
                    // keep `r##"` visible so literal starts stay findable
                    out.extend_from_slice(&bytes[i..=j]);
                    i = j + 1;
                }
                b'\'' => {
                    // Distinguish a char literal from a lifetime: a char
                    // literal closes with `'` within a few bytes; a
                    // lifetime never closes.
                    if is_char_literal(bytes, i) {
                        state = State::Char;
                        out.push(b'\'');
                        i += 1;
                    } else {
                        out.push(b'\'');
                        i += 1;
                    }
                }
                _ => {
                    out.push(b);
                    i += 1;
                }
            },
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => match b {
                b'\\' if i + 1 < bytes.len() => {
                    out.push(b' ');
                    out.push(if bytes[i + 1] == b'\n' { b'\n' } else { b' ' });
                    i += 2;
                }
                b'"' => {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                }
                _ => {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if b == b'"' && has_hashes(bytes, i + 1, hashes) {
                    out.push(b'"');
                    out.extend(std::iter::repeat_n(b'#', hashes as usize));
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Char => match b {
                b'\\' if i + 1 < bytes.len() => {
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'\'' => {
                    state = State::Code;
                    out.push(b'\'');
                    i += 1;
                }
                _ => {
                    out.push(b' ');
                    i += 1;
                }
            },
        }
    }
    // The lexer only ever emits ASCII in masked regions and copies the
    // rest verbatim, so this cannot fail on valid UTF-8 input.
    String::from_utf8_lossy(&out).into_owned()
}

/// `r"` / `r#"` / `br"` raw-string openings (identifier `r` followed by
/// hashes and a quote). Must not fire on identifiers ending in `r`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn has_hashes(bytes: &[u8], from: usize, count: u32) -> bool {
    (0..count as usize).all(|k| bytes.get(from + k) == Some(&b'#'))
}

/// `'x'`, `'\n'`, `'\''`, `'\u{1F600}'` are char literals; `'a` (a
/// lifetime) is not. A closing quote within the next 12 bytes that is not
/// immediately `'ident` decides it.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(c) if *c != b'\'' => {
            // `'c'` exactly: one char then a quote — lifetimes like `'a`
            // are followed by non-quote (`,`, `>`, ` `, `:`).
            if bytes.get(i + 2) == Some(&b'\'') {
                return true;
            }
            // Unicode chars are multi-byte; scan a short window.
            if !c.is_ascii() {
                for k in 2..8 {
                    if bytes.get(i + k) == Some(&b'\'') {
                        return true;
                    }
                }
            }
            false
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments() {
        let m = mask_code("let x = 1; // Instant::now\nlet y = 2;\n");
        assert!(!m.contains("Instant"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.lines().count(), 2);
    }

    #[test]
    fn masks_block_comments_nested() {
        let m = mask_code("a /* one /* two */ still */ b");
        assert!(m.starts_with('a'));
        assert!(m.trim_end().ends_with('b'));
        assert!(!m.contains("still"));
    }

    #[test]
    fn masks_string_contents_keeps_quotes() {
        let m = mask_code("let s = \".unwrap()\";");
        assert!(!m.contains(".unwrap()"));
        assert_eq!(m.matches('"').count(), 2);
        assert_eq!(m.len(), "let s = \".unwrap()\";".len());
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let m = mask_code(r#"let s = "a\"b.unwrap()"; x.unwrap();"#);
        assert_eq!(m.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn raw_strings_masked() {
        let m = mask_code("let s = r#\"println!(\"hi\")\"#; println!(\"x\");");
        assert_eq!(m.matches("println!").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = mask_code("fn f<'a>(x: &'a str) -> &'a str { x } // done");
        assert!(m.contains("fn f<'a>(x: &'a str) -> &'a str { x }"));
        assert!(!m.contains("done"));
    }

    #[test]
    fn char_literals_masked() {
        let m = mask_code("let c = '{'; let d = '\\n'; let e = '}';");
        assert!(!m.contains('{'), "{m}");
        assert!(!m.contains('}'), "{m}");
    }

    #[test]
    fn preserves_line_structure() {
        let src = "a\n\"multi\nline\nstring\"\nb\n";
        let m = mask_code(src);
        assert_eq!(m.lines().count(), src.lines().count());
    }
}
