//! Deterministic fault injection for provider commands.
//!
//! A [`FaultPlan`] scripts failures against named targets (command
//! basenames, i.e. the executables behind information keywords). The
//! command registry consults the plan on every execution and applies the
//! next scripted [`Fault`] for that target, so every failure mode —
//! nonzero exits, hangs, slowdowns, crash-and-restart windows — is
//! reproducible under both the system clock and the virtual clock, and
//! explorable by `sim::model`.
//!
//! Two modes:
//!
//! * **Scripted** ([`FaultPlan::script`]): a per-target sequence of
//!   faults consumed one per execution; once the sequence is exhausted
//!   the target is healthy again. This is what the fault-supervisor
//!   tests use — "fail 3×, then recover" is `script(k, vec![Fail; 3])`.
//! * **Storm** ([`FaultPlan::storm`]): every execution of every target
//!   draws from a seeded PRNG with configured fault probabilities.
//!   Chaos smoke and the `e17_fault_storm` bench use this; the seed
//!   makes any run replayable byte-for-byte.
//!
//! The plan only *decides*; applying the decision (charging the hang
//! duration to the clock, shaping the exit code) is the command
//! registry's job, so decisions stay pure and deterministic.

use crate::clock::SimTime;
use crate::rng::SplitMix64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scripted failure mode for a single execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The command runs (cost charged as usual) but exits nonzero.
    Fail,
    /// The command stalls for the given duration, then is reaped as
    /// failed — modelling a hung backend killed by a watchdog. The
    /// duration is charged to the clock *in addition to* the normal
    /// execution cost, so deadline budgets observe the stall.
    Hang(Duration),
    /// The command succeeds, but only after an extra delay — a slow
    /// backend, not a broken one.
    SlowBy(Duration),
    /// The target crashes: this and every subsequent execution fails
    /// instantly until `restart_after` has elapsed on the clock, at
    /// which point the target is healthy again (and the script resumes).
    Crash {
        /// How long the target stays down after the crash.
        restart_after: Duration,
    },
}

/// What the registry should do for one execution, as decided by the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injection {
    /// Run the command normally.
    Healthy,
    /// Charge normal cost, then fail with this exit code and detail.
    Fail {
        /// Exit code to report (nonzero).
        exit_code: i32,
        /// Human-readable cause, e.g. `injected failure`.
        detail: &'static str,
    },
    /// Charge the stall duration, then fail (hung, reaped by watchdog).
    Hang(Duration),
    /// Charge the extra delay, then run the command normally.
    SlowBy(Duration),
}

/// Exit code reported for an injected plain failure.
pub const EXIT_INJECTED: i32 = 13;
/// Exit code reported for a hung-then-reaped execution.
pub const EXIT_HUNG: i32 = 124;
/// Exit code reported while a crashed target is down.
pub const EXIT_CRASHED: i32 = 137;

#[derive(Debug, Default)]
struct Script {
    seq: Vec<Fault>,
    next: usize,
    /// While set, every execution fails instantly until the clock
    /// reaches this time.
    down_until: Option<SimTime>,
}

/// Storm-mode probabilities (all per-execution, independent draws).
#[derive(Debug, Clone)]
pub struct StormProfile {
    /// Probability an execution fails outright.
    pub fail_p: f64,
    /// Probability an execution hangs for [`StormProfile::hang_for`].
    pub hang_p: f64,
    /// Probability an execution is slowed by [`StormProfile::slow_by`].
    pub slow_p: f64,
    /// Stall duration for injected hangs.
    pub hang_for: Duration,
    /// Extra delay for injected slowdowns.
    pub slow_by: Duration,
}

impl Default for StormProfile {
    /// The scripted "10% provider-failure storm": 10% fails, 2% hangs,
    /// 5% slowdowns, with short stalls suitable for wall-clock runs.
    fn default() -> Self {
        StormProfile {
            fail_p: 0.10,
            hang_p: 0.02,
            slow_p: 0.05,
            hang_for: Duration::from_millis(30),
            slow_by: Duration::from_millis(10),
        }
    }
}

#[derive(Debug)]
enum Mode {
    Scripted,
    Storm {
        seed: u64,
        /// Per-target draw streams, created lazily from `seed` mixed
        /// with the target name. Independent streams keep storm replay
        /// byte-identical even when fetches for *different* targets
        /// run concurrently (fan-out): interleaving across targets
        /// cannot perturb any one target's draw sequence. Draws for
        /// the *same* target stay ordered by the plan mutex.
        streams: HashMap<String, SplitMix64>,
        profile: StormProfile,
    },
}

/// FNV-1a over the target name: a stable, platform-independent stream
/// discriminator mixed into the storm seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic, shareable fault-injection plan.
///
/// Thread-safe; one plan is typically shared by a command registry and
/// the test that scripts it. All interior state (script cursors, crash
/// windows, the per-target storm streams) lives behind one mutex, so
/// concurrent executions serialize their draws; per-target streams
/// make the draw *sequences* independent of cross-target interleaving,
/// so seeded storms replay byte-identically even under fan-out.
#[derive(Debug)]
pub struct FaultPlan {
    state: Mutex<PlanState>,
    injected: AtomicU64,
}

#[derive(Debug)]
struct PlanState {
    scripts: HashMap<String, Script>,
    mode: Mode,
}

impl FaultPlan {
    /// An empty scripted plan: every target healthy until scripted.
    pub fn new() -> Arc<Self> {
        Arc::new(FaultPlan {
            state: Mutex::new(PlanState {
                scripts: HashMap::new(),
                mode: Mode::Scripted,
            }),
            injected: AtomicU64::new(0),
        })
    }

    /// A seeded storm: every execution of every target draws faults
    /// from `profile` using a PRNG seeded with `seed`. Targets can
    /// still be scripted on top; scripts take precedence for their
    /// target until exhausted.
    pub fn storm(seed: u64, profile: StormProfile) -> Arc<Self> {
        Arc::new(FaultPlan {
            state: Mutex::new(PlanState {
                scripts: HashMap::new(),
                mode: Mode::Storm {
                    seed,
                    streams: HashMap::new(),
                    profile,
                },
            }),
            injected: AtomicU64::new(0),
        })
    }

    /// Script a fault sequence for one target (command basename).
    /// Replaces any existing script for that target.
    pub fn script(&self, target: &str, seq: Vec<Fault>) {
        let mut st = self.state.lock();
        st.scripts.insert(
            target.to_string(),
            Script {
                seq,
                next: 0,
                down_until: None,
            },
        );
    }

    /// Total number of injections applied so far (all targets).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decide what happens to the next execution of `target` at `now`.
    ///
    /// Consumes one scripted fault (if any remain), manages crash
    /// windows, and falls back to storm draws when configured.
    pub fn decide(&self, target: &str, now: SimTime) -> Injection {
        let mut st = self.state.lock();
        // A crash window in force dominates everything else.
        if let Some(script) = st.scripts.get_mut(target) {
            if let Some(until) = script.down_until {
                if now < until {
                    drop(st);
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    return Injection::Fail {
                        exit_code: EXIT_CRASHED,
                        detail: "injected crash (target down)",
                    };
                }
                script.down_until = None; // restarted
            }
            if script.next < script.seq.len() {
                let fault = script.seq[script.next].clone();
                script.next += 1;
                let injection = match fault {
                    Fault::Fail => Injection::Fail {
                        exit_code: EXIT_INJECTED,
                        detail: "injected failure",
                    },
                    Fault::Hang(d) => Injection::Hang(d),
                    Fault::SlowBy(d) => Injection::SlowBy(d),
                    Fault::Crash { restart_after } => {
                        script.down_until = Some(now.plus(restart_after));
                        Injection::Fail {
                            exit_code: EXIT_CRASHED,
                            detail: "injected crash (target down)",
                        }
                    }
                };
                drop(st);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return injection;
            }
        }
        if let Mode::Storm {
            seed,
            streams,
            profile,
        } = &mut st.mode
        {
            let stream = streams
                .entry(target.to_string())
                .or_insert_with(|| SplitMix64::new(*seed ^ fnv1a(target)));
            let draw = stream.next_f64();
            let injection = if draw < profile.fail_p {
                Some(Injection::Fail {
                    exit_code: EXIT_INJECTED,
                    detail: "injected failure",
                })
            } else if draw < profile.fail_p + profile.hang_p {
                Some(Injection::Hang(profile.hang_for))
            } else if draw < profile.fail_p + profile.hang_p + profile.slow_p {
                Some(Injection::SlowBy(profile.slow_by))
            } else {
                None
            };
            if let Some(injection) = injection {
                drop(st);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return injection;
            }
        }
        Injection::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn scripted_sequence_consumed_in_order_then_healthy() {
        let plan = FaultPlan::new();
        plan.script(
            "cpuload",
            vec![
                Fault::Fail,
                Fault::SlowBy(Duration::from_millis(5)),
                Fault::Hang(Duration::from_millis(50)),
            ],
        );
        assert!(matches!(plan.decide("cpuload", T0), Injection::Fail { .. }));
        assert_eq!(
            plan.decide("cpuload", T0),
            Injection::SlowBy(Duration::from_millis(5))
        );
        assert_eq!(
            plan.decide("cpuload", T0),
            Injection::Hang(Duration::from_millis(50))
        );
        assert_eq!(plan.decide("cpuload", T0), Injection::Healthy);
        // Other targets unaffected throughout.
        assert_eq!(plan.decide("date", T0), Injection::Healthy);
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn crash_holds_target_down_until_restart() {
        let plan = FaultPlan::new();
        plan.script(
            "sysinfo",
            vec![Fault::Crash {
                restart_after: Duration::from_secs(10),
            }],
        );
        assert!(matches!(
            plan.decide("sysinfo", T0),
            Injection::Fail {
                exit_code: EXIT_CRASHED,
                ..
            }
        ));
        // Still down 5s in.
        let t5 = T0.plus(Duration::from_secs(5));
        assert!(matches!(plan.decide("sysinfo", t5), Injection::Fail { .. }));
        // Back up after the restart window.
        let t10 = T0.plus(Duration::from_secs(10));
        assert_eq!(plan.decide("sysinfo", t10), Injection::Healthy);
    }

    #[test]
    fn storm_is_seed_deterministic() {
        let a = FaultPlan::storm(42, StormProfile::default());
        let b = FaultPlan::storm(42, StormProfile::default());
        let seq_a: Vec<Injection> = (0..200).map(|_| a.decide("cpuload", T0)).collect();
        let seq_b: Vec<Injection> = (0..200).map(|_| b.decide("cpuload", T0)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|i| *i != Injection::Healthy));
        assert!(seq_a.contains(&Injection::Healthy));
    }

    #[test]
    fn script_takes_precedence_over_storm() {
        let plan = FaultPlan::storm(
            7,
            StormProfile {
                fail_p: 0.0,
                hang_p: 0.0,
                slow_p: 0.0,
                ..StormProfile::default()
            },
        );
        plan.script("date", vec![Fault::Fail]);
        assert!(matches!(plan.decide("date", T0), Injection::Fail { .. }));
        // Script exhausted, zero-probability storm: healthy.
        assert_eq!(plan.decide("date", T0), Injection::Healthy);
    }
}
