//! Deterministic fault injection for provider commands.
//!
//! A [`FaultPlan`] scripts failures against named targets (command
//! basenames, i.e. the executables behind information keywords). The
//! command registry consults the plan on every execution and applies the
//! next scripted [`Fault`] for that target, so every failure mode —
//! nonzero exits, hangs, slowdowns, crash-and-restart windows — is
//! reproducible under both the system clock and the virtual clock, and
//! explorable by `sim::model`.
//!
//! Two modes:
//!
//! * **Scripted** ([`FaultPlan::script`]): a per-target sequence of
//!   faults consumed one per execution; once the sequence is exhausted
//!   the target is healthy again. This is what the fault-supervisor
//!   tests use — "fail 3×, then recover" is `script(k, vec![Fail; 3])`.
//! * **Storm** ([`FaultPlan::storm`]): every execution of every target
//!   draws from a seeded PRNG with configured fault probabilities.
//!   Chaos smoke and the `e17_fault_storm` bench use this; the seed
//!   makes any run replayable byte-for-byte.
//!
//! The plan only *decides*; applying the decision (charging the hang
//! duration to the clock, shaping the exit code) is the command
//! registry's job, so decisions stay pure and deterministic.

use crate::clock::SimTime;
use crate::rng::SplitMix64;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scripted failure mode for a single execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The command runs (cost charged as usual) but exits nonzero.
    Fail,
    /// The command stalls for the given duration, then is reaped as
    /// failed — modelling a hung backend killed by a watchdog. The
    /// duration is charged to the clock *in addition to* the normal
    /// execution cost, so deadline budgets observe the stall.
    Hang(Duration),
    /// The command succeeds, but only after an extra delay — a slow
    /// backend, not a broken one.
    SlowBy(Duration),
    /// The target crashes: this and every subsequent execution fails
    /// instantly until `restart_after` has elapsed on the clock, at
    /// which point the target is healthy again (and the script resumes).
    Crash {
        /// How long the target stays down after the crash.
        restart_after: Duration,
    },
}

/// What the registry should do for one execution, as decided by the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injection {
    /// Run the command normally.
    Healthy,
    /// Charge normal cost, then fail with this exit code and detail.
    Fail {
        /// Exit code to report (nonzero).
        exit_code: i32,
        /// Human-readable cause, e.g. `injected failure`.
        detail: &'static str,
    },
    /// Charge the stall duration, then fail (hung, reaped by watchdog).
    Hang(Duration),
    /// Charge the extra delay, then run the command normally.
    SlowBy(Duration),
}

/// Exit code reported for an injected plain failure.
pub const EXIT_INJECTED: i32 = 13;
/// Exit code reported for a hung-then-reaped execution.
pub const EXIT_HUNG: i32 = 124;
/// Exit code reported while a crashed target is down.
pub const EXIT_CRASHED: i32 = 137;

#[derive(Debug, Default)]
struct Script {
    seq: Vec<Fault>,
    next: usize,
    /// While set, every execution fails instantly until the clock
    /// reaches this time.
    down_until: Option<SimTime>,
}

/// Storm-mode probabilities (all per-execution, independent draws).
#[derive(Debug, Clone)]
pub struct StormProfile {
    /// Probability an execution fails outright.
    pub fail_p: f64,
    /// Probability an execution hangs for [`StormProfile::hang_for`].
    pub hang_p: f64,
    /// Probability an execution is slowed by [`StormProfile::slow_by`].
    pub slow_p: f64,
    /// Stall duration for injected hangs.
    pub hang_for: Duration,
    /// Extra delay for injected slowdowns.
    pub slow_by: Duration,
}

impl Default for StormProfile {
    /// The scripted "10% provider-failure storm": 10% fails, 2% hangs,
    /// 5% slowdowns, with short stalls suitable for wall-clock runs.
    fn default() -> Self {
        StormProfile {
            fail_p: 0.10,
            hang_p: 0.02,
            slow_p: 0.05,
            hang_for: Duration::from_millis(30),
            slow_by: Duration::from_millis(10),
        }
    }
}

#[derive(Debug)]
enum Mode {
    Scripted,
    Storm {
        seed: u64,
        /// Per-target draw streams, created lazily from `seed` mixed
        /// with the target name. Independent streams keep storm replay
        /// byte-identical even when fetches for *different* targets
        /// run concurrently (fan-out): interleaving across targets
        /// cannot perturb any one target's draw sequence. Draws for
        /// the *same* target stay ordered by the plan mutex.
        streams: HashMap<String, SplitMix64>,
        profile: StormProfile,
    },
}

/// FNV-1a over the target name: a stable, platform-independent stream
/// discriminator mixed into the storm seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic, shareable fault-injection plan.
///
/// Thread-safe; one plan is typically shared by a command registry and
/// the test that scripts it. All interior state (script cursors, crash
/// windows, the per-target storm streams) lives behind one mutex, so
/// concurrent executions serialize their draws; per-target streams
/// make the draw *sequences* independent of cross-target interleaving,
/// so seeded storms replay byte-identically even under fan-out.
#[derive(Debug)]
pub struct FaultPlan {
    state: Mutex<PlanState>,
    injected: AtomicU64,
}

#[derive(Debug)]
struct PlanState {
    scripts: HashMap<String, Script>,
    mode: Mode,
}

impl FaultPlan {
    /// An empty scripted plan: every target healthy until scripted.
    pub fn new() -> Arc<Self> {
        Arc::new(FaultPlan {
            state: Mutex::new(PlanState {
                scripts: HashMap::new(),
                mode: Mode::Scripted,
            }),
            injected: AtomicU64::new(0),
        })
    }

    /// A seeded storm: every execution of every target draws faults
    /// from `profile` using a PRNG seeded with `seed`. Targets can
    /// still be scripted on top; scripts take precedence for their
    /// target until exhausted.
    pub fn storm(seed: u64, profile: StormProfile) -> Arc<Self> {
        Arc::new(FaultPlan {
            state: Mutex::new(PlanState {
                scripts: HashMap::new(),
                mode: Mode::Storm {
                    seed,
                    streams: HashMap::new(),
                    profile,
                },
            }),
            injected: AtomicU64::new(0),
        })
    }

    /// Script a fault sequence for one target (command basename).
    /// Replaces any existing script for that target.
    pub fn script(&self, target: &str, seq: Vec<Fault>) {
        let mut st = self.state.lock();
        st.scripts.insert(
            target.to_string(),
            Script {
                seq,
                next: 0,
                down_until: None,
            },
        );
    }

    /// Total number of injections applied so far (all targets).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decide what happens to the next execution of `target` at `now`.
    ///
    /// Consumes one scripted fault (if any remain), manages crash
    /// windows, and falls back to storm draws when configured.
    pub fn decide(&self, target: &str, now: SimTime) -> Injection {
        let mut st = self.state.lock();
        // A crash window in force dominates everything else.
        if let Some(script) = st.scripts.get_mut(target) {
            if let Some(until) = script.down_until {
                if now < until {
                    drop(st);
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    return Injection::Fail {
                        exit_code: EXIT_CRASHED,
                        detail: "injected crash (target down)",
                    };
                }
                script.down_until = None; // restarted
            }
            if script.next < script.seq.len() {
                let fault = script.seq[script.next].clone();
                script.next += 1;
                let injection = match fault {
                    Fault::Fail => Injection::Fail {
                        exit_code: EXIT_INJECTED,
                        detail: "injected failure",
                    },
                    Fault::Hang(d) => Injection::Hang(d),
                    Fault::SlowBy(d) => Injection::SlowBy(d),
                    Fault::Crash { restart_after } => {
                        script.down_until = Some(now.plus(restart_after));
                        Injection::Fail {
                            exit_code: EXIT_CRASHED,
                            detail: "injected crash (target down)",
                        }
                    }
                };
                drop(st);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return injection;
            }
        }
        if let Mode::Storm {
            seed,
            streams,
            profile,
        } = &mut st.mode
        {
            let stream = streams
                .entry(target.to_string())
                .or_insert_with(|| SplitMix64::new(*seed ^ fnv1a(target)));
            let draw = stream.next_f64();
            let injection = if draw < profile.fail_p {
                Some(Injection::Fail {
                    exit_code: EXIT_INJECTED,
                    detail: "injected failure",
                })
            } else if draw < profile.fail_p + profile.hang_p {
                Some(Injection::Hang(profile.hang_for))
            } else if draw < profile.fail_p + profile.hang_p + profile.slow_p {
                Some(Injection::SlowBy(profile.slow_by))
            } else {
                None
            };
            if let Some(injection) = injection {
                drop(st);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return injection;
            }
        }
        Injection::Healthy
    }
}

// ---------------------------------------------------------------------
// Disk faults
// ---------------------------------------------------------------------

/// One scripted disk failure mode, applied to a single storage
/// operation of a WAL storage (`infogram_exec::wal::WalStorage`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskFault {
    /// The append fails outright; nothing reaches the medium.
    FailAppend,
    /// Short write: only the first `keep` bytes of the append are
    /// written (unsynced), and the append reports an error.
    ShortWrite {
        /// Bytes of the payload that do land before the error.
        keep: usize,
    },
    /// Torn write: the first `keep` bytes reach the *durable* medium,
    /// then the whole storage crashes — everything unsynced is dropped
    /// and the torn frame prefix is what recovery will find.
    TornWrite {
        /// Bytes of the payload that survive the crash.
        keep: usize,
    },
    /// The disk is full: this append — and every later one until
    /// [`DiskFaultPlan::free_space`] — fails with nothing written.
    DiskFull,
    /// The storage crashes *before* this append: unsynced bytes are
    /// dropped and every operation fails until [`DiskFaultPlan::restart`].
    Crash,
}

/// What a storage implementation must do with one append, as decided by
/// the plan. The plan only *decides*; dropping unsynced bytes on a
/// crash verdict is the storage's job, so decisions stay pure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendVerdict {
    /// Write every byte normally.
    Write,
    /// Write only the first `keep` bytes (unsynced), then report an
    /// I/O error.
    Short {
        /// Bytes that land.
        keep: usize,
    },
    /// Persist the first `keep` bytes *durably*, crash the storage
    /// (drop all unsynced bytes), then report an I/O error.
    Torn {
        /// Bytes that survive.
        keep: usize,
    },
    /// Write nothing; report an I/O error with this detail.
    Fail {
        /// Human-readable cause, e.g. `injected append failure`.
        detail: &'static str,
    },
    /// Crash before writing anything: drop unsynced bytes, then report
    /// an I/O error; every later operation fails until restart.
    Crash,
}

/// What a storage implementation must do with one fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncVerdict {
    /// Promote unsynced bytes to durable as usual.
    Sync,
    /// Report an I/O error; the unsynced bytes stay unsynced (a later
    /// successful sync may still promote them).
    Fail,
}

/// Storm-mode probabilities for disk operations (independent draws,
/// keyed by operation count — never by time — so the sequence is
/// identical under both clocks and the model checker).
#[derive(Debug, Clone)]
pub struct DiskStormProfile {
    /// Probability an append fails outright.
    pub fail_p: f64,
    /// Probability an append is a short write (a random prefix lands).
    pub short_p: f64,
    /// Probability an fsync fails.
    pub fsync_fail_p: f64,
}

impl Default for DiskStormProfile {
    /// A flaky-disk storm: 2% failed appends, 1% short writes, 2%
    /// failed fsyncs.
    fn default() -> Self {
        DiskStormProfile {
            fail_p: 0.02,
            short_p: 0.01,
            fsync_fail_p: 0.02,
        }
    }
}

#[derive(Debug)]
struct DiskPlanState {
    /// Scripted faults keyed by global append index (0 = the first
    /// append the plan ever sees).
    append_faults: BTreeMap<u64, DiskFault>,
    /// Global sync indices whose fsync fails.
    sync_failures: BTreeSet<u64>,
    /// Crash the storage when the append counter reaches this index.
    crash_at_append: Option<u64>,
    /// Disk-full latch: every append fails until space is freed.
    full: bool,
    appends_seen: u64,
    syncs_seen: u64,
    storm: Option<(SplitMix64, DiskStormProfile)>,
}

/// A deterministic, shareable *disk* fault-injection plan, consulted by
/// WAL storage implementations on every append/fsync.
///
/// The same two modes as [`FaultPlan`]: per-operation scripts
/// ([`DiskFaultPlan::fault_append`], [`DiskFaultPlan::fail_sync`],
/// [`DiskFaultPlan::crash_after_appends`]) and a seeded storm
/// ([`DiskFaultPlan::storm`]). All decisions are keyed by operation
/// count, never by time, so a seeded plan replays identically under
/// the system clock, the virtual clock, and `sim::model`.
#[derive(Debug)]
pub struct DiskFaultPlan {
    state: Mutex<DiskPlanState>,
    crashed: AtomicBool,
    injected: AtomicU64,
}

/// Error detail reported by storages while the plan says crashed.
pub const DISK_CRASHED_DETAIL: &str = "storage crashed (injected)";

impl DiskFaultPlan {
    /// An empty scripted plan: every operation healthy until scripted.
    pub fn new() -> Arc<Self> {
        Arc::new(DiskFaultPlan {
            state: Mutex::new(DiskPlanState {
                append_faults: BTreeMap::new(),
                sync_failures: BTreeSet::new(),
                crash_at_append: None,
                full: false,
                appends_seen: 0,
                syncs_seen: 0,
                storm: None,
            }),
            crashed: AtomicBool::new(false),
            injected: AtomicU64::new(0),
        })
    }

    /// A seeded storm: every append/fsync draws from `profile` using a
    /// PRNG seeded with `seed`. Scripted faults take precedence for
    /// their operation index.
    pub fn storm(seed: u64, profile: DiskStormProfile) -> Arc<Self> {
        let plan = DiskFaultPlan::new();
        plan.state.lock().storm = Some((SplitMix64::new(seed), profile));
        plan
    }

    /// Script `fault` against the `in_appends`-th *upcoming* append
    /// (0 = the very next one).
    pub fn fault_append(&self, in_appends: u64, fault: DiskFault) {
        let mut st = self.state.lock();
        let idx = st.appends_seen + in_appends;
        st.append_faults.insert(idx, fault);
    }

    /// Script the `in_syncs`-th *upcoming* fsync (0 = the very next
    /// one) to fail.
    pub fn fail_sync(&self, in_syncs: u64) {
        let mut st = self.state.lock();
        let idx = st.syncs_seen + in_syncs;
        st.sync_failures.insert(idx);
    }

    /// Crash the storage after `k` more successful appends (the
    /// `k+1`-th upcoming append crashes before writing).
    pub fn crash_after_appends(&self, k: u64) {
        let mut st = self.state.lock();
        st.crash_at_append = Some(st.appends_seen + k);
    }

    /// Latch the disk-full condition: every append fails until
    /// [`DiskFaultPlan::free_space`].
    pub fn fill_disk(&self) {
        self.state.lock().full = true;
    }

    /// Clear the disk-full condition.
    pub fn free_space(&self) {
        self.state.lock().full = false;
    }

    /// Whether the simulated storage is currently crashed (every
    /// operation fails until [`DiskFaultPlan::restart`]).
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Bring a crashed storage back (the simulated machine rebooted).
    /// Does *not* clear a disk-full latch — a full disk stays full
    /// across reboots.
    pub fn restart(&self) {
        self.crashed.store(false, Ordering::Release);
    }

    /// Total number of injections applied so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Appends decided so far (for scripting relative to "now").
    pub fn appends_seen(&self) -> u64 {
        self.state.lock().appends_seen
    }

    /// Decide what happens to the next append of `len` bytes.
    pub fn on_append(&self, len: usize) -> AppendVerdict {
        if self.crashed() {
            return AppendVerdict::Fail {
                detail: DISK_CRASHED_DETAIL,
            };
        }
        let mut st = self.state.lock();
        let idx = st.appends_seen;
        st.appends_seen += 1;
        if st.crash_at_append == Some(idx) {
            st.crash_at_append = None;
            drop(st);
            self.crashed.store(true, Ordering::Release);
            self.injected.fetch_add(1, Ordering::Relaxed);
            return AppendVerdict::Crash;
        }
        if let Some(fault) = st.append_faults.remove(&idx) {
            let verdict = match fault {
                DiskFault::FailAppend => AppendVerdict::Fail {
                    detail: "injected append failure",
                },
                DiskFault::ShortWrite { keep } => AppendVerdict::Short {
                    keep: keep.min(len),
                },
                DiskFault::TornWrite { keep } => {
                    self.crashed.store(true, Ordering::Release);
                    AppendVerdict::Torn {
                        keep: keep.min(len),
                    }
                }
                DiskFault::DiskFull => {
                    st.full = true;
                    AppendVerdict::Fail {
                        detail: "disk full (injected)",
                    }
                }
                DiskFault::Crash => {
                    self.crashed.store(true, Ordering::Release);
                    AppendVerdict::Crash
                }
            };
            drop(st);
            self.injected.fetch_add(1, Ordering::Relaxed);
            return verdict;
        }
        if st.full {
            drop(st);
            self.injected.fetch_add(1, Ordering::Relaxed);
            return AppendVerdict::Fail {
                detail: "disk full (injected)",
            };
        }
        if let Some((rng, profile)) = &mut st.storm {
            let draw = rng.next_f64();
            if draw < profile.fail_p {
                drop(st);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return AppendVerdict::Fail {
                    detail: "injected append failure",
                };
            }
            if draw < profile.fail_p + profile.short_p {
                let keep = if len == 0 {
                    0
                } else {
                    rng.below(len as u64 + 1) as usize
                };
                drop(st);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return AppendVerdict::Short { keep };
            }
        }
        AppendVerdict::Write
    }

    /// Decide what happens to the next fsync.
    pub fn on_sync(&self) -> SyncVerdict {
        if self.crashed() {
            return SyncVerdict::Fail;
        }
        let mut st = self.state.lock();
        let idx = st.syncs_seen;
        st.syncs_seen += 1;
        if st.sync_failures.remove(&idx) {
            drop(st);
            self.injected.fetch_add(1, Ordering::Relaxed);
            return SyncVerdict::Fail;
        }
        if let Some((rng, profile)) = &mut st.storm {
            if rng.next_f64() < profile.fsync_fail_p {
                drop(st);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return SyncVerdict::Fail;
            }
        }
        SyncVerdict::Sync
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn scripted_sequence_consumed_in_order_then_healthy() {
        let plan = FaultPlan::new();
        plan.script(
            "cpuload",
            vec![
                Fault::Fail,
                Fault::SlowBy(Duration::from_millis(5)),
                Fault::Hang(Duration::from_millis(50)),
            ],
        );
        assert!(matches!(plan.decide("cpuload", T0), Injection::Fail { .. }));
        assert_eq!(
            plan.decide("cpuload", T0),
            Injection::SlowBy(Duration::from_millis(5))
        );
        assert_eq!(
            plan.decide("cpuload", T0),
            Injection::Hang(Duration::from_millis(50))
        );
        assert_eq!(plan.decide("cpuload", T0), Injection::Healthy);
        // Other targets unaffected throughout.
        assert_eq!(plan.decide("date", T0), Injection::Healthy);
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn crash_holds_target_down_until_restart() {
        let plan = FaultPlan::new();
        plan.script(
            "sysinfo",
            vec![Fault::Crash {
                restart_after: Duration::from_secs(10),
            }],
        );
        assert!(matches!(
            plan.decide("sysinfo", T0),
            Injection::Fail {
                exit_code: EXIT_CRASHED,
                ..
            }
        ));
        // Still down 5s in.
        let t5 = T0.plus(Duration::from_secs(5));
        assert!(matches!(plan.decide("sysinfo", t5), Injection::Fail { .. }));
        // Back up after the restart window.
        let t10 = T0.plus(Duration::from_secs(10));
        assert_eq!(plan.decide("sysinfo", t10), Injection::Healthy);
    }

    #[test]
    fn storm_is_seed_deterministic() {
        let a = FaultPlan::storm(42, StormProfile::default());
        let b = FaultPlan::storm(42, StormProfile::default());
        let seq_a: Vec<Injection> = (0..200).map(|_| a.decide("cpuload", T0)).collect();
        let seq_b: Vec<Injection> = (0..200).map(|_| b.decide("cpuload", T0)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|i| *i != Injection::Healthy));
        assert!(seq_a.contains(&Injection::Healthy));
    }

    #[test]
    fn disk_plan_scripted_faults_hit_their_op_index() {
        let plan = DiskFaultPlan::new();
        plan.fault_append(1, DiskFault::FailAppend);
        plan.fault_append(2, DiskFault::ShortWrite { keep: 3 });
        plan.fail_sync(0);
        assert_eq!(plan.on_append(10), AppendVerdict::Write);
        assert_eq!(
            plan.on_append(10),
            AppendVerdict::Fail {
                detail: "injected append failure"
            }
        );
        assert_eq!(plan.on_append(10), AppendVerdict::Short { keep: 3 });
        assert_eq!(plan.on_append(10), AppendVerdict::Write);
        assert_eq!(plan.on_sync(), SyncVerdict::Fail);
        assert_eq!(plan.on_sync(), SyncVerdict::Sync);
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn disk_plan_crash_after_k_appends_then_restart() {
        let plan = DiskFaultPlan::new();
        plan.crash_after_appends(2);
        assert_eq!(plan.on_append(1), AppendVerdict::Write);
        assert_eq!(plan.on_append(1), AppendVerdict::Write);
        assert_eq!(plan.on_append(1), AppendVerdict::Crash);
        assert!(plan.crashed());
        // While crashed, everything fails.
        assert_eq!(
            plan.on_append(1),
            AppendVerdict::Fail {
                detail: DISK_CRASHED_DETAIL
            }
        );
        assert_eq!(plan.on_sync(), SyncVerdict::Fail);
        plan.restart();
        assert!(!plan.crashed());
        assert_eq!(plan.on_append(1), AppendVerdict::Write);
        assert_eq!(plan.on_sync(), SyncVerdict::Sync);
    }

    #[test]
    fn disk_plan_torn_write_crashes_with_prefix() {
        let plan = DiskFaultPlan::new();
        plan.fault_append(0, DiskFault::TornWrite { keep: 99 });
        // keep is clamped to the payload length.
        assert_eq!(plan.on_append(7), AppendVerdict::Torn { keep: 7 });
        assert!(plan.crashed());
    }

    #[test]
    fn disk_plan_full_latches_until_freed() {
        let plan = DiskFaultPlan::new();
        plan.fault_append(0, DiskFault::DiskFull);
        assert!(matches!(plan.on_append(1), AppendVerdict::Fail { .. }));
        assert!(matches!(
            plan.on_append(1),
            AppendVerdict::Fail {
                detail: "disk full (injected)"
            }
        ));
        plan.free_space();
        assert_eq!(plan.on_append(1), AppendVerdict::Write);
    }

    #[test]
    fn disk_storm_is_seed_deterministic() {
        let mk = || DiskFaultPlan::storm(99, DiskStormProfile::default());
        let (a, b) = (mk(), mk());
        let seq_a: Vec<AppendVerdict> = (0..400).map(|_| a.on_append(64)).collect();
        let seq_b: Vec<AppendVerdict> = (0..400).map(|_| b.on_append(64)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|v| *v != AppendVerdict::Write));
        assert!(seq_a.contains(&AppendVerdict::Write));
        let syncs_a: Vec<SyncVerdict> = (0..400).map(|_| a.on_sync()).collect();
        let syncs_b: Vec<SyncVerdict> = (0..400).map(|_| b.on_sync()).collect();
        assert_eq!(syncs_a, syncs_b);
        assert!(syncs_a.contains(&SyncVerdict::Fail));
    }

    #[test]
    fn script_takes_precedence_over_storm() {
        let plan = FaultPlan::storm(
            7,
            StormProfile {
                fail_p: 0.0,
                hang_p: 0.0,
                slow_p: 0.0,
                ..StormProfile::default()
            },
        );
        plan.script("date", vec![Fault::Fail]);
        assert!(matches!(plan.decide("date", T0), Injection::Fail { .. }));
        // Script exhausted, zero-probability storm: healthy.
        assert_eq!(plan.decide("date", T0), Injection::Healthy);
    }
}
