#![warn(missing_docs)]

//! Simulation substrate for the InfoGram reproduction.
//!
//! The 2002 InfoGram paper ran on a real Globus testbed: real hosts, real
//! wall-clock time, real Unix commands. None of that substrate exists here,
//! so every time-, randomness-, and network-dependent piece of the system is
//! written against the abstractions in this crate instead:
//!
//! * [`Clock`] — a time source that is either the operating-system clock
//!   ([`SystemClock`]) or a manually advanced virtual clock
//!   ([`ManualClock`]). All TTL caching, information degradation,
//!   authorization contracts, and performance catalogs in the upper crates
//!   take a `Clock`, which makes every test deterministic and lets the
//!   benchmarks sweep hours of simulated cache behaviour in milliseconds.
//! * [`rng::SplitMix64`] — a tiny, seedable, reproducible PRNG plus the
//!   distributions the workload models need.
//! * [`net`] — latency/jitter/loss models for the simulated network links
//!   used by the in-memory transport.
//! * [`stats`] — streaming mean/stddev (Welford) and percentile summaries
//!   used by the performance tag (§6.6 of the paper) and by the benchmark
//!   harness.
//! * [`workload`] — open- and closed-loop arrival processes for the
//!   client populations driving the experiments.
//! * [`fault`] — deterministic fault injection: scripted or seeded-storm
//!   [`FaultPlan`]s that the command registry consults on every
//!   execution, so provider failures (exits, hangs, slowdowns, crash
//!   windows) replay identically under both clocks.
//! * [`par`] — the scoped, order-preserving scatter-gather fan-out used
//!   by `(info=all)` answering, aggregate member queries, and GIIS
//!   member pulls.
//! * [`timer`] — a deterministic, clock-agnostic timer queue
//!   ([`timer::TimerWheel`]) backing the adaptive refresh scheduler and
//!   the GIIS member re-pull loop; the caller supplies `now`, so it runs
//!   identically under both clocks and inside the model checker.
//! * [`lockdep`] — a Linux-lockdep-style lock-order and blocking-
//!   section analyzer (re-exported from the instrumented `parking_lot`
//!   shim) that watches every lock acquisition in ordinary test runs
//!   and reports order inversions, guards held across declared blocking
//!   points, and locks leaked past thread exit.
//! * `model` (behind the `model` feature) — a CHESS/Loom-style schedule
//!   explorer that drives small multi-threaded scenarios through every
//!   bounded interleaving of their synchronization points, on the
//!   virtual clock. Used by the model test suites and
//!   `scripts/check_model.sh`.

pub mod clock;
pub mod fault;
pub mod lockdep;
pub mod metrics;
#[cfg(feature = "model")]
pub mod model;
pub mod net;
pub mod par;
pub mod rng;
pub mod timer;
pub mod workload;

pub use clock::{Clock, ManualClock, SharedClock, SimTime, SystemClock};
pub use fault::{
    AppendVerdict, DiskFault, DiskFaultPlan, DiskStormProfile, Fault, FaultPlan, Injection,
    StormProfile, SyncVerdict,
};
pub use infogram_obs::stats;
pub use par::{fan_out, fan_out_bounded};
pub use rng::SplitMix64;
pub use stats::{Summary, Welford};
pub use timer::TimerWheel;
