//! Lightweight experiment metrics.
//!
//! A [`MetricSet`] is a named bag of counters and latency recorders shared
//! between the services and the benchmark harness. Services increment
//! counters ("connections_opened", "handshakes", "backend_execs"); the
//! harness reads them out into the printed tables of EXPERIMENTS.md.

use crate::stats::{Summary, Welford};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A recorder that stores raw samples (seconds) for later summarization.
#[derive(Debug, Default)]
pub struct Recorder {
    samples: Mutex<Vec<f64>>,
    welford: Mutex<Welford>,
}

impl Recorder {
    /// Record one sample, in seconds.
    pub fn record(&self, secs: f64) {
        self.samples.lock().push(secs);
        self.welford.lock().record(secs);
    }

    /// Record a duration.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.welford.lock().count()
    }

    /// Streaming mean without materializing a summary.
    pub fn mean(&self) -> f64 {
        self.welford.lock().mean()
    }

    /// Snapshot all samples into a percentile summary.
    pub fn summary(&self) -> Summary {
        Summary::from_samples(self.samples.lock().clone())
    }
}

/// A named, shareable set of counters and recorders.
///
/// Looking up a name that does not exist creates it, so instrumentation
/// points never need registration boilerplate.
#[derive(Debug, Default, Clone)]
pub struct MetricSet {
    inner: Arc<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    recorders: Mutex<BTreeMap<String, Arc<Recorder>>>,
}

impl MetricSet {
    /// A fresh, empty metric set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (or create) the counter with this name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.counters.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Get (or create) the latency recorder with this name.
    pub fn recorder(&self, name: &str) -> Arc<Recorder> {
        let mut map = self.inner.recorders.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Recorder::default())),
        )
    }

    /// Current value of a counter (0 if it was never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Names and values of all counters, sorted by name.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Names of all recorders, sorted.
    pub fn recorder_names(&self) -> Vec<String> {
        self.inner.recorders.lock().keys().cloned().collect()
    }

    /// Summary of a recorder (empty summary if never touched).
    pub fn recorder_summary(&self, name: &str) -> Summary {
        self.inner
            .recorders
            .lock()
            .get(name)
            .map(|r| r.summary())
            .unwrap_or_else(|| Summary::from_samples(vec![]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricSet::new();
        m.counter("jobs").incr();
        m.counter("jobs").add(4);
        assert_eq!(m.counter_value("jobs"), 5);
        assert_eq!(m.counter_value("never"), 0);
    }

    #[test]
    fn counters_shared_across_clones() {
        let m = MetricSet::new();
        let m2 = m.clone();
        m.counter("x").incr();
        m2.counter("x").incr();
        assert_eq!(m.counter_value("x"), 2);
    }

    #[test]
    fn recorder_summary_reflects_samples() {
        let m = MetricSet::new();
        let r = m.recorder("lat");
        r.record(1.0);
        r.record(3.0);
        assert_eq!(r.count(), 2);
        assert!((r.mean() - 2.0).abs() < 1e-12);
        let s = m.recorder_summary("lat");
        assert_eq!(s.count(), 2);
        assert!((s.median() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let m = MetricSet::new();
        m.counter("b").incr();
        m.counter("a").add(2);
        let snap = m.counters_snapshot();
        assert_eq!(
            snap,
            vec![("a".to_string(), 2), ("b".to_string(), 1)]
        );
    }

    #[test]
    fn concurrent_increments() {
        let m = MetricSet::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.counter("c").incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.counter_value("c"), 8000);
    }
}
