//! Re-exports of the telemetry instruments, which moved to
//! [`infogram_obs`] when observability became a first-class subsystem.
//!
//! The benchmark harness and older call sites keep using
//! `infogram_sim::metrics::MetricSet`; new code should depend on
//! `infogram-obs` directly and use [`infogram_obs::Telemetry`], of which
//! [`MetricSet`] is an alias.

pub use infogram_obs::{Counter, Gauge, Histogram, MetricSet, Recorder};
